//! Experiments E3 and E5: the lower-bound reductions, end to end, across
//! more instances than the crate-local unit tests cover.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::reductions::generators::kary_schema;
use car::reductions::{encode_pattern, encode_tm, pattern_realizable, RunOutcome, TuringMachine};
use std::collections::HashMap;

fn preselect(schema: &car::core::Schema) -> Reasoner<'_> {
    Reasoner::with_config(
        schema,
        ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
    )
}

#[test]
fn intersection_pattern_reduction_matches_brute_force_exhaustively() {
    // All symmetric 2x2 matrices with entries <= 2.
    for a11 in 0..=2u64 {
        for a22 in 0..=2u64 {
            for a12 in 0..=2u64 {
                let matrix = vec![vec![a11, a12], vec![a12, a22]];
                let realizable = pattern_realizable(&matrix);
                if a12 > a11 || a12 > a22 {
                    assert!(!realizable);
                    continue; // encoder rejects trivially-bad inputs
                }
                let enc = encode_pattern(&matrix);
                let r = preselect(&enc.schema);
                assert_eq!(
                    r.try_is_satisfiable(enc.anchor).unwrap(),
                    realizable,
                    "matrix {matrix:?}"
                );
            }
        }
    }
}

#[test]
fn intersection_pattern_three_sets_spot_checks() {
    let cases: Vec<(Vec<Vec<u64>>, bool)> = vec![
        // Pairwise disjoint sets.
        (vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]], true),
        // A common element everywhere.
        (vec![vec![1, 1, 1], vec![1, 1, 1], vec![1, 1, 1]], true),
        // Transitivity violation on singletons.
        (vec![vec![1, 1, 0], vec![1, 1, 1], vec![0, 1, 1]], false),
    ];
    for (matrix, expected) in cases {
        assert_eq!(pattern_realizable(&matrix), expected, "oracle {matrix:?}");
        let enc = encode_pattern(&matrix);
        let r = preselect(&enc.schema);
        assert_eq!(
            r.try_is_satisfiable(enc.anchor).unwrap(),
            expected,
            "reduction {matrix:?}"
        );
    }
}

/// A 3-state machine that writes a 1, moves right over it, and accepts
/// when it reads a blank after exactly two moves — exercises Left moves
/// too via a final bounce.
fn bouncer() -> TuringMachine {
    use car::reductions::Move;
    let mut delta = HashMap::new();
    delta.insert((0, 0), (1, 1, Move::Right)); // write 1, go right
    delta.insert((1, 0), (2, 1, Move::Left)); // write 1, bounce left
    delta.insert((2, 1), (3, 1, Move::Stay)); // accept on the written 1
    TuringMachine { states: 4, start: 0, accept: 3, symbols: 2, blank: 0, delta }
}

#[test]
fn tm_reduction_handles_left_moves_and_stays() {
    let m = bouncer();
    assert!(matches!(m.run(&[], 4, 3), RunOutcome::Accept { step: 3 }));
    let enc = encode_tm(&m, &[], 4, 3);
    let r = preselect(&enc.schema);
    assert!(enc.accepts(&r).unwrap());

    // Starve it of time: T = 2 cannot reach the accepting state.
    let enc = encode_tm(&m, &[], 2, 3);
    let r = preselect(&enc.schema);
    assert!(!enc.accepts(&r).unwrap());
}

#[test]
fn arity_reduction_preserves_satisfiability_on_kary_families() {
    for arity in [3, 4] {
        let schema = kary_schema(arity, 1);
        let with = Reasoner::with_config(
            &schema,
            ReasonerConfig {
                strategy: Strategy::Preselect,
                arity_reduction: true,
                ..Default::default()
            },
        );
        let without = Reasoner::with_config(
            &schema,
            ReasonerConfig {
                strategy: Strategy::Preselect,
                arity_reduction: false,
                ..Default::default()
            },
        );
        for class in schema.symbols().class_ids() {
            assert_eq!(
                with.try_is_satisfiable(class).unwrap(),
                without.try_is_satisfiable(class).unwrap(),
                "arity {arity}, class {}",
                schema.class_name(class)
            );
        }
    }
}
