//! Every verdict auditable: satisfiable classes come with verified
//! models, unsatisfiable ones with machine-checkable proofs.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::parser::parse_schema;
use car::reductions::generators::{random_schema, RandomSchemaParams};

#[test]
fn every_verdict_is_auditable_on_random_schemas() {
    let params = RandomSchemaParams {
        classes: 4,
        attrs: 1,
        rels: 1,
        isa_density: 0.8,
        max_bound: 2,
    };
    let mut proofs = 0;
    let mut models = 0;
    for seed in 200..230 {
        let schema = random_schema(&params, seed);
        let reasoner = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
        );
        let expansion = reasoner.full_expansion().expect("small schema");
        for class in schema.symbols().class_ids() {
            if reasoner.try_is_satisfiable(class).unwrap() {
                let model = reasoner.extract_model().expect("model");
                assert!(model.is_model(&schema), "seed {seed}");
                assert!(!model.class_extension(class).is_empty());
                models += 1;
            } else {
                let proof = reasoner
                    .certify_unsatisfiable(class)
                    .unwrap()
                    .unwrap_or_else(|| panic!("seed {seed}: missing proof"));
                assert!(
                    proof.verify(expansion),
                    "seed {seed}: proof failed verification for {}",
                    schema.class_name(class)
                );
                proofs += 1;
            }
        }
    }
    assert!(models > 40, "workload too easy: {models} models");
    assert!(proofs >= 3, "workload too easy: {proofs} proofs");
}

#[test]
fn figure_2_refinement_unsat_is_certified() {
    let figure2 = include_str!("data/figure2.car").replace(
        "participates_in Enrollment[enrolls] : (2, 3)",
        "participates_in Enrollment[enrolls] : (7, 9)",
    );
    let schema = parse_schema(&figure2).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let grad = schema.class_id("Grad_Student").unwrap();
    assert!(!reasoner.is_satisfiable(grad));
    let proof = reasoner
        .certify_unsatisfiable(grad)
        .expect("within limits")
        .expect("Grad_Student is unsatisfiable");
    let expansion = reasoner.full_expansion().unwrap();
    assert!(proof.verify(expansion));
    assert!(!proof.steps.is_empty());
}
