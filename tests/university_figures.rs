//! Experiment E1: the paper's Figure 1 and Figure 2 schemas, verbatim
//! (ASCII-ized), with the properties the paper's prose states about them.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::core::Card;
use car::parser::{parse_schema, pretty};

const FIGURE_2: &str = include_str!("data/figure2.car");

#[test]
fn figure_2_parses_with_expected_shape() {
    let schema = parse_schema(FIGURE_2).expect("Figure 2 parses");
    // Classes: Person, Professor, Student, Grad_Student, Course,
    // Adv_Course + String (mentioned as an attribute type).
    assert_eq!(schema.num_classes(), 7);
    assert_eq!(schema.num_rels(), 2);
    let enrollment = schema.rel_id("Enrollment").unwrap();
    assert_eq!(schema.rel_def(enrollment).arity(), 2);
    assert_eq!(schema.rel_def(enrollment).constraints.len(), 3);
    let exam = schema.rel_id("Exam").unwrap();
    assert_eq!(schema.rel_def(exam).arity(), 3);

    // Spot-check the cardinality constraints the paper calls out.
    let professor = schema.class_id("Professor").unwrap();
    let taught_by = schema.attr_id("taught_by").unwrap();
    let spec = schema
        .attr_spec(professor, car::core::AttRef::Inverse(taught_by))
        .expect("professors teach through (inv taught_by)");
    assert_eq!(spec.card, Card::new(1, 2));
}

#[test]
fn figure_2_is_coherent_and_implies_the_stated_facts() {
    let schema = parse_schema(FIGURE_2).expect("parses");
    let reasoner = Reasoner::new(&schema);
    assert!(reasoner.try_is_coherent().expect("within limits"));

    let id = |name: &str| schema.class_id(name).unwrap();
    // "Professors and students are persons."
    assert!(reasoner.subsumes(id("Person"), id("Professor")));
    assert!(reasoner.subsumes(id("Person"), id("Student")));
    assert!(reasoner.subsumes(id("Person"), id("Grad_Student"))); // transitive
    // "students cannot be professors"
    assert!(reasoner.disjoint(id("Student"), id("Professor")));
    assert!(reasoner.disjoint(id("Grad_Student"), id("Professor")));
    // Courses are taught, not teachers; nothing makes them persons.
    assert!(!reasoner.subsumes(id("Person"), id("Course")));
    assert!(!reasoner.disjoint(id("Course"), id("Adv_Course")));
    assert!(reasoner.subsumes(id("Course"), id("Adv_Course")));
}

#[test]
fn figure_2_has_a_verified_finite_model() {
    let schema = parse_schema(FIGURE_2).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let model = reasoner.extract_model().expect("coherent schema");
    assert!(model.is_model(&schema));
    // Every class inhabited; courses enroll 5..=100 students each
    // (checked again explicitly on top of the model checker).
    let enrollment = schema.rel_id("Enrollment").unwrap();
    let course = schema.class_id("Course").unwrap();
    assert!(!model.class_extension(course).is_empty());
    for &obj in model.class_extension(course) {
        let enrolls = model
            .rel_extension(enrollment)
            .iter()
            .filter(|t| t[0] == obj)
            .count();
        assert!((5..=100).contains(&enrolls), "course enrolls {enrolls}");
    }
}

#[test]
fn refining_grad_student_bounds_creates_incoherence() {
    // §1: "the interaction between isa-relationships and cardinality
    // constraints may cause a database schema to exhibit undesirable
    // properties" — refine Grad_Student's enrollment minimum above
    // Student's maximum.
    let broken = FIGURE_2.replace(
        "participates_in Enrollment[enrolls] : (2, 3)",
        "participates_in Enrollment[enrolls] : (7, 9)",
    );
    assert_ne!(broken, FIGURE_2, "replacement must hit");
    let schema = parse_schema(&broken).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let grad = schema.class_id("Grad_Student").unwrap();
    let adv = schema.class_id("Adv_Course").unwrap();
    let student = schema.class_id("Student").unwrap();
    assert!(!reasoner.is_satisfiable(grad));
    // Advanced courses need >= 5 enrolled graduate students: gone too.
    assert!(!reasoner.is_satisfiable(adv));
    // Ordinary students and courses survive.
    assert!(reasoner.is_satisfiable(student));
    assert!(reasoner.is_satisfiable(schema.class_id("Course").unwrap()));
}

#[test]
fn figure_2_round_trips_through_the_pretty_printer() {
    let schema = parse_schema(FIGURE_2).expect("parses");
    let printed = pretty(&schema);
    let reparsed = parse_schema(&printed).expect("pretty output parses");
    assert_eq!(pretty(&reparsed), printed);
    // Satisfiability answers survive the round trip.
    let r1 = Reasoner::with_config(
        &schema,
        ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
    );
    let r2 = Reasoner::with_config(
        &reparsed,
        ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
    );
    for class in schema.symbols().class_ids() {
        let name = schema.class_name(class);
        let c2 = reparsed.class_id(name).unwrap();
        assert_eq!(r1.is_satisfiable(class), r2.is_satisfiable(c2), "{name}");
    }
}
