//! `ExpansionLimits` coverage: each of the three size limits trips with
//! the correct `ExpansionTooLarge` payload — under serial construction
//! and under `threads > 1` — and the expansion at the exact limit is
//! identical across thread counts.

use car::core::enumerate;
use car::core::expansion::{Expansion, ExpansionLimits, ExpansionTooLarge};
use car::core::reasoner::{Reasoner, ReasonerConfig, ReasonerError, Strategy};
use car::core::syntax::{
    AttRef, Card, ClassFormula, RoleClause, RoleLiteral, Schema, SchemaBuilder,
};
use std::num::NonZeroUsize;

/// A schema exercising every expansion component: compound classes,
/// direct and inverse compound attributes, and compound relation tuples.
fn stress_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let t = b.class("T");
    b.class("F1");
    b.class("F2");
    let f = b.attribute("f");
    let r = b.relation("R", ["u", "v"]);
    let u = b.role("u");
    let v = b.role("v");
    b.define_class(a)
        .attr(AttRef::Direct(f), Card::new(1, 3), ClassFormula::top())
        .participates(r, u, Card::at_least(1))
        .finish();
    b.define_class(t)
        .attr(AttRef::Inverse(f), Card::new(0, 2), ClassFormula::top())
        .finish();
    b.relation_constraint(
        r,
        RoleClause::new(vec![
            RoleLiteral { role: u, formula: ClassFormula::class(a) },
            RoleLiteral { role: v, formula: ClassFormula::class(bb) },
        ]),
    );
    b.build().unwrap()
}

fn ccs(schema: &Schema) -> Vec<car::core::bitset::BitSet> {
    enumerate::sat_models(schema, &[], usize::MAX).unwrap()
}

fn build(
    schema: &Schema,
    limits: &ExpansionLimits,
    threads: usize,
) -> Result<Expansion, ExpansionTooLarge> {
    Expansion::build_with_threads(
        schema,
        ccs(schema),
        limits,
        NonZeroUsize::new(threads).unwrap(),
    )
}

/// Unbounded component counts, to derive limits just below each.
fn unbounded_counts(schema: &Schema) -> (usize, usize, usize) {
    let e = build(schema, &ExpansionLimits::default(), 1).unwrap();
    (e.compound_classes().len(), e.compound_attrs().len(), e.compound_rels().len())
}

#[test]
fn compound_class_limit_trips_with_payload_under_all_thread_counts() {
    let schema = stress_schema();
    let (n_cc, _, _) = unbounded_counts(&schema);
    assert!(n_cc > 1);
    let limits = ExpansionLimits { max_compound_classes: n_cc - 1, ..Default::default() };
    for threads in [1, 2, 4] {
        let err = build(&schema, &limits, threads).unwrap_err();
        assert_eq!(
            err,
            ExpansionTooLarge { what: "compound classes", limit: n_cc - 1 },
            "threads={threads}"
        );
    }
}

#[test]
fn compound_attr_limit_trips_with_payload_under_all_thread_counts() {
    let schema = stress_schema();
    let (_, n_ca, _) = unbounded_counts(&schema);
    assert!(n_ca > 1, "schema must build compound attributes");
    let limits = ExpansionLimits { max_compound_attrs: n_ca - 1, ..Default::default() };
    for threads in [1, 2, 4] {
        let err = build(&schema, &limits, threads).unwrap_err();
        assert_eq!(
            err,
            ExpansionTooLarge { what: "compound attributes", limit: n_ca - 1 },
            "threads={threads}"
        );
    }
}

#[test]
fn compound_rel_limit_trips_with_payload_under_all_thread_counts() {
    let schema = stress_schema();
    let (_, _, n_cr) = unbounded_counts(&schema);
    assert!(n_cr > 1, "schema must build compound relations");
    let limits = ExpansionLimits { max_compound_rels: n_cr - 1, ..Default::default() };
    for threads in [1, 2, 4] {
        let err = build(&schema, &limits, threads).unwrap_err();
        assert_eq!(
            err,
            ExpansionTooLarge { what: "compound relations", limit: n_cr - 1 },
            "threads={threads}"
        );
    }
}

/// At the exact limit the build succeeds, and the component counts (the
/// stats at the trip threshold) are identical across thread counts.
#[test]
fn exact_limit_succeeds_with_consistent_stats() {
    let schema = stress_schema();
    let (n_cc, n_ca, n_cr) = unbounded_counts(&schema);
    let limits = ExpansionLimits {
        max_compound_classes: n_cc,
        max_compound_attrs: n_ca,
        max_compound_rels: n_cr,
    };
    for threads in [1, 2, 4] {
        let e = build(&schema, &limits, threads).unwrap();
        assert_eq!(e.compound_classes().len(), n_cc, "threads={threads}");
        assert_eq!(e.compound_attrs().len(), n_ca, "threads={threads}");
        assert_eq!(e.compound_rels().len(), n_cr, "threads={threads}");
    }
}

/// Through the reasoner, every limit surfaces as
/// `ReasonerError::TooLarge` with the same payload serial and parallel,
/// and the analysis stats at the trip point agree across thread counts.
#[test]
fn reasoner_surfaces_limits_identically_across_thread_counts() {
    let schema = stress_schema();
    let (n_cc, n_ca, n_cr) = unbounded_counts(&schema);
    let cases = [
        ExpansionLimits { max_compound_classes: n_cc - 1, ..Default::default() },
        ExpansionLimits { max_compound_attrs: n_ca - 1, ..Default::default() },
        ExpansionLimits { max_compound_rels: n_cr - 1, ..Default::default() },
    ];
    for limits in cases {
        let mut reference: Option<ReasonerError> = None;
        for threads in [1, 2, 4] {
            let r = Reasoner::with_config(
                &schema,
                ReasonerConfig {
                    strategy: Strategy::Sat,
                    limits,
                    threads: NonZeroUsize::new(threads).unwrap(),
                    ..Default::default()
                },
            );
            let err = r
                .try_is_coherent()
                .expect_err("limit below the unbounded count must trip");
            assert!(matches!(err, ReasonerError::TooLarge(_)), "got {err:?}");
            match &reference {
                None => reference = Some(err),
                Some(expected) => {
                    assert_eq!(&err, expected, "threads={threads}, limits={limits:?}");
                }
            }
        }
    }
}
