//! Metamorphic agreement for the incremental engine: after any sequence
//! of edits, a [`Workspace`] must give exactly the answers a fresh
//! [`Reasoner`] gives on the current schema — regardless of thread
//! count, enumeration strategy, what is or is not cached, and whether a
//! previous rebuild was killed mid-flight by fault injection.
//!
//! The default run keeps the sweep small; set `CAR_SLOW_TESTS=1` for
//! the full matrix (more seeds, longer edit sequences, more trip
//! points).

use car::core::incremental::{Query, SchemaDelta, Workspace};
use car::core::reasoner::{Outcome, Reasoner, ReasonerConfig, ReasonerError, Strategy};
use car::core::syntax::{Card, ClassClause, ClassFormula, ClassLiteral, Schema};
use car::core::{Budget, ClassId};
use car::reductions::generators::{random_schema, RandomSchemaParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

fn slow() -> bool {
    std::env::var("CAR_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

fn config(strategy: Strategy, threads: usize) -> ReasonerConfig {
    ReasonerConfig {
        strategy,
        threads: NonZeroUsize::new(threads).unwrap(),
        ..ReasonerConfig::default()
    }
}

/// A random formula over the schema's current classes: 1–2 clauses of
/// 1–2 literals with random polarity (empty = ⊤ occasionally).
fn random_formula(schema: &Schema, rng: &mut StdRng) -> ClassFormula {
    let ids: Vec<ClassId> = schema.symbols().class_ids().collect();
    if ids.is_empty() || rng.gen_bool(0.15) {
        return ClassFormula::top();
    }
    let mut f = ClassFormula::top();
    for _ in 0..rng.gen_range(1usize..=2) {
        let literals = (0..rng.gen_range(1usize..=2))
            .map(|_| {
                let class = ids[rng.gen_range(0..ids.len())];
                if rng.gen_bool(0.3) {
                    ClassLiteral::neg(class)
                } else {
                    ClassLiteral::pos(class)
                }
            })
            .collect();
        f.push_clause(ClassClause::new(literals));
    }
    f
}

fn random_card(rng: &mut StdRng) -> Card {
    let min = rng.gen_range(0u64..=2);
    if rng.gen_bool(0.3) {
        Card::at_least(min)
    } else {
        Card::new(min, min + rng.gen_range(0u64..=2))
    }
}

/// One random edit addressed at the current schema. May be an edit the
/// workspace legitimately rejects (removing a referenced class, say);
/// the caller skips those.
fn random_delta(schema: &Schema, rng: &mut StdRng, fresh: &mut u32) -> SchemaDelta {
    let class_names: Vec<String> =
        schema.symbols().class_ids().map(|c| schema.class_name(c).to_owned()).collect();
    let pick = |rng: &mut StdRng, names: &[String]| names[rng.gen_range(0..names.len())].clone();
    match rng.gen_range(0u32..10) {
        0 => {
            *fresh += 1;
            SchemaDelta::AddClass { name: format!("Fresh{fresh}") }
        }
        1 => SchemaDelta::RemoveClass { name: pick(rng, &class_names) },
        2..=5 => SchemaDelta::SetIsa {
            class: pick(rng, &class_names),
            isa: random_formula(schema, rng),
        },
        6 | 7 => SchemaDelta::SetAttribute {
            class: pick(rng, &class_names),
            attr: format!("g{}", rng.gen_range(0u32..2)),
            inverse: rng.gen_bool(0.25),
            spec: if rng.gen_bool(0.8) {
                Some((random_card(rng), random_formula(schema, rng)))
            } else {
                None
            },
        },
        8 => SchemaDelta::SetRelation {
            name: format!("Rel{}", rng.gen_range(0u32..2)),
            roles: vec!["u".into(), "v".into()],
            constraints: vec![],
        },
        _ => {
            let rel = format!("Rel{}", rng.gen_range(0u32..2));
            SchemaDelta::SetParticipation {
                class: pick(rng, &class_names),
                rel,
                role: if rng.gen_bool(0.5) { "u".into() } else { "v".into() },
                card: if rng.gen_bool(0.8) { Some(random_card(rng)) } else { None },
            }
        }
    }
}

/// Every query the workspace supports must match a fresh serial
/// reasoner on the workspace's current schema.
fn assert_agreement(ws: &mut Workspace, context: &str) {
    let schema = ws.schema().clone();
    let fresh = Reasoner::new(&schema);
    let ids: Vec<ClassId> = schema.symbols().class_ids().collect();
    for &c in &ids {
        assert_eq!(
            ws.try_is_satisfiable(c).unwrap(),
            fresh.try_is_satisfiable(c).unwrap(),
            "satisfiability of {} ({context})",
            schema.class_name(c)
        );
    }
    assert_eq!(ws.try_is_coherent().unwrap(), fresh.try_is_coherent().unwrap(), "{context}");
    assert_eq!(
        ws.try_unsatisfiable_classes().unwrap(),
        fresh.try_unsatisfiable_classes().unwrap(),
        "{context}"
    );
    for &a in &ids {
        for &b in &ids {
            assert_eq!(
                ws.try_subsumes(a, b).unwrap(),
                fresh.try_subsumes(a, b).unwrap(),
                "subsumes({}, {}) ({context})",
                schema.class_name(a),
                schema.class_name(b)
            );
            assert_eq!(
                ws.try_disjoint(a, b).unwrap(),
                fresh.try_disjoint(a, b).unwrap(),
                "disjoint ({context})"
            );
            assert_eq!(
                ws.try_equivalent(a, b).unwrap(),
                fresh.try_equivalent(a, b).unwrap(),
                "equivalent ({context})"
            );
        }
    }
}

/// `query_batch` must answer exactly like the one-at-a-time API.
fn assert_batch_agreement(ws: &mut Workspace, context: &str) {
    let ids: Vec<ClassId> = ws.schema().symbols().class_ids().collect();
    let mut queries = vec![Query::IsCoherent];
    for &c in &ids {
        queries.push(Query::IsSatisfiable(c));
    }
    for &a in &ids {
        for &b in &ids {
            queries.push(Query::Subsumes { sup: a, sub: b });
            queries.push(Query::Disjoint(a, b));
            queries.push(Query::Equivalent(a, b));
        }
    }
    // Duplicates must come back identical to their first occurrence.
    queries.push(Query::IsCoherent);
    let batch = ws.query_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    assert_eq!(batch[0], *batch.last().unwrap(), "duplicate query answers differ ({context})");
    for (q, outcome) in queries.iter().zip(&batch) {
        let expected = match *q {
            Query::IsSatisfiable(c) => ws.try_is_satisfiable(c).unwrap(),
            Query::IsCoherent => ws.try_is_coherent().unwrap(),
            Query::Subsumes { sup, sub } => ws.try_subsumes(sup, sub).unwrap(),
            Query::Disjoint(a, b) => ws.try_disjoint(a, b).unwrap(),
            Query::Equivalent(a, b) => ws.try_equivalent(a, b).unwrap(),
        };
        let expected = if expected { Outcome::Proved } else { Outcome::Disproved };
        assert_eq!(*outcome, expected, "batch answer for {q:?} ({context})");
    }
}

fn base_schema(seed: u64) -> Schema {
    let params = RandomSchemaParams {
        classes: 3 + (seed as usize % 3),
        attrs: 1,
        rels: 0,
        isa_density: 0.6,
        max_bound: 2,
    };
    random_schema(&params, seed)
}

fn run_scenario(seed: u64, strategy: Strategy, threads: usize) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(threads as u64));
    let mut ws = Workspace::new(base_schema(seed), config(strategy, threads));
    let context = format!("seed={seed} strategy={strategy:?} threads={threads}");
    assert_agreement(&mut ws, &context);

    let edits = if slow() { 10 } else { 5 };
    let mut fresh_names = 0;
    let mut applied = 0;
    for step in 0..edits {
        let delta = random_delta(ws.schema(), &mut rng, &mut fresh_names);
        let before = ws.schema().clone();
        match ws.apply(&delta) {
            Ok(()) => applied += 1,
            Err(_) => {
                // A rejected edit must leave the schema untouched.
                assert_eq!(
                    format!("{:?}", ws.schema()),
                    format!("{before:?}"),
                    "rejected edit mutated the schema ({context})"
                );
                continue;
            }
        }
        let step_context = format!("{context} step={step} delta={delta:?}");
        assert_agreement(&mut ws, &step_context);
        if step == edits / 2 {
            assert_batch_agreement(&mut ws, &step_context);
        }
    }

    // Walking back through history must answer from the bundle cache:
    // every version on the undo stack was queried when it was current.
    while ws.undo() {
        let misses = ws.stats().bundle_misses;
        assert!(ws.try_is_coherent().is_ok());
        assert_eq!(ws.stats().bundle_misses, misses, "undo missed the cache ({context})");
    }
    while ws.redo() {
        let misses = ws.stats().bundle_misses;
        assert!(ws.try_is_coherent().is_ok());
        assert_eq!(ws.stats().bundle_misses, misses, "redo missed the cache ({context})");
    }
    assert_agreement(&mut ws, &format!("{context} after-replay"));
    assert_eq!(ws.stats().edits_applied, applied);
}

#[test]
fn random_edit_sequences_agree_with_fresh_reasoner() {
    let seeds: u64 = if slow() { 10 } else { 3 };
    let strategies = [Strategy::Auto, Strategy::Preselect, Strategy::Sat, Strategy::Naive];
    for seed in 0..seeds {
        for strategy in strategies {
            for threads in [1usize, 2, 4] {
                run_scenario(seed, strategy, threads);
            }
        }
    }
}

/// Fault injection: a budget that trips mid-rebuild must surface as an
/// error, leave no poisoned cache entry behind, and a retry under an
/// unbounded budget must answer exactly like a fresh reasoner —
/// including when the first attempt died halfway through a cluster
/// splice, with some clusters already cached.
#[test]
fn tripped_rebuilds_do_not_poison_the_cache() {
    let trip_points: Vec<u64> = if slow() {
        (1..=40).collect()
    } else {
        vec![1, 2, 3, 5, 8, 13, 21]
    };
    for seed in 0..if slow() { 6u64 } else { 2 } {
        let schema = base_schema(seed);
        for strategy in [Strategy::Auto, Strategy::Preselect, Strategy::Sat] {
            for threads in [1usize, 2] {
                for &k in &trip_points {
                    let mut ws = Workspace::new(
                        schema.clone(),
                        ReasonerConfig {
                            budget: Budget::trip_after(k),
                            ..config(strategy, threads)
                        },
                    );
                    let context =
                        format!("seed={seed} strategy={strategy:?} threads={threads} k={k}");
                    // Either the build survives k checkpoints (correct
                    // answer required) or it trips (error required).
                    match ws.try_is_coherent() {
                        Ok(v) => {
                            let fresh = Reasoner::new(&schema);
                            assert_eq!(v, fresh.try_is_coherent().unwrap(), "{context}");
                        }
                        Err(ReasonerError::BudgetExhausted(_)) => {}
                        Err(e) => panic!("unexpected error {e:?} ({context})"),
                    }
                    // Whatever happened, an unbounded retry must agree
                    // with a fresh reasoner on everything.
                    ws.set_budget(Budget::unbounded());
                    assert_agreement(&mut ws, &format!("{context} after-retry"));

                    // And an edit after the incident must still work.
                    ws.apply(&SchemaDelta::AddClass { name: "PostTrip".into() }).unwrap();
                    assert_agreement(&mut ws, &format!("{context} after-retry-edit"));
                }
            }
        }
    }
}

/// The answers must not depend on the thread count even after edits —
/// bit-identical outcomes across workspaces driven through the same
/// edit script with different `threads`.
#[test]
fn thread_count_is_invisible_across_edit_sequences() {
    for seed in 0..if slow() { 8u64 } else { 3 } {
        let script: Vec<SchemaDelta> = {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut probe = Workspace::new(base_schema(seed), config(Strategy::Auto, 1));
            let mut fresh_names = 0;
            let mut script = Vec::new();
            for _ in 0..if slow() { 8 } else { 4 } {
                let delta = random_delta(probe.schema(), &mut rng, &mut fresh_names);
                if probe.apply(&delta).is_ok() {
                    script.push(delta);
                }
            }
            script
        };
        let mut answers: Vec<Vec<Outcome>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut ws = Workspace::new(base_schema(seed), config(Strategy::Auto, threads));
            let mut transcript = Vec::new();
            for delta in &script {
                ws.apply(delta).unwrap();
                let ids: Vec<ClassId> = ws.schema().symbols().class_ids().collect();
                let mut queries = vec![Query::IsCoherent];
                queries.extend(ids.iter().map(|&c| Query::IsSatisfiable(c)));
                for &a in &ids {
                    for &b in &ids {
                        queries.push(Query::Subsumes { sup: a, sub: b });
                    }
                }
                transcript.extend(ws.query_batch(&queries));
            }
            answers.push(transcript);
        }
        assert_eq!(answers[0], answers[1], "threads=2 diverged (seed={seed})");
        assert_eq!(answers[0], answers[2], "threads=4 diverged (seed={seed})");
    }
}
