//! Differential suite for lazy column generation: `Strategy::ColumnGen`
//! must give bit-identical satisfiability answers to every eager
//! strategy (and to the brute-force finite-model oracle on small
//! schemas), across thread counts and across budget trip points — and
//! an aborted pricing run must never poison a cache: retrying the same
//! reasoner or workspace reproduces the exact answers.
//!
//! The default run keeps the sweep small; set `CAR_SLOW_TESTS=1` for
//! more seeds and a denser trip-point grid.

use car::baseline::{search_model, BruteForceBudget, BruteForceVerdict};
use car::core::colgen::colgen_counters;
use car::core::incremental::Workspace;
use car::core::persist::{DiskStore, StoreLimits};
use car::core::preselection::Preselection;
use car::core::reasoner::{Reasoner, ReasonerConfig, ReasonerError, Strategy};
use car::core::syntax::{AttRef, Card, ClassFormula, Schema, SchemaBuilder};
use car::core::{Budget, ClassId};
use car::reductions::generators::{random_schema, RandomSchemaParams};
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

fn slow() -> bool {
    std::env::var("CAR_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

fn config(strategy: Strategy, threads: usize) -> ReasonerConfig {
    ReasonerConfig {
        strategy,
        threads: NonZeroUsize::new(threads).unwrap(),
        ..ReasonerConfig::default()
    }
}

/// Per-class satisfiability verdicts, the "bit-identical" unit of
/// comparison across strategies.
fn verdicts(schema: &Schema, config: ReasonerConfig) -> Vec<bool> {
    let r = Reasoner::with_config(schema, config);
    schema
        .symbols()
        .class_ids()
        .map(|c| r.try_is_satisfiable(c).expect("in-budget run must answer"))
        .collect()
}

#[test]
fn lazy_matches_every_eager_strategy_across_thread_counts() {
    let params = RandomSchemaParams {
        classes: 4,
        attrs: 2,
        rels: 1,
        isa_density: 0.7,
        max_bound: 2,
    };
    let seeds = if slow() { 0..60 } else { 0..20 };
    for seed in seeds {
        let schema = random_schema(&params, seed);
        let reference = verdicts(&schema, config(Strategy::Sat, 1));
        for strategy in [
            Strategy::Naive,
            Strategy::Sat,
            Strategy::Preselect,
            Strategy::ColumnGen,
            Strategy::Auto,
        ] {
            for threads in [1, 2, 4] {
                assert_eq!(
                    verdicts(&schema, config(strategy, threads)),
                    reference,
                    "strategy {strategy:?}, threads {threads}, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn lazy_agrees_with_the_brute_force_oracle_on_small_schemas() {
    let params = RandomSchemaParams {
        classes: 3,
        attrs: 1,
        rels: 1,
        isa_density: 0.7,
        max_bound: 2,
    };
    let budget = BruteForceBudget { max_universe: 3, max_candidates: 2_000_000 };
    let mut witnessed_sat = 0;
    let mut witnessed_unsat = 0;
    for seed in 0..30 {
        let schema = random_schema(&params, seed);
        let lazy = Reasoner::with_config(&schema, config(Strategy::ColumnGen, 1));
        let eager = Reasoner::with_config(&schema, config(Strategy::Sat, 1));
        for class in schema.symbols().class_ids() {
            let lazy_sat = lazy.try_is_satisfiable(class).expect("small schema");
            assert_eq!(
                lazy_sat,
                eager.try_is_satisfiable(class).unwrap(),
                "class {} seed {seed}",
                schema.class_name(class)
            );
            match search_model(&schema, class, &budget) {
                BruteForceVerdict::Satisfiable(model) => {
                    assert!(model.is_model(&schema));
                    assert!(
                        lazy_sat,
                        "brute force found a model for {} (seed {seed}) but the \
                         lazy path disagrees",
                        schema.class_name(class)
                    );
                    witnessed_sat += 1;
                }
                BruteForceVerdict::NoModelWithinBound => {
                    if !lazy_sat {
                        witnessed_unsat += 1;
                    }
                }
                BruteForceVerdict::BudgetExceeded => {}
            }
        }
    }
    assert!(witnessed_sat > 15, "only {witnessed_sat} satisfiable cases exercised");
    assert!(witnessed_unsat >= 2, "only {witnessed_unsat} unsatisfiable cases exercised");
}

/// Budget trip points: at every prefix of the lazy run's checkpoint
/// sequence, aborting surfaces `BudgetExhausted` (never a wrong
/// answer), and retrying the *same* reasoner with a fresh budget
/// reproduces the reference answers exactly — an aborted pricing pass
/// must not leave partial state behind.
#[test]
fn aborted_pricing_never_poisons_the_reasoner() {
    let params = RandomSchemaParams {
        classes: 4,
        attrs: 2,
        rels: 1,
        isa_density: 0.8,
        max_bound: 2,
    };
    let seeds: &[u64] = if slow() { &[0, 1, 2, 3, 4, 5] } else { &[0, 1, 2] };
    for &seed in seeds {
        let schema = random_schema(&params, seed);
        let reference = verdicts(&schema, config(Strategy::ColumnGen, 1));

        // Discover the checkpoint count of a full run.
        let counting = Budget::counting();
        let cfg = ReasonerConfig { budget: counting.clone(), ..config(Strategy::ColumnGen, 1) };
        let _ = verdicts(&schema, cfg);
        let total = counting.checkpoints_used();
        assert!(total > 0, "lazy run must poll its budget (seed {seed})");

        let step = if slow() { 1 } else { (total / 8).max(1) };
        for threads in [1, 2, 4] {
            let mut trip = 1;
            while trip <= total {
                let mut r = Reasoner::with_config(
                    &schema,
                    ReasonerConfig {
                        budget: Budget::trip_after(trip),
                        ..config(Strategy::ColumnGen, threads)
                    },
                );
                let classes: Vec<ClassId> = schema.symbols().class_ids().collect();
                let tripped = match r.try_is_satisfiable(classes[0]) {
                    Ok(_) => false,
                    Err(ReasonerError::BudgetExhausted(_)) => true,
                    Err(e) => panic!("unexpected error at trip {trip}: {e:?}"),
                };
                // Whether or not the first query tripped, a fresh budget
                // on the same reasoner must reproduce the reference.
                r.set_budget(Budget::unbounded());
                let after: Vec<bool> = classes
                    .iter()
                    .map(|&c| r.try_is_satisfiable(c).unwrap())
                    .collect();
                assert_eq!(
                    after, reference,
                    "seed {seed}, threads {threads}, trip {trip} (tripped={tripped})"
                );
                trip += step;
            }
        }
    }
}

/// An aborted lazy run through a [`Workspace`] with a durable store
/// attached must not write a poisoned cache entry: the same workspace
/// retried, and a second workspace sharing the store, both reproduce
/// the reference answers.
#[test]
fn aborted_pricing_never_poisons_the_workspace_or_the_store() {
    let dir = std::env::temp_dir()
        .join(format!("car-colgen-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        Arc::new(Mutex::new(DiskStore::open_real(&dir, StoreLimits::default()).unwrap()));

    let params = RandomSchemaParams {
        classes: 4,
        attrs: 2,
        rels: 1,
        isa_density: 0.8,
        max_bound: 2,
    };
    let schema = random_schema(&params, 7);
    let reference = verdicts(&schema, config(Strategy::ColumnGen, 1));
    let classes: Vec<ClassId> = schema.symbols().class_ids().collect();

    let mut ws = Workspace::new(
        schema.clone(),
        ReasonerConfig {
            budget: Budget::trip_after(1),
            ..config(Strategy::ColumnGen, 1)
        },
    );
    ws.set_store(store.clone());
    match ws.try_is_satisfiable(classes[0]) {
        Err(ReasonerError::BudgetExhausted(_)) => {}
        other => panic!("trip_after(1) must exhaust, got {other:?}"),
    }
    // Retry on the same workspace.
    ws.set_budget(Budget::unbounded());
    let retried: Vec<bool> =
        classes.iter().map(|&c| ws.try_is_satisfiable(c).unwrap()).collect();
    assert_eq!(retried, reference, "workspace retry after abort");
    assert_eq!(ws.stats().effective_strategy, Some(Strategy::ColumnGen));

    // A second workspace sharing the store — whatever the abort left
    // behind, answers stay bit-identical.
    let mut ws2 = Workspace::new(schema, config(Strategy::ColumnGen, 1));
    ws2.set_store(store);
    let shared: Vec<bool> =
        classes.iter().map(|&c| ws2.try_is_satisfiable(c).unwrap()).collect();
    assert_eq!(shared, reference, "second workspace over the shared store");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A ring of `n` classes over ONE shared attribute `f`, each forced to
/// own an `f`-successor in the next class. Sharing the attribute puts
/// every class into one §4.3 co-occurrence group, so the whole ring is
/// a single cluster — and with no isa constraints, eager enumeration
/// over that cluster is exactly 2^n − 1 compound classes. The lazy
/// path must answer with a working set that stays near-linear in `n`.
fn ring_schema(n: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let classes: Vec<ClassId> = (0..n).map(|i| b.class(&format!("C{i}"))).collect();
    let f = b.attribute("f");
    for i in 0..n {
        let next = classes[(i + 1) % n];
        b.define_class(classes[i])
            .attr(AttRef::Direct(f), Card::new(1, 1), ClassFormula::class(next))
            .finish();
    }
    b.build().unwrap()
}

#[test]
fn lazy_answers_a_single_cluster_beyond_the_enumeration_ceiling() {
    let n = 50;
    let schema = ring_schema(n);
    assert_eq!(
        Preselection::compute(&schema).clusters().len(),
        1,
        "the ring must form a single cluster for the test to mean anything"
    );

    let before = colgen_counters();
    let r = Reasoner::with_config(&schema, config(Strategy::ColumnGen, 1));
    for class in schema.symbols().class_ids() {
        assert!(
            r.try_is_satisfiable(class).expect("lazy run within default budget"),
            "every ring class is satisfiable"
        );
    }
    let stats = r.try_stats().unwrap();
    let after = colgen_counters();

    assert_eq!(stats.effective_strategy, Some(Strategy::ColumnGen));
    // The whole point: the working set stays tiny relative to the 2^50
    // compound classes eager enumeration would have to materialize.
    assert!(
        stats.num_compound_classes <= 4 * n,
        "working set blew up: {} compound classes for n={n}",
        stats.num_compound_classes
    );
    let priced = after.columns_priced - before.columns_priced;
    assert!(priced >= 1, "pricing must have run");
    assert!(
        priced <= (20 * n) as u64,
        "columns priced ({priced}) should stay near-linear in n={n}"
    );
}
