//! Experiment E2: the two-phase algorithm against the brute-force
//! finite-model oracle on random schemas.
//!
//! The two directions of Theorem 3.3 are checked independently:
//!
//! * whenever bounded exhaustive search finds a model with class `C`
//!   nonempty, the two-phase algorithm must report `C` satisfiable
//!   (completeness evidence);
//! * whenever the two-phase algorithm reports `C` satisfiable, model
//!   extraction must produce an interpretation that the independent
//!   checker verifies and in which `C` is nonempty (soundness, fully
//!   witnessed).

use car::baseline::{search_model, BruteForceBudget, BruteForceVerdict};
use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::reductions::generators::{random_schema, RandomSchemaParams};

#[test]
fn two_phase_agrees_with_brute_force_on_random_schemas() {
    let params = RandomSchemaParams {
        classes: 3,
        attrs: 1,
        rels: 1,
        isa_density: 0.7,
        max_bound: 2,
    };
    let budget = BruteForceBudget { max_universe: 3, max_candidates: 2_000_000 };

    let mut checked_sat = 0;
    let mut checked_unsat_evidence = 0;
    for seed in 0..40 {
        let schema = random_schema(&params, seed);
        let reasoner = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
        );
        for class in schema.symbols().class_ids() {
            let two_phase = reasoner.try_is_satisfiable(class).expect("small schema");
            match search_model(&schema, class, &budget) {
                BruteForceVerdict::Satisfiable(model) => {
                    assert!(model.is_model(&schema));
                    assert!(
                        two_phase,
                        "brute force found a model for {} (seed {seed}) but the \
                         two-phase algorithm disagrees",
                        schema.class_name(class)
                    );
                    checked_sat += 1;
                }
                BruteForceVerdict::NoModelWithinBound => {
                    // Not a proof of unsatisfiability, but if the two-phase
                    // algorithm says satisfiable it must put a verified
                    // model on the table.
                    if two_phase {
                        let model = reasoner
                            .extract_model()
                            .expect("satisfiable class must yield a model");
                        assert!(model.is_model(&schema));
                        assert!(
                            !model.class_extension(class).is_empty(),
                            "extracted model leaves {} empty (seed {seed})",
                            schema.class_name(class)
                        );
                    } else {
                        checked_unsat_evidence += 1;
                    }
                }
                BruteForceVerdict::BudgetExceeded => {}
            }
        }
    }
    // The workload must exercise both outcomes to mean anything.
    assert!(checked_sat > 15, "only {checked_sat} satisfiable cases exercised");
    assert!(
        checked_unsat_evidence >= 2,
        "only {checked_unsat_evidence} unsatisfiable cases exercised"
    );
}

#[test]
fn extraction_agrees_with_analysis_on_random_schemas() {
    let params = RandomSchemaParams {
        classes: 4,
        attrs: 2,
        rels: 0,
        isa_density: 0.8,
        max_bound: 3,
    };
    for seed in 100..130 {
        let schema = random_schema(&params, seed);
        let reasoner = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
        );
        match reasoner.extract_model() {
            Ok(model) => {
                assert!(model.is_model(&schema), "seed {seed}");
                for class in schema.symbols().class_ids() {
                    assert_eq!(
                        reasoner.try_is_satisfiable(class).unwrap(),
                        !model.class_extension(class).is_empty(),
                        "class {} seed {seed}",
                        schema.class_name(class)
                    );
                }
            }
            Err(e) => panic!("extraction failed on seed {seed}: {e}"),
        }
    }
}
