//! Property-based invariants of the reasoning pipeline over randomly
//! generated schemas (proptest drives the generator parameters and
//! seeds; the schemas themselves come from `car-reductions`).

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy as EnumStrategy};
use car::core::Schema;
use car::reductions::generators::{random_schema, RandomSchemaParams};
use proptest::prelude::*;

fn arb_schema() -> impl proptest::strategy::Strategy<Value = Schema> {
    (
        2usize..=4,  // classes
        0usize..=1,  // attrs
        0usize..=1,  // rels
        0u64..=3,    // max bound
        any::<u64>(), // seed
    )
        .prop_map(|(classes, attrs, rels, max_bound, seed)| {
            let params = RandomSchemaParams {
                classes,
                attrs,
                rels,
                isa_density: 0.7,
                max_bound,
            };
            random_schema(&params, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All enumeration strategies answer satisfiability identically.
    #[test]
    fn strategies_agree(schema in arb_schema()) {
        let answers = |strategy: EnumStrategy| -> Vec<bool> {
            let r = Reasoner::with_config(
                &schema,
                ReasonerConfig { strategy, ..Default::default() },
            );
            schema
                .symbols()
                .class_ids()
                .map(|c| r.try_is_satisfiable(c).unwrap())
                .collect()
        };
        let naive = answers(EnumStrategy::Naive);
        prop_assert_eq!(&naive, &answers(EnumStrategy::Sat));
        prop_assert_eq!(&naive, &answers(EnumStrategy::Preselect));
        prop_assert_eq!(&naive, &answers(EnumStrategy::Auto));
    }

    /// Extracted models always verify, and class emptiness in the model
    /// matches the satisfiability verdicts.
    #[test]
    fn extraction_is_sound_and_exhaustive(schema in arb_schema()) {
        let r = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: EnumStrategy::Sat, ..Default::default() },
        );
        let model = r.extract_model().unwrap();
        prop_assert!(model.is_model(&schema));
        for class in schema.symbols().class_ids() {
            prop_assert_eq!(
                r.try_is_satisfiable(class).unwrap(),
                !model.class_extension(class).is_empty(),
                "class {}", schema.class_name(class)
            );
        }
    }

    /// Subsumption is a preorder compatible with satisfiability, and
    /// disjointness is symmetric; unsatisfiable classes are subsumed by
    /// and disjoint from everything.
    #[test]
    fn implication_laws(schema in arb_schema()) {
        let r = Reasoner::new(&schema);
        let ids: Vec<_> = schema.symbols().class_ids().collect();
        for &a in &ids {
            prop_assert!(r.subsumes(a, a), "reflexivity");
            for &b in &ids {
                prop_assert_eq!(r.disjoint(a, b), r.disjoint(b, a), "symmetry");
                if !r.try_is_satisfiable(a).unwrap() {
                    prop_assert!(r.subsumes(b, a), "empty class subsumed by all");
                    prop_assert!(r.disjoint(a, b), "empty class disjoint from all");
                }
                for &c in &ids {
                    if r.subsumes(b, a) && r.subsumes(c, b) {
                        prop_assert!(r.subsumes(c, a), "transitivity");
                    }
                }
            }
        }
    }

    /// The §4.4 hierarchy fast path produces exactly the consistent
    /// compound classes the naive sweep finds, for every tree shape.
    #[test]
    fn hierarchy_fast_path_matches_naive(depth in 1usize..4, branching in 1usize..4) {
        use car::core::{enumerate, hierarchy};
        use car::reductions::generators::hierarchy_schema;
        use std::collections::BTreeSet;
        let schema = hierarchy_schema(depth, branching);
        prop_assume!(schema.num_classes() <= 25); // naive sweep bound
        let h = hierarchy::detect(&schema).expect("generator emits hierarchies");
        let fast: BTreeSet<_> =
            hierarchy::path_closure_ccs(&schema, &h).into_iter().collect();
        let naive: BTreeSet<_> =
            enumerate::naive(&schema, usize::MAX).unwrap().into_iter().collect();
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(fast.len(), schema.num_classes());
    }

    /// The Theorem 4.5 reification preserves satisfiability for every
    /// class, across arities and filler-pool sizes.
    #[test]
    fn arity_reduction_preserves_satisfiability(
        arity in 3usize..5,
        extra in 0usize..3,
    ) {
        use car::reductions::generators::kary_schema;
        let schema = kary_schema(arity, extra);
        let with = Reasoner::with_config(
            &schema,
            ReasonerConfig {
                strategy: EnumStrategy::Preselect,
                arity_reduction: true,
                ..Default::default()
            },
        );
        let without = Reasoner::with_config(
            &schema,
            ReasonerConfig {
                strategy: EnumStrategy::Preselect,
                arity_reduction: false,
                ..Default::default()
            },
        );
        for class in schema.symbols().class_ids() {
            prop_assert_eq!(
                with.try_is_satisfiable(class).unwrap(),
                without.try_is_satisfiable(class).unwrap(),
                "class {}", schema.class_name(class)
            );
        }
    }

    /// A satisfiable class stays satisfiable when the schema gains an
    /// unrelated fresh class (monotonicity under conservative extension).
    #[test]
    fn conservative_extension_preserves_answers(schema in arb_schema()) {
        use car::parser::{parse_schema, pretty};
        let r1 = Reasoner::new(&schema);
        let extended_text = format!("{}\nclass Fresh_Unrelated endclass\n", pretty(&schema));
        let extended = parse_schema(&extended_text).unwrap();
        let r2 = Reasoner::new(&extended);
        for class in schema.symbols().class_ids() {
            let name = schema.class_name(class);
            let c2 = extended.class_id(name).unwrap();
            prop_assert_eq!(
                r1.try_is_satisfiable(class).unwrap(),
                r2.try_is_satisfiable(c2).unwrap(),
                "class {}", name
            );
        }
        prop_assert!(r2.try_is_satisfiable(extended.class_id("Fresh_Unrelated").unwrap()).unwrap());
    }
}
