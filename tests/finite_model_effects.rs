//! Experiment E9: finite-model effects — schemas satisfiable over
//! infinite domains but not over the finite database states of CAR
//! semantics, and their balanced (finitely satisfiable) counterparts.

use car::core::reasoner::Reasoner;
use car::parser::parse_schema;

/// (schema text, class, finitely satisfiable?)
fn cases() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        // Unbalanced binary tree: infinite models only.
        (
            "class Node isa Tree attributes child : (2, 2) Node endclass
             class Tree attributes (inv child) : (0, 1) Node endclass",
            "Node",
            false,
        ),
        // Balanced: 2 out, 2 in — folds into a finite structure.
        (
            "class Node attributes child : (2, 2) Node; (inv child) : (2, 2) Node endclass",
            "Node",
            true,
        ),
        // Strict growth along a subclass: |B| >= 2|A|, B ⊆ A, both
        // nonempty — impossible finitely, fine infinitely.
        (
            "class A attributes f : (2, 2) B endclass
             class B isa A attributes (inv f) : (1, 1) A endclass",
            "A",
            false,
        ),
        // Relation-based count conflict: 2|P| tuples = 1|P| tuples.
        (
            "class P participates_in M[mentor] : (2, 2); M[protege] : (1, 1) endclass
             relation M(mentor, protege)
               constraints (mentor : P); (protege : P)
             endrelation",
            "P",
            false,
        ),
        // Same shape, balanced: 2 = 2.
        (
            "class P participates_in M[mentor] : (2, 2); M[protege] : (2, 2) endclass
             relation M(mentor, protege)
               constraints (mentor : P); (protege : P)
             endrelation",
            "P",
            true,
        ),
        // A pure cycle through three classes with strict growth.
        (
            "class A attributes f : (2, 2) B; (inv h) : (0, 1) C endclass
             class B attributes g : (1, 1) C; (inv f) : (0, 1) A endclass
             class C attributes h : (1, 1) A; (inv g) : (0, 1) B endclass",
            "A",
            false,
        ),
    ]
}

#[test]
fn finite_model_reasoning_distinguishes_the_cases() {
    for (text, class, expected) in cases() {
        let schema = parse_schema(text).expect("parses");
        let reasoner = Reasoner::new(&schema);
        let class_id = schema.class_id(class).unwrap();
        assert_eq!(
            reasoner.is_satisfiable(class_id),
            expected,
            "class {class} in:\n{text}"
        );
        if expected {
            // Finitely satisfiable: put a verified model on the table.
            let model = reasoner.extract_model().expect("model");
            assert!(model.is_model(&schema));
            assert!(!model.class_extension(class_id).is_empty());
        }
    }
}

#[test]
fn unsatisfiable_classes_do_not_poison_the_rest() {
    // The infinite-tree Node coexists with an unrelated class, which
    // must stay satisfiable, and the extracted model simply leaves the
    // Node classes empty.
    let text = "
        class Node isa Tree attributes child : (2, 2) Node endclass
        class Tree attributes (inv child) : (0, 1) Node endclass
        class Bystander endclass
    ";
    let schema = parse_schema(text).expect("parses");
    let reasoner = Reasoner::new(&schema);
    assert!(!reasoner.is_satisfiable(schema.class_id("Node").unwrap()));
    assert!(reasoner.is_satisfiable(schema.class_id("Bystander").unwrap()));
    assert!(reasoner.is_satisfiable(schema.class_id("Tree").unwrap()));
    let model = reasoner.extract_model().expect("model");
    assert!(model.class_extension(schema.class_id("Node").unwrap()).is_empty());
    assert!(!model.class_extension(schema.class_id("Bystander").unwrap()).is_empty());
}
