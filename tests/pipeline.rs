//! Cross-crate pipeline tests: text → parser → reasoner → model
//! extractor → independent checker, plus strategy-agreement and
//! transform-invariance properties on generated schemas.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::core::Schema;
use car::parser::{parse_schema, pretty};
use car::reductions::generators::{
    clustered_schema, hierarchy_schema, random_schema, ratio_chain_schema,
    RandomSchemaParams,
};

fn answers(schema: &Schema, strategy: Strategy) -> Vec<bool> {
    let r = Reasoner::with_config(
        schema,
        ReasonerConfig { strategy, arity_reduction: false, ..Default::default() },
    );
    schema
        .symbols()
        .class_ids()
        .map(|c| r.try_is_satisfiable(c).expect("within limits"))
        .collect()
}

#[test]
fn all_strategies_agree_on_random_schemas() {
    let params = RandomSchemaParams {
        classes: 4,
        attrs: 1,
        rels: 1,
        isa_density: 0.7,
        max_bound: 2,
    };
    for seed in 0..15 {
        let schema = random_schema(&params, seed);
        let naive = answers(&schema, Strategy::Naive);
        let sat = answers(&schema, Strategy::Sat);
        let preselect = answers(&schema, Strategy::Preselect);
        let auto = answers(&schema, Strategy::Auto);
        assert_eq!(naive, sat, "seed {seed}");
        assert_eq!(naive, preselect, "seed {seed}");
        assert_eq!(naive, auto, "seed {seed}");
    }
}

#[test]
fn all_strategies_agree_on_structured_schemas() {
    for schema in [
        clustered_schema(3, 3),
        hierarchy_schema(2, 3),
        ratio_chain_schema(3, 2),
    ] {
        let naive = answers(&schema, Strategy::Naive);
        assert_eq!(naive, answers(&schema, Strategy::Sat));
        assert_eq!(naive, answers(&schema, Strategy::Preselect));
        assert_eq!(naive, answers(&schema, Strategy::Auto));
        assert!(naive.iter().all(|&b| b), "structured schemas are coherent");
    }
}

#[test]
fn text_to_verified_model_pipeline() {
    let text = "
        class Library
          attributes holds : (100, 200) Book
        endclass
        class Book
          isa not Library
          attributes (inv holds) : (1, 1) Library
        endclass
    ";
    let schema = parse_schema(text).expect("parses");
    let reasoner = Reasoner::new(&schema);
    assert!(reasoner.try_is_coherent().unwrap());
    let model = reasoner.extract_model().expect("model");
    assert!(model.is_model(&schema));
    let library = schema.class_id("Library").unwrap();
    let book = schema.class_id("Book").unwrap();
    // Each library holds 100..=200 books, each book held exactly once.
    let libs = model.class_extension(library).len();
    let books = model.class_extension(book).len();
    assert!(books >= 100 * libs && books <= 200 * libs);
}

#[test]
fn pretty_round_trip_preserves_reasoning_on_generated_schemas() {
    for seed in 0..10 {
        let params = RandomSchemaParams::default();
        let schema = random_schema(&params, seed);
        let printed = pretty(&schema);
        let reparsed = parse_schema(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: pretty output must parse: {e}\n{printed}"));
        let r1 = Reasoner::new(&schema);
        let r2 = Reasoner::new(&reparsed);
        for class in schema.symbols().class_ids() {
            let name = schema.class_name(class);
            let c2 = reparsed.class_id(name).expect("class survives round trip");
            assert_eq!(
                r1.try_is_satisfiable(class).unwrap(),
                r2.try_is_satisfiable(c2).unwrap(),
                "seed {seed}, class {name}"
            );
        }
    }
}

#[test]
fn renaming_classes_does_not_change_answers() {
    // Satisfiability is a property of the schema's structure, not its
    // names: rebuild a parsed schema with mangled names and compare.
    let text = "
        class A isa not B endclass
        class B attributes f : (1, 2) A endclass
        class C isa A or B endclass
    ";
    let schema = parse_schema(text).expect("parses");
    let mangled_text = text
        .replace('A', "Alpha_Prime")
        .replace('B', "Beta_Prime")
        .replace('C', "Gamma_Prime");
    let mangled = parse_schema(&mangled_text).expect("parses");
    let r1 = Reasoner::new(&schema);
    let r2 = Reasoner::new(&mangled);
    for (orig, renamed) in [("A", "Alpha_Prime"), ("B", "Beta_Prime"), ("C", "Gamma_Prime")] {
        assert_eq!(
            r1.is_satisfiable(schema.class_id(orig).unwrap()),
            r2.is_satisfiable(mangled.class_id(renamed).unwrap()),
        );
    }
}
