//! Serial-vs-parallel agreement: the `threads` knob of
//! [`ReasonerConfig`] must never change an answer, an error or a
//! statistic — across enumeration strategies, arity reduction on/off and
//! randomly generated schemas.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy as EnumStrategy};
use car::core::Schema;
use car::reductions::generators::{random_schema, RandomSchemaParams};
use proptest::prelude::*;
use std::num::NonZeroUsize;

/// `CAR_SLOW_TESTS=1` restores the full sweep; the default run keeps a
/// reduced case budget (the scheduled CI job runs the full one).
fn slow() -> bool {
    std::env::var("CAR_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

fn arb_schema() -> impl proptest::strategy::Strategy<Value = Schema> {
    (
        2usize..=4,   // classes
        0usize..=1,   // attrs
        0usize..=1,   // rels
        0u64..=3,     // max bound
        any::<u64>(), // seed
    )
        .prop_map(|(classes, attrs, rels, max_bound, seed)| {
            let params = RandomSchemaParams {
                classes,
                attrs,
                rels,
                isa_density: 0.7,
                max_bound,
            };
            random_schema(&params, seed)
        })
}

fn reasoner(
    schema: &Schema,
    strategy: EnumStrategy,
    arity_reduction: bool,
    threads: usize,
) -> Reasoner<'_> {
    Reasoner::with_config(
        schema,
        ReasonerConfig {
            strategy,
            arity_reduction,
            threads: NonZeroUsize::new(threads).unwrap(),
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if slow() { 16 } else { 6 }))]

    /// For every strategy × arity-reduction combination, the parallel
    /// reasoner returns the same satisfiability verdicts, implication
    /// verdicts and analysis statistics as the serial one.
    #[test]
    fn parallel_reasoner_agrees_with_serial(schema in arb_schema(), threads in 2usize..=4) {
        let strategies = [
            EnumStrategy::Naive,
            EnumStrategy::Sat,
            EnumStrategy::Preselect,
            EnumStrategy::Auto,
        ];
        let ids: Vec<_> = schema.symbols().class_ids().collect();
        for strategy in strategies {
            for arity_reduction in [false, true] {
                let serial = reasoner(&schema, strategy, arity_reduction, 1);
                let parallel = reasoner(&schema, strategy, arity_reduction, threads);
                for &c in &ids {
                    prop_assert_eq!(
                        serial.try_is_satisfiable(c).unwrap(),
                        parallel.try_is_satisfiable(c).unwrap(),
                        "satisfiability of {} under {:?}", schema.class_name(c), strategy
                    );
                }
                prop_assert_eq!(
                    serial.try_stats().unwrap(),
                    parallel.try_stats().unwrap(),
                    "stats under {:?}, arity_reduction={}", strategy, arity_reduction
                );
                prop_assert_eq!(
                    serial.try_classification().unwrap(),
                    parallel.try_classification().unwrap(),
                    "classification under {:?}", strategy
                );
                for &a in &ids {
                    for &b in &ids {
                        prop_assert_eq!(
                            serial.try_subsumes(a, b).unwrap(),
                            parallel.try_subsumes(a, b).unwrap()
                        );
                        prop_assert_eq!(
                            serial.try_disjoint(a, b).unwrap(),
                            parallel.try_disjoint(a, b).unwrap()
                        );
                    }
                }
            }
        }
    }
}

/// Regression: identical `AnalysisStats` (iterations, LP calls, system
/// sizes) for `threads = 1` and `threads = N` on a schema that exercises
/// every phase — enumeration, expansion with relations and inverse
/// attributes, and a multi-round fixpoint.
#[test]
fn thread_count_leaves_stats_untouched() {
    use car::core::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};
    let mut b = SchemaBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let dead = b.class("Dead");
    let f = b.attribute("f");
    let r = b.relation("R", ["u", "v"]);
    let u = b.role("u");
    b.define_class(a)
        .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
        .participates(r, u, Card::new(1, 4))
        .finish();
    b.define_class(bb)
        .isa(ClassFormula::class(a))
        .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
        .finish();
    b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
    let schema = b.build().unwrap();

    let baseline = reasoner(&schema, EnumStrategy::Sat, false, 1)
        .try_stats()
        .unwrap();
    assert!(baseline.iterations >= 1);
    assert!(baseline.lp_calls >= 1);
    for threads in 2..=if slow() { 8 } else { 4 } {
        let stats = reasoner(&schema, EnumStrategy::Sat, false, threads)
            .try_stats()
            .unwrap();
        assert_eq!(stats, baseline, "threads={threads}");
    }
}
