//! Fault-injection harness for the resource-governance layer.
//!
//! [`Budget::trip_after`] deterministically fails the k-th checkpoint of
//! a pipeline run. Sweeping k across the whole checkpoint range — for
//! every enumeration strategy and several thread counts — asserts the
//! three-part contract of governed execution:
//!
//! 1. **clean failure**: tripping at any k yields a
//!    [`ReasonerError::BudgetExhausted`], never a panic, a deadlock or a
//!    wrong answer;
//! 2. **re-runnability**: after an injected failure, the *same*
//!    [`Reasoner`] re-run with an unbounded budget returns exactly the
//!    serial reference answers (failures are never cached, `OnceCell`
//!    bundles are never poisoned);
//! 3. **kind agreement**: serial and parallel runs that both trip
//!    surface the same error variant (checkpoint *counts* may differ
//!    across thread counts; kinds may not).
//!
//! Deadlines, cooperative cancellation (including from another thread,
//! mid-run), step quotas and memory quotas get targeted tests of the
//! same shape, plus a proptest sweep over random schemas.

use car::core::reasoner::{Outcome, Reasoner, ReasonerConfig, ReasonerError, Strategy};
use car::core::syntax::{AttRef, Card, ClassFormula, RoleClause, RoleLiteral, SchemaBuilder};
use car::core::{Budget, BudgetLimits, ClassId, Schema};
use car::reductions::generators::{random_schema, RandomSchemaParams};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

const STRATEGIES: [Strategy; 4] =
    [Strategy::Naive, Strategy::Sat, Strategy::Preselect, Strategy::Auto];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// `CAR_SLOW_TESTS=1` runs the full sweep (every thread count, a dense
/// trip-point grid, the complete proptest case budget); the default run
/// keeps a reduced matrix so the suite stays fast on every push. CI runs
/// the full sweep on a schedule.
fn slow() -> bool {
    std::env::var("CAR_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

/// Thread counts for the expensive sweeps (cheap targeted tests keep the
/// full [`THREAD_COUNTS`]).
fn sweep_thread_counts() -> &'static [usize] {
    if slow() {
        &THREAD_COUNTS
    } else {
        &[1, 2]
    }
}

fn governed(schema: &Schema, strategy: Strategy, threads: usize, budget: Budget) -> Reasoner<'_> {
    Reasoner::with_config(
        schema,
        ReasonerConfig {
            strategy,
            arity_reduction: true,
            threads: NonZeroUsize::new(threads).unwrap(),
            budget,
            ..ReasonerConfig::default()
        },
    )
}

/// Satisfiability of every class, or the first error.
fn all_sat(r: &Reasoner<'_>, schema: &Schema) -> Result<Vec<bool>, ReasonerError> {
    schema.symbols().class_ids().map(|c| r.try_is_satisfiable(c)).collect()
}

/// Serial, unbounded reference answers (strategy-independent).
fn reference(schema: &Schema) -> (Vec<bool>, Vec<(ClassId, ClassId)>) {
    let r = governed(schema, Strategy::Sat, 1, Budget::unbounded());
    (all_sat(&r, schema).unwrap(), r.try_classification().unwrap())
}

/// Seed schemas covering every pipeline phase: isa reasoning, attribute
/// links (direct + inverse), relations with role constraints, a
/// generalization hierarchy (Auto fast path), and an incoherent schema.
fn seed_schemas() -> Vec<(&'static str, Schema)> {
    let university = {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let course = b.class("Course");
        let taught_by = b.attribute("taught_by");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.define_class(course)
            .isa(ClassFormula::neg_class(person))
            .attr(AttRef::Direct(taught_by), Card::exactly(1), ClassFormula::class(professor))
            .finish();
        b.build().unwrap()
    };
    let relational = {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let t = b.class("T");
        let f = b.attribute("f");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        let v = b.role("v");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::new(1, 3), ClassFormula::class(t))
            .participates(r, u, Card::at_least(1))
            .finish();
        b.define_class(t)
            .isa(ClassFormula::neg_class(a))
            .attr(AttRef::Inverse(f), Card::new(0, 2), ClassFormula::top())
            .finish();
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral { role: v, formula: ClassFormula::class(bb) }]),
        );
        b.build().unwrap()
    };
    let hierarchy = {
        let mut b = SchemaBuilder::new();
        let root = b.class("Root");
        let l = b.class("L");
        let r_ = b.class("R");
        let ll = b.class("LL");
        b.define_class(l)
            .isa(ClassFormula::class(root).and(ClassFormula::neg_class(r_)))
            .finish();
        b.define_class(r_).isa(ClassFormula::class(root)).finish();
        b.define_class(ll).isa(ClassFormula::class(l)).finish();
        b.build().unwrap()
    };
    let incoherent = {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let dead = b.class("Dead");
        let f = b.attribute("f");
        b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::at_least(1), ClassFormula::class(dead))
            .finish();
        b.build().unwrap()
    };
    vec![
        ("university", university),
        ("relational", relational),
        ("hierarchy", hierarchy),
        ("incoherent", incoherent),
    ]
}

/// `n` pairwise-disjoint free classes: the naive strategy must sweep all
/// `2^n` subsets, so enumeration time is tunable via `n` while the
/// surviving expansion (singletons only) stays trivial.
fn wide_disjoint_schema(n: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.class(&format!("W{i}"))).collect();
    for i in 1..n {
        let mut formula = ClassFormula::neg_class(ids[0]);
        for &other in &ids[1..i] {
            formula = formula.and(ClassFormula::neg_class(other));
        }
        b.define_class(ids[i]).isa(formula).finish();
    }
    b.build().unwrap()
}

/// Number of checkpoints one full pipeline pass (satisfiability of every
/// class + classification) exposes under the given strategy/threads.
fn count_checkpoints(schema: &Schema, strategy: Strategy, threads: usize) -> u64 {
    let budget = Budget::counting();
    let r = governed(schema, strategy, threads, budget.clone());
    all_sat(&r, schema).unwrap();
    r.try_classification().unwrap();
    budget.checkpoints_used()
}

/// Checkpoints of the satisfiability pipeline alone (no classification).
fn count_sat_checkpoints(schema: &Schema, strategy: Strategy, threads: usize) -> u64 {
    let budget = Budget::counting();
    let r = governed(schema, strategy, threads, budget.clone());
    all_sat(&r, schema).unwrap();
    budget.checkpoints_used()
}

/// The tentpole sweep: trip the k-th checkpoint for every k (strided),
/// every strategy, every thread count, on every seed schema. Each run
/// must either agree with the reference or fail with `BudgetExhausted`;
/// the retried reasoner must always agree with the reference.
#[test]
fn injected_faults_never_panic_and_retries_recover() {
    for (name, schema) in seed_schemas() {
        let (ref_sat, ref_classification) = reference(&schema);
        for strategy in STRATEGIES {
            for &threads in sweep_thread_counts() {
                let total = count_checkpoints(&schema, strategy, threads);
                assert!(total > 0, "{name}/{strategy:?}: pipeline exposes no checkpoints");
                // Stride keeps the sweep bounded; always include the
                // edges (k=1 trips immediately, k=total+1 never trips).
                let grid = if slow() { 25 } else { 8 };
                let stride = (total / grid).max(1);
                let mut ks: Vec<u64> = (1..=total).step_by(stride as usize).collect();
                ks.push(total);
                ks.push(total + 1);
                for k in ks {
                    let mut r = governed(&schema, strategy, threads, Budget::trip_after(k));
                    match all_sat(&r, &schema) {
                        Ok(answers) => assert_eq!(
                            answers, ref_sat,
                            "{name}/{strategy:?}/threads={threads}/k={k}: wrong answers"
                        ),
                        Err(ReasonerError::BudgetExhausted(report)) => {
                            assert!(
                                report.steps >= k,
                                "{name}/{strategy:?}/threads={threads}/k={k}: \
                                 progress report predates the trip point"
                            );
                        }
                        Err(other) => panic!(
                            "{name}/{strategy:?}/threads={threads}/k={k}: \
                             unexpected error variant {other:?}"
                        ),
                    }
                    // Retry on the SAME reasoner with an unbounded
                    // budget: bundles must be unpoisoned and the answers
                    // exactly the serial reference.
                    r.set_budget(Budget::unbounded());
                    assert_eq!(
                        all_sat(&r, &schema).unwrap(),
                        ref_sat,
                        "{name}/{strategy:?}/threads={threads}/k={k}: retry diverged"
                    );
                    assert_eq!(
                        r.try_classification().unwrap(),
                        ref_classification,
                        "{name}/{strategy:?}/threads={threads}/k={k}: \
                         retry classification diverged"
                    );
                }
            }
        }
    }
}

/// Serial and parallel runs tripped at the same k surface the same error
/// *variant* (checkpoint counts may differ across thread counts, kinds
/// may not).
#[test]
fn serial_and_parallel_agree_on_the_error_variant() {
    for (name, schema) in seed_schemas() {
        for strategy in STRATEGIES {
            // k=1 trips the very first checkpoint of any run.
            let counts: Vec<u64> = THREAD_COUNTS
                .iter()
                .map(|&t| count_sat_checkpoints(&schema, strategy, t))
                .collect();
            let min_count = *counts.iter().min().unwrap();
            for k in [1, (min_count / 2).max(1)] {
                for threads in THREAD_COUNTS {
                    let r = governed(&schema, strategy, threads, Budget::trip_after(k));
                    let err = all_sat(&r, &schema)
                        .expect_err(&format!("{name}/{strategy:?}/threads={threads}/k={k}"));
                    assert!(
                        matches!(err, ReasonerError::BudgetExhausted(_)),
                        "{name}/{strategy:?}/threads={threads}/k={k}: got {err:?}"
                    );
                }
            }
        }
    }
}

/// An already-expired deadline fails fast with `DeadlineExceeded` at
/// every thread count, and the reasoner recovers after a budget swap.
#[test]
fn expired_deadline_fails_cleanly_at_all_thread_counts() {
    for (name, schema) in seed_schemas() {
        let (ref_sat, _) = reference(&schema);
        for threads in THREAD_COUNTS {
            let mut r =
                governed(&schema, Strategy::Sat, threads, Budget::deadline(Duration::ZERO));
            let err = all_sat(&r, &schema).expect_err(name);
            assert!(
                matches!(err, ReasonerError::DeadlineExceeded(_)),
                "{name}/threads={threads}: got {err:?}"
            );
            r.set_budget(Budget::unbounded());
            assert_eq!(all_sat(&r, &schema).unwrap(), ref_sat);
        }
    }
}

/// A 50ms deadline aborts an expansion that takes over a second
/// unbounded — the wall-clock acceptance criterion.
#[test]
fn short_deadline_aborts_long_enumeration_quickly() {
    let schema = wide_disjoint_schema(25);

    let deadline_start = Instant::now();
    let r = governed(&schema, Strategy::Naive, 1, Budget::deadline(Duration::from_millis(50)));
    let err = all_sat(&r, &schema).expect_err("50ms must not finish a 2^25 sweep");
    let deadline_elapsed = deadline_start.elapsed();
    assert!(
        matches!(err, ReasonerError::DeadlineExceeded(_)),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        deadline_elapsed < Duration::from_millis(900),
        "deadline abort took {deadline_elapsed:?}"
    );

    let unbounded_start = Instant::now();
    let r = governed(&schema, Strategy::Naive, 1, Budget::unbounded());
    let answers = all_sat(&r, &schema).unwrap();
    let unbounded_elapsed = unbounded_start.elapsed();
    assert!(answers.iter().all(|&b| b));
    assert!(
        unbounded_elapsed > Duration::from_secs(1),
        "unbounded sweep finished in {unbounded_elapsed:?}; \
         the deadline test needs a >1s workload"
    );
}

/// A pre-cancelled token yields `Cancelled` before any work happens.
#[test]
fn pre_cancelled_token_stops_immediately() {
    for (name, schema) in seed_schemas() {
        let (budget, token) = Budget::cancellable();
        token.cancel();
        for threads in THREAD_COUNTS {
            let r = governed(&schema, Strategy::Sat, threads, budget.clone());
            let err = all_sat(&r, &schema).expect_err(name);
            assert!(
                matches!(err, ReasonerError::Cancelled(_)),
                "{name}/threads={threads}: got {err:?}"
            );
        }
    }
}

/// Cancellation from another thread interrupts a long-running analysis
/// mid-flight; the same reasoner then recovers with a fresh budget.
#[test]
fn mid_run_cancellation_from_another_thread_recovers() {
    let schema = wide_disjoint_schema(22);
    let (budget, token) = Budget::cancellable();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let mut r = governed(&schema, Strategy::Naive, 2, budget);
    let err = all_sat(&r, &schema).expect_err("cancellation must interrupt the sweep");
    canceller.join().unwrap();
    assert!(matches!(err, ReasonerError::Cancelled(_)), "got {err:?}");

    // The OnceCell bundles must be unpoisoned: a retry with a fresh
    // budget computes the exact answers.
    r.set_budget(Budget::unbounded());
    let answers = all_sat(&r, &schema).unwrap();
    assert!(answers.iter().all(|&b| b));
}

/// Step and memory quotas trip with `BudgetExhausted` and recover.
#[test]
fn step_and_memory_quotas_trip_and_recover() {
    for (name, schema) in seed_schemas() {
        let (ref_sat, _) = reference(&schema);
        let limits = [
            BudgetLimits { max_steps: Some(3), ..BudgetLimits::default() },
            BudgetLimits { max_items: Some(0), ..BudgetLimits::default() },
        ];
        for limit in limits {
            for threads in THREAD_COUNTS {
                let mut r = governed(&schema, Strategy::Sat, threads, Budget::new(limit));
                let err = all_sat(&r, &schema).expect_err(name);
                assert!(
                    matches!(err, ReasonerError::BudgetExhausted(_)),
                    "{name}/threads={threads}/{limit:?}: got {err:?}"
                );
                r.set_budget(Budget::unbounded());
                assert_eq!(all_sat(&r, &schema).unwrap(), ref_sat);
            }
        }
    }
}

/// The anytime API: exhausted budgets yield `Outcome::Unknown` carrying
/// the progress made; settled questions yield `Proved`/`Disproved`
/// matching the boolean API.
#[test]
fn anytime_outcomes_match_contract() {
    // Incoherent schema: A needs a filler in Dead, so both are empty in
    // every model.
    let (_, schema) = seed_schemas().remove(3);
    let a = schema.class_id("A").unwrap();
    let dead = schema.class_id("Dead").unwrap();

    // Unbounded: settled verdicts.
    let r = governed(&schema, Strategy::Sat, 1, Budget::unbounded());
    assert_eq!(r.anytime_is_satisfiable(a), Outcome::Disproved);
    assert_eq!(r.anytime_is_satisfiable(dead), Outcome::Disproved);
    assert_eq!(r.anytime_is_coherent(), Outcome::Disproved);

    // A coherent schema proves satisfiability and coherence.
    let (_, university) = seed_schemas().remove(0);
    let person = university.class_id("Person").unwrap();
    let r = governed(&university, Strategy::Sat, 1, Budget::unbounded());
    assert_eq!(r.anytime_is_satisfiable(person), Outcome::Proved);
    assert_eq!(r.anytime_is_coherent(), Outcome::Proved);

    // Tripped: Unknown with a nonempty progress report, never a panic.
    let r = governed(&schema, Strategy::Sat, 1, Budget::trip_after(2));
    match r.anytime_is_satisfiable(a) {
        Outcome::Unknown(report) => assert!(report.steps >= 2),
        other => panic!("expected Unknown, got {other:?}"),
    }

    // A successful bundle computed under a budget that then trips still
    // answers from cache: anytime queries stay settled.
    let budget = Budget::counting();
    let r = governed(&schema, Strategy::Sat, 1, budget);
    assert_eq!(r.anytime_is_satisfiable(a), Outcome::Disproved);
    assert_eq!(r.anytime_is_satisfiable(dead), Outcome::Disproved);
}

/// Exhaustion errors carry a phase-stamped progress report.
#[test]
fn progress_reports_name_the_phase_reached() {
    let (_, schema) = seed_schemas().remove(1); // relational
    let r = governed(&schema, Strategy::Sat, 1, Budget::trip_after(1));
    let err = all_sat(&r, &schema).expect_err("k=1 must trip");
    let report = *err.progress().expect("exhaustion carries progress");
    assert!(report.steps >= 1);
    // The first checkpoint fires during enumeration or later.
    assert!(report.phase >= car::core::Phase::Enumerate);
    // Display is human-readable and names the phase.
    let text = format!("{report}");
    assert!(text.contains("phase"), "{text}");
}

fn arb_schema() -> impl proptest::strategy::Strategy<Value = Schema> {
    (
        2usize..=4,   // classes
        0usize..=1,   // attrs
        0usize..=1,   // rels
        0u64..=3,     // max bound
        any::<u64>(), // seed
    )
        .prop_map(|(classes, attrs, rels, max_bound, seed)| {
            let params = RandomSchemaParams {
                classes,
                attrs,
                rels,
                isa_density: 0.7,
                max_bound,
            };
            random_schema(&params, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if slow() { 24 } else { 8 }))]

    /// Random schemas × random trip points × random thread counts: the
    /// clean-failure and retry-recovery contract holds off the seed set
    /// too.
    #[test]
    fn random_schemas_survive_random_trip_points(
        schema in arb_schema(),
        k in 1u64..=300,
        threads in 1usize..=4,
        strategy_index in 0usize..4,
    ) {
        let strategy = STRATEGIES[strategy_index];
        let (ref_sat, _) = reference(&schema);
        let mut r = governed(&schema, strategy, threads, Budget::trip_after(k));
        match all_sat(&r, &schema) {
            Ok(answers) => prop_assert_eq!(&answers, &ref_sat),
            Err(ReasonerError::BudgetExhausted(_)) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error {other:?}")));
            }
        }
        r.set_budget(Budget::unbounded());
        prop_assert_eq!(&all_sat(&r, &schema).unwrap(), &ref_sat);
    }
}
