//! Crash-recovery sweeps for the persistence subsystem.
//!
//! The durable tier's contract is the disk twin of the budget-trip
//! contract in `fault_injection.rs`: damage or I/O failure at *any*
//! point must degrade to a cache miss or a shorter replay prefix —
//! never a panic, a wrong answer, or a poisoned store. These tests
//! sweep systematically rather than spot-check:
//!
//! 1. **store entries** — every truncation point and every single-bit
//!    flip of an on-disk entry either round-trips byte-exactly (benign
//!    damage, e.g. hex-case flips in the checksum field) or reads back
//!    as a miss;
//! 2. **journal tails** — every truncation point and bit flip of a
//!    journal yields replay of a verified *prefix* of the written
//!    operations, and replaying that prefix reconstructs exactly the
//!    shadow state after the same prefix of live edits;
//! 3. **snapshots** — a damaged snapshot either recovers the identical
//!    state or refuses to recover at all;
//! 4. **injected syscall faults** — tripping the k-th disk operation
//!    of a snapshot/journal/store workload (clean or torn) leaves a
//!    directory that recovers to a prefix of the acknowledged history;
//! 5. **warm restart** — recovery plus the shared store answers the
//!    full query matrix bit-identically to the pre-crash session with
//!    zero cluster re-enumerations;
//! 6. **eviction under pressure** — pinned (in-use) entries are never
//!    evicted, in the unified policy and in the on-disk store.
//!
//! `CAR_SLOW_TESTS=1` densifies the damage grids (every byte offset /
//! every truncation point); the default run strides through them.

use car::core::evict::LruPolicy;
use car::core::incremental::{SchemaDelta, Workspace, WorkspaceLimits};
use car::core::persist::{
    codec, fault, Disk, DiskFaults, DiskStore, JournalOp, SharedStore, StoreLimits, WorkspaceDir,
};
use car::core::reasoner::{ReasonerConfig, Strategy};
use car::core::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};
use car::core::Schema;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn slow() -> bool {
    std::env::var("CAR_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

/// Stride for byte-level damage sweeps: 1 under `CAR_SLOW_TESTS`.
fn stride(len: usize) -> usize {
    if slow() {
        1
    } else {
        (len / 64).max(1)
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("car-persist-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shared_store(dir: &Path) -> SharedStore {
    Arc::new(Mutex::new(DiskStore::open_real(dir, StoreLimits::default()).unwrap()))
}

fn preselect() -> ReasonerConfig {
    ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() }
}

/// Two independent components (so Preselect forms several clusters):
/// the university fragment from the paper plus a disjoint building
/// hierarchy.
fn campus() -> Schema {
    let mut b = SchemaBuilder::new();
    let person = b.class("Person");
    let professor = b.class("Professor");
    let student = b.class("Student");
    let grad = b.class("Grad_Student");
    let course = b.class("Course");
    let building = b.class("Building");
    let office = b.class("Office");
    let lab = b.class("Lab");
    let taught_by = b.attribute("taught_by");
    b.define_class(professor).isa(ClassFormula::class(person)).finish();
    b.define_class(student)
        .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
        .finish();
    b.define_class(grad).isa(ClassFormula::class(student)).finish();
    b.define_class(course)
        .isa(ClassFormula::neg_class(person))
        .attr(
            AttRef::Direct(taught_by),
            Card::exactly(1),
            ClassFormula::union_of([professor, grad]),
        )
        .finish();
    b.define_class(office).isa(ClassFormula::class(building)).finish();
    b.define_class(lab)
        .isa(ClassFormula::class(building).and(ClassFormula::neg_class(office)))
        .finish();
    b.build().unwrap()
}

/// The full query matrix as one comparable answer vector. Equality of
/// two vectors is the "bit-identical answers" acceptance criterion.
fn answers(ws: &mut Workspace) -> Vec<(String, String)> {
    let schema = ws.schema().clone();
    let mut out = Vec::new();
    for c in schema.symbols().class_ids() {
        out.push((
            format!("sat {}", schema.class_name(c)),
            format!("{:?}", ws.try_is_satisfiable(c)),
        ));
    }
    for c1 in schema.symbols().class_ids() {
        for c2 in schema.symbols().class_ids() {
            let pair = format!("{} {}", schema.class_name(c1), schema.class_name(c2));
            out.push((format!("sub {pair}"), format!("{:?}", ws.try_subsumes(c1, c2))));
            out.push((format!("dis {pair}"), format!("{:?}", ws.try_disjoint(c1, c2))));
        }
    }
    out
}

/// A canonical fingerprint of a workspace's full editable state.
fn state_fingerprint(ws: &Workspace) -> Vec<Vec<u8>> {
    std::iter::once(ws.schema())
        .chain(ws.undo_stack())
        .chain(ws.redo_stack())
        .map(codec::encode_schema)
        .collect()
}

/// The edit script journaled by every journal/fault test, exercising
/// apply, undo and redo.
fn edit_script() -> Vec<JournalOp> {
    let mut ops: Vec<JournalOp> = Vec::new();
    for i in 0..4 {
        ops.push(JournalOp::Apply(SchemaDelta::AddClass { name: format!("Extra{i}") }));
    }
    ops.push(JournalOp::Undo);
    ops.push(JournalOp::Undo);
    ops.push(JournalOp::Redo);
    ops.push(JournalOp::Apply(SchemaDelta::RemoveClass { name: "Extra2".into() }));
    ops.push(JournalOp::Apply(SchemaDelta::AddClass { name: "Late".into() }));
    ops
}

/// Applies a journal prefix to a fresh workspace over `base`, exactly
/// as live editing (and server-side replay) would.
fn replay(base: &Schema, ops: &[JournalOp]) -> Workspace {
    let mut ws = Workspace::new(base.clone(), preselect());
    for op in ops {
        match op {
            JournalOp::Apply(delta) => ws.apply(delta).unwrap(),
            JournalOp::Undo => {
                ws.undo();
            }
            JournalOp::Redo => {
                ws.redo();
            }
        }
    }
    ws
}

// -------------------------------------------------------------------
// 1. Store entry damage sweeps
// -------------------------------------------------------------------

const KEY: &str = "sweep\ntest-key";
const PAYLOAD: &[u8] = b"model 0 1 3\nmodel 2\nend\nopaque trailing bytes \xff\x00\x7f";

/// The single `.entry` file under `dir`.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one store entry in {dir:?}");
    entries.pop().unwrap()
}

fn fresh_entry(name: &str) -> (PathBuf, PathBuf) {
    let dir = scratch(name);
    let mut store = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
    assert!(store.put(KEY, PAYLOAD));
    let file = entry_file(&dir);
    (dir, file)
}

#[test]
fn store_truncation_sweep_is_miss_or_exact() {
    let (dir, file) = fresh_entry("trunc");
    let len = std::fs::metadata(&file).unwrap().len();
    for cut in (0..len).step_by(stride(len as usize)) {
        // Re-put: the previous iteration's read deleted the corrupt file.
        let mut store = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        if store.get(KEY).is_none() {
            assert!(store.put(KEY, PAYLOAD));
        }
        fault::truncate_file(&file, cut).unwrap();
        let mut reopened = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        match reopened.get(KEY) {
            None => {}
            Some(bytes) => panic!("truncation at {cut}/{len} returned {} bytes", bytes.len()),
        }
        // The corrupt file must be gone, not poisoning later reads.
        assert!(!file.exists(), "corrupt entry not deleted at cut {cut}");
    }
}

#[test]
fn store_bitflip_sweep_never_returns_wrong_bytes() {
    let (dir, file) = fresh_entry("flip");
    let len = std::fs::metadata(&file).unwrap().len() as usize;
    for offset in (0..len).step_by(stride(len)) {
        for bit in [0u8, 5, 7] {
            let mut store = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
            if store.get(KEY).is_none() {
                assert!(store.put(KEY, PAYLOAD));
            }
            fault::flip_bit(&file, offset as u64, bit).unwrap();
            let mut reopened = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
            match reopened.get(KEY) {
                // A flip in e.g. the hex case of the checksum field is
                // benign; anything else must be a miss. Different bytes
                // are never acceptable.
                None => {
                    // Un-flip for the next iteration's exactness check.
                    let _ = fault::flip_bit(&file, offset as u64, bit);
                }
                Some(bytes) => assert_eq!(
                    bytes, PAYLOAD,
                    "flip at byte {offset} bit {bit} returned wrong payload"
                ),
            }
        }
    }
}

#[test]
fn store_garbage_tail_is_rejected() {
    let (dir, file) = fresh_entry("tail");
    fault::append_garbage(&file, b"\x00\xffgarbage past the declared length").unwrap();
    let mut store = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
    assert_eq!(store.get(KEY), None, "entry with trailing garbage must be a miss");
}

// -------------------------------------------------------------------
// 2. Journal tail sweeps vs prefix shadow states
// -------------------------------------------------------------------

/// Writes snapshot + full edit script, returns the directory and the
/// pristine journal bytes.
fn journaled_dir(name: &str) -> (PathBuf, Vec<u8>, Vec<JournalOp>) {
    let dir = scratch(name);
    let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
    let base = campus();
    wd.save_snapshot("t", "w", &base, &[], &[]).unwrap();
    let script = edit_script();
    for op in &script {
        wd.append_op(op).unwrap();
    }
    let journal = std::fs::read(dir.join("journal.log")).unwrap();
    (dir, journal, script)
}

/// Recovery of a (possibly damaged) journal must yield a verified
/// *prefix* of `script`, and replaying it must reproduce the shadow
/// state after that same prefix.
fn assert_prefix_recovery(dir: &Path, script: &[JournalOp], context: &str) {
    let rec = WorkspaceDir::recover(dir, Disk::real())
        .unwrap_or_else(|| panic!("{context}: snapshot untouched, must recover"));
    let n = rec.ops.len();
    assert!(n <= script.len(), "{context}: replayed {n} ops, wrote {}", script.len());
    assert_eq!(rec.ops, script[..n], "{context}: replay is not a prefix of history");
    let mut recovered = Workspace::restore(
        rec.schema,
        rec.undo,
        rec.redo,
        preselect(),
        WorkspaceLimits::default(),
    );
    for op in &rec.ops {
        match op {
            JournalOp::Apply(delta) => recovered.apply(delta).unwrap(),
            JournalOp::Undo => {
                recovered.undo();
            }
            JournalOp::Redo => {
                recovered.redo();
            }
        }
    }
    let shadow = replay(&campus(), &script[..n]);
    assert_eq!(
        state_fingerprint(&recovered),
        state_fingerprint(&shadow),
        "{context}: recovered state diverges from the prefix shadow"
    );
}

#[test]
fn journal_truncation_sweep_replays_a_prefix() {
    let (dir, journal, script) = journaled_dir("jtrunc");
    let path = dir.join("journal.log");
    for cut in (0..=journal.len()).rev().step_by(stride(journal.len())) {
        std::fs::write(&path, &journal[..cut]).unwrap();
        assert_prefix_recovery(&dir, &script, &format!("truncate journal to {cut}"));
    }
    // The empty journal recovers the bare snapshot.
    std::fs::write(&path, b"").unwrap();
    let rec = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
    assert!(rec.ops.is_empty());
    assert!(!rec.truncated_tail);
}

#[test]
fn journal_bitflip_sweep_replays_a_prefix() {
    let (dir, journal, script) = journaled_dir("jflip");
    let path = dir.join("journal.log");
    for offset in (0..journal.len()).step_by(stride(journal.len())) {
        for bit in [0u8, 5] {
            let mut damaged = journal.clone();
            damaged[offset] ^= 1 << bit;
            std::fs::write(&path, &damaged).unwrap();
            assert_prefix_recovery(&dir, &script, &format!("flip byte {offset} bit {bit}"));
        }
    }
}

#[test]
fn journal_garbage_tail_truncates_replay() {
    let (dir, journal, script) = journaled_dir("jtail");
    let path = dir.join("journal.log");
    fault::append_garbage(&path, b"J 99 0123456789abcdef\ntorn frame never finishe").unwrap();
    let rec = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
    assert_eq!(rec.ops, script, "intact frames before the garbage must all replay");
    assert!(rec.truncated_tail, "the torn tail must be reported");
    drop(rec);
    std::fs::write(&path, &journal).unwrap();
    assert_prefix_recovery(&dir, &script, "restored journal");
}

// -------------------------------------------------------------------
// 3. Snapshot damage
// -------------------------------------------------------------------

#[test]
fn snapshot_damage_recovers_identically_or_not_at_all() {
    let (dir, _journal, script) = journaled_dir("snapdmg");
    let path = dir.join("snapshot.car");
    let pristine = std::fs::read(&path).unwrap();
    let reference = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
    let reference_fp = codec::encode_schema(&reference.schema);
    drop(reference);

    for cut in (0..pristine.len()).step_by(stride(pristine.len())) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            WorkspaceDir::recover(&dir, Disk::real()).is_none(),
            "snapshot truncated to {cut} bytes must not recover"
        );
    }
    for offset in (0..pristine.len()).step_by(stride(pristine.len())) {
        let mut damaged = pristine.clone();
        damaged[offset] ^= 1 << 2;
        std::fs::write(&path, &damaged).unwrap();
        match WorkspaceDir::recover(&dir, Disk::real()) {
            None => {}
            Some(rec) => {
                assert_eq!(
                    codec::encode_schema(&rec.schema),
                    reference_fp,
                    "flip at byte {offset}: recovered a different schema"
                );
                assert_eq!(rec.ops, script, "flip at byte {offset}: different replay");
            }
        }
    }
}

// -------------------------------------------------------------------
// 4. Injected syscall faults over a persistence workload
// -------------------------------------------------------------------

/// One full persistence workload against a possibly-faulty disk:
/// snapshot, journal the edit script (tracking which appends were
/// acknowledged), and push store traffic through the same fault plan.
/// Returns `None` when even the initial snapshot failed.
fn faulty_workload(dir: &Path, disk: &Disk) -> Option<Vec<JournalOp>> {
    let mut wd = WorkspaceDir::create(dir, disk.clone()).ok()?;
    let base = campus();
    wd.save_snapshot("t", "w", &base, &[], &[]).ok()?;
    let mut acked = Vec::new();
    let mut store = DiskStore::open(&dir.join("store"), StoreLimits::default(), disk.clone()).ok();
    for (i, op) in edit_script().iter().enumerate() {
        if wd.append_op(op).is_ok() {
            acked.push(op.clone());
        }
        if let Some(store) = store.as_mut() {
            // Interleave store traffic so the trip point also lands on
            // entry writes; results are advisory (bool / Option).
            let key = format!("wl\n{i}");
            let _ = store.put(&key, format!("payload {i}").as_bytes());
            if let Some(bytes) = store.get(&key) {
                assert_eq!(bytes, format!("payload {i}").as_bytes());
            }
        }
    }
    Some(acked)
}

#[test]
fn syscall_fault_sweep_recovers_acknowledged_prefix() {
    for torn in [false, true] {
        let mut k = 0u64;
        loop {
            let faults = DiskFaults::new();
            faults.set_torn_writes(torn);
            let disk = Disk::faulty(faults.clone());
            let dir = scratch(&format!("trip-{torn}-{k}"));
            faults.trip_after(k);
            let acked = faulty_workload(&dir, &disk);
            let injected = faults.injected();
            faults.disarm();

            match acked {
                None => assert!(
                    WorkspaceDir::recover(&dir, Disk::real())
                        .is_none_or(|rec| rec.ops.is_empty()),
                    "torn={torn} k={k}: failed snapshot must not replay edits"
                ),
                Some(acked) => {
                    let rec = WorkspaceDir::recover(&dir, Disk::real())
                        .expect("acknowledged snapshot must recover");
                    assert_eq!(
                        rec.ops, acked,
                        "torn={torn} k={k}: replay differs from acknowledged ops"
                    );
                    let mut recovered = Workspace::restore(
                        rec.schema,
                        rec.undo,
                        rec.redo,
                        preselect(),
                        WorkspaceLimits::default(),
                    );
                    for op in &rec.ops {
                        match op {
                            JournalOp::Apply(delta) => recovered.apply(delta).unwrap(),
                            JournalOp::Undo => {
                                recovered.undo();
                            }
                            JournalOp::Redo => {
                                recovered.redo();
                            }
                        }
                    }
                    // The store absorbed the same fault plan: every
                    // surviving entry must read back exact or miss.
                    let store_dir = dir.join("store");
                    if store_dir.is_dir() {
                        let mut store =
                            DiskStore::open_real(&store_dir, StoreLimits::default()).unwrap();
                        for i in 0..edit_script().len() {
                            match store.get(&format!("wl\n{i}")) {
                                None => {}
                                Some(bytes) => {
                                    assert_eq!(bytes, format!("payload {i}").as_bytes());
                                }
                            }
                        }
                    }
                }
            }

            let _ = std::fs::remove_dir_all(&dir);
            if injected == 0 {
                break; // k exceeded the workload's total operation count
            }
            k += if slow() { 1 } else { 3 };
        }
    }
}

// -------------------------------------------------------------------
// 5. Warm restart answers bit-identically
// -------------------------------------------------------------------

#[test]
fn warm_restart_is_bit_identical_with_cluster_reuse() {
    let data = scratch("warm-restart");
    let store_dir = data.join("store");
    let ws_dir = data.join("ws");

    // Cold session: journaled edits, full query matrix, then "crash"
    // (drop without snapshotting the edited state).
    let cold_answers;
    {
        let mut wd = WorkspaceDir::create(&ws_dir, Disk::real()).unwrap();
        let mut cold = Workspace::new(campus(), preselect());
        cold.set_store(shared_store(&store_dir));
        wd.save_snapshot("t", "w", cold.schema(), &[], &[]).unwrap();
        for op in edit_script() {
            match &op {
                JournalOp::Apply(delta) => cold.apply(delta).unwrap(),
                JournalOp::Undo => {
                    cold.undo();
                }
                JournalOp::Redo => {
                    cold.redo();
                }
            }
            wd.append_op(&op).unwrap();
        }
        cold_answers = answers(&mut cold);
        assert!(cold.stats().disk_writes > 0, "cold session must persist enumerations");
    }

    // Warm session: journal replay + shared store.
    let rec = WorkspaceDir::recover(&ws_dir, Disk::real()).unwrap();
    assert_eq!(rec.ops.len(), edit_script().len());
    let mut warm = Workspace::restore(
        rec.schema,
        rec.undo,
        rec.redo,
        preselect(),
        WorkspaceLimits::default(),
    );
    warm.set_store(shared_store(&store_dir));
    for op in &rec.ops {
        match op {
            JournalOp::Apply(delta) => warm.apply(delta).unwrap(),
            JournalOp::Undo => {
                warm.undo();
            }
            JournalOp::Redo => {
                warm.redo();
            }
        }
    }
    assert_eq!(answers(&mut warm), cold_answers, "warm restart must answer bit-identically");
    let stats = warm.stats();
    assert!(stats.clusters_reused > 0, "{stats:?}");
    assert!(stats.disk_cluster_hits > 0, "{stats:?}");
    assert_eq!(stats.clusters_rebuilt, 0, "warm restart must re-enumerate nothing: {stats:?}");
}

// -------------------------------------------------------------------
// 6. Eviction under pressure never evicts an in-use entry
// -------------------------------------------------------------------

#[test]
fn lru_policy_never_evicts_pinned_entries() {
    let mut policy = LruPolicy::new(10);
    policy.insert("hot", 4);
    policy.pin("hot");
    for i in 0..50 {
        policy.insert(&format!("cold-{i}"), 4);
        let victims = policy.evict();
        assert!(!victims.iter().any(|v| v == "hot"), "pinned entry evicted at step {i}");
        assert!(policy.contains("hot"));
    }
    assert!(policy.total_weight() <= 10, "unpinned entries must be evicted down to budget");

    // Once released (and stale), the entry is fair game again.
    policy.unpin("hot");
    policy.insert("fresh", 8);
    let victims = policy.evict();
    assert!(victims.iter().any(|v| v == "hot"), "released stale entry must be evictable");
}

#[test]
fn disk_store_never_evicts_pinned_entries_under_pressure() {
    let dir = scratch("pressure");
    let payload = vec![0xA5u8; 512];
    // A budget that holds only a couple of 512-byte entries.
    let mut store = DiskStore::open_real(&dir, StoreLimits { max_bytes: 2048 }).unwrap();
    assert!(store.put("reader\nheld", &payload));
    store.pin("reader\nheld");
    for i in 0..32 {
        assert!(store.put(&format!("churn\n{i}"), &payload));
        assert_eq!(
            store.get("reader\nheld").as_deref(),
            Some(&payload[..]),
            "pinned entry lost at churn step {i}"
        );
    }
    store.unpin("reader\nheld");
    for i in 32..40 {
        assert!(store.put(&format!("churn\n{i}"), &payload));
    }
    assert!(
        store.total_bytes() <= 2048,
        "after unpinning, the store must shrink to budget (got {})",
        store.total_bytes()
    );
    // The store stayed usable throughout: a reopen sees only valid entries.
    let mut reopened = DiskStore::open_real(&dir, StoreLimits { max_bytes: 2048 }).unwrap();
    assert!(reopened.total_bytes() <= 2048);
    assert_eq!(reopened.get("churn\n39").as_deref(), Some(&payload[..]));
}
