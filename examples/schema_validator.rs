//! A schema validation tool: reads a CAR schema from a file (or stdin),
//! checks coherence, and prints the implied classification — the
//! "schema validation, inheritance computation" application the paper
//! names in §2.3.
//!
//! Usage:
//! ```text
//! cargo run --example schema_validator -- path/to/schema.car
//! echo 'class A isa not A endclass' | cargo run --example schema_validator
//! ```

use car::core::reasoner::Reasoner;
use car::parser::{parse_schema, pretty};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let text = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("error: cannot read stdin");
                return ExitCode::FAILURE;
            }
            buf
        }
    };

    let schema = match parse_schema(&text) {
        Ok(schema) => schema,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "parsed: {} classes, {} attributes, {} relations",
        schema.num_classes(),
        schema.num_attrs(),
        schema.num_rels()
    );
    println!("normalized schema:\n{}", pretty(&schema));

    let reasoner = Reasoner::new(&schema);
    let unsat = match reasoner.try_unsatisfiable_classes() {
        Ok(unsat) => unsat,
        Err(e) => {
            eprintln!("reasoning aborted: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ok = true;
    for class in &unsat {
        println!("warning: class '{}' is necessarily empty", schema.class_name(*class));
        // Attach a machine-checkable explanation.
        if let (Ok(Some(proof)), Ok(expansion)) =
            (reasoner.certify_unsatisfiable(*class), reasoner.full_expansion())
        {
            assert!(proof.verify(expansion), "proof must verify");
            print!("{}", car::core::explain::render_proof(&schema, expansion, &proof));
        }
        ok = false;
    }

    println!("implied classification:");
    let mut pairs = reasoner.classification();
    // Drop transitively implied edges for readability.
    let direct: Vec<_> = pairs
        .iter()
        .filter(|&&(sup, sub)| {
            !pairs
                .iter()
                .any(|&(s2, b2)| b2 == sub && s2 != sup && pairs.contains(&(sup, s2)))
        })
        .copied()
        .collect();
    pairs = direct;
    if pairs.is_empty() {
        println!("  (none)");
    }
    for (sup, sub) in pairs {
        println!("  {} ⊑ {}", schema.class_name(sub), schema.class_name(sup));
    }

    if ok {
        println!("schema is coherent");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
