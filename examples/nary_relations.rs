//! N-ary relations and the Theorem 4.5 arity reduction: the paper's
//! ternary `Exam(of, by, in)` relation, reasoned about directly and
//! through reification.
//!
//! Run with `cargo run --example nary_relations`.

use car::core::arity::{reduce_arities, reducible};
use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::parser::{parse_schema, pretty};

const EXAMS: &str = "
    class Student
      isa Person and not Professor
      participates_in Exam[of] : (1, 10)
    endclass
    class Professor
      isa Person
      participates_in Exam[by] : (0, 40)
    endclass
    class Person endclass
    class Course
      isa not Person
      participates_in Exam[in] : (1, 200)
    endclass

    relation Exam(of, by, in)
      constraints (of : Student);
                  (by : Professor);
                  (in : Course)
    endrelation
";

fn main() {
    let schema = parse_schema(EXAMS).expect("parses");
    let exam = schema.rel_id("Exam").unwrap();
    println!(
        "Exam is a {}-ary relation; Theorem 4.5 applicable: {}\n",
        schema.rel_def(exam).arity(),
        reducible(&schema, exam)
    );

    // Reason once directly and once through the Theorem 4.5 reification.
    for (label, arity_reduction) in [("direct (K-ary)", false), ("reified (binary)", true)] {
        let reasoner = Reasoner::with_config(
            &schema,
            ReasonerConfig {
                strategy: Strategy::Preselect,
                arity_reduction,
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let coherent = reasoner.try_is_coherent().expect("within limits");
        let stats = reasoner.try_stats().expect("within limits").clone();
        println!(
            "{label:18} coherent={coherent}  compound relations={:<4} unknowns={:<5} [{:?}]",
            stats.num_compound_rels,
            stats.num_unknowns,
            start.elapsed()
        );
    }

    // Show what the transform actually builds.
    let reduced = reduce_arities(&schema).expect("valid schema");
    println!(
        "\nreified schema ({} relations, all binary):\n{}",
        reduced.schema.num_rels(),
        pretty(&reduced.schema)
    );

    // Constraint interplay: each student takes 1–10 exams, each course
    // hosts 1–200, professors at most 40 each. Tighten professors to at
    // most 0 while requiring students to take exams: incoherent.
    let broken = EXAMS.replace("Exam[by] : (0, 40)", "Exam[by] : (0, 0)");
    let schema = parse_schema(&broken).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let student = schema.class_id("Student").unwrap();
    println!(
        "with professors forbidden from examining: Student satisfiable? {}",
        reasoner.is_satisfiable(student)
    );
    assert!(!reasoner.is_satisfiable(student));
}
