//! The paper's running example: the university schemas of Figure 1 and
//! Figure 2, loaded from their concrete syntax, reasoned about, and
//! stress-tested with a contradictory refinement.
//!
//! Run with `cargo run --example university`.

use car::core::reasoner::Reasoner;
use car::parser::parse_schema;

/// Figure 1: the basic object-oriented schema (no CAR extensions).
const FIGURE_1: &str = "
    class Person
      attributes name : (0, *) String;
                 date_of_birth : (0, *) String
    endclass
    class Professor
      isa Person
      attributes teaches : (0, *) Course
    endclass
    class Student
      isa Person
      attributes student_id : (0, *) String
    endclass
    class Grad_Student
      isa Student
    endclass
    class Course
      attributes taught_by : (0, *) Professor
    endclass
    class Adv_Course
      isa Course
    endclass
    class Enrollment
      attributes enrolls : (0, *) Student;
                 enrolled_in : (0, *) Course
    endclass
";

/// Figure 2: the full CAR schema — complements, unions, inverse
/// attributes, n-ary relations and cardinality constraints.
const FIGURE_2: &str = "
    class Person
      attributes name : (1, 1) String;
                 date_of_birth : (1, 1) String
    endclass
    class Professor
      isa Person
      attributes (inv taught_by) : (1, 2) Course
    endclass
    class Student
      isa Person and not Professor
      attributes student_id : (1, 1) String
      participates_in Enrollment[enrolls] : (1, 6)
    endclass
    class Grad_Student
      isa Student
      attributes (inv taught_by) : (0, 1) Course
      participates_in Enrollment[enrolls] : (2, 3)
    endclass
    class Course
      attributes taught_by : (1, 1) Professor or Grad_Student
      participates_in Enrollment[enrolled_in] : (5, 100)
    endclass
    class Adv_Course
      isa Course
      attributes taught_by : (1, 1) Professor
      participates_in Enrollment[enrolled_in] : (5, 20)
    endclass

    relation Enrollment(enrolled_in, enrolls)
      constraints (enrolled_in : Course);
                  (enrolls : Student);
                  (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
    endrelation

    relation Exam(of, by, in)
      constraints (of : Student);
                  (by : Professor);
                  (in : Course)
    endrelation
";

fn report(label: &str, text: &str) {
    println!("== {label} ==");
    let schema = parse_schema(text).expect("figure parses");
    let reasoner = Reasoner::new(&schema);

    let unsat = reasoner.try_unsatisfiable_classes().expect("within limits");
    if unsat.is_empty() {
        println!("all {} classes are satisfiable", schema.num_classes());
    } else {
        for class in &unsat {
            println!("UNSATISFIABLE: {}", schema.class_name(*class));
        }
    }

    println!("implied subsumptions (beyond reflexivity):");
    for (sup, sub) in reasoner.classification() {
        println!("  {} ⊑ {}", schema.class_name(sub), schema.class_name(sup));
    }

    let student = schema.class_id("Student").unwrap();
    let professor = schema.class_id("Professor").unwrap();
    println!(
        "Student disjoint from Professor: {}\n",
        reasoner.disjoint(student, professor)
    );
}

fn main() {
    report("Figure 1 (basic object-oriented schema)", FIGURE_1);
    report("Figure 2 (CAR schema)", FIGURE_2);

    // Interaction of isa and cardinality constraints (§1): refine
    // Grad_Student to enroll in at least 7 courses while Student allows
    // at most 6 — Grad_Student becomes necessarily empty.
    let broken = FIGURE_2.replace(
        "participates_in Enrollment[enrolls] : (2, 3)",
        "participates_in Enrollment[enrolls] : (7, 9)",
    );
    let schema = parse_schema(&broken).expect("still parses");
    let reasoner = Reasoner::new(&schema);
    let grad = schema.class_id("Grad_Student").unwrap();
    println!("== Figure 2 with Grad_Student enrolling in (7, 9) courses ==");
    println!(
        "Grad_Student satisfiable: {} (the merged bound (7, 6) is empty)",
        reasoner.is_satisfiable(grad)
    );
    assert!(!reasoner.is_satisfiable(grad));
    // Advanced courses require >= 5 graduate students each, and every
    // graduate student is gone: Adv_Course dies with it.
    let adv = schema.class_id("Adv_Course").unwrap();
    println!("Adv_Course satisfiable:   {}", reasoner.is_satisfiable(adv));
}
