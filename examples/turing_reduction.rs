//! The Theorem 4.1 lower bound, live: encode Turing machine acceptance
//! as class satisfiability and watch the reasoner simulate the machine.
//!
//! Run with `cargo run --release --example turing_reduction`.

use car::core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car::reductions::{encode_tm, RunOutcome, TuringMachine};

fn main() {
    let machine = TuringMachine::parity_machine();
    println!("machine: accepts tapes starting with an even number of 1s\n");

    for (input, time, tape) in [
        (vec![], 2, 2),
        (vec![1], 3, 3),
        (vec![1, 1], 3, 3),
        (vec![1, 1, 1], 4, 4),
    ] {
        let outcome = machine.run(&input, time, tape);
        let enc = encode_tm(&machine, &input, time, tape);
        let reasoner = Reasoner::with_config(
            &enc.schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        let start = std::time::Instant::now();
        let satisfiable = enc.accepts(&reasoner).expect("within limits");
        let elapsed = start.elapsed();
        println!(
            "input {:?} (T={time}, S={tape}): machine {} | schema: {} classes, accepting class {} [{elapsed:.2?}]",
            input,
            match outcome {
                RunOutcome::Accept { step } => format!("accepts at step {step}"),
                other => format!("{other:?}"),
            },
            enc.schema.num_classes(),
            if satisfiable { "SATISFIABLE" } else { "unsatisfiable" },
        );
        assert_eq!(satisfiable, matches!(outcome, RunOutcome::Accept { .. }));
    }

    println!("\nreduction validated: satisfiability tracks acceptance exactly");
}
