//! Finite-model reasoning: schemas that are satisfiable over *infinite*
//! domains but unsatisfiable over the finite database states CAR
//! semantics prescribes (§1: "it may happen that there exists a class
//! that is necessarily empty in all finite database states").
//!
//! Run with `cargo run --example finite_model`.

use car::core::reasoner::Reasoner;
use car::parser::parse_schema;

fn main() {
    // Every Node has exactly 2 children, every Node is the child of at
    // most one Node, and children are Nodes again: an infinite binary
    // tree satisfies this, but any *finite* nonempty set of Nodes would
    // need |Node| >= 2|Node| children slots served by at most |Node|
    // parent links. CAR (finite semantics) must report Node empty.
    let infinite_tree = "
        class Node
          isa Tree
          attributes child : (2, 2) Node
        endclass
        class Tree
          attributes (inv child) : (0, 1) Node
        endclass
    ";
    let schema = parse_schema(infinite_tree).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let node = schema.class_id("Node").unwrap();
    println!(
        "binary-tree schema: Node satisfiable finitely? {}",
        reasoner.is_satisfiable(node)
    );
    assert!(!reasoner.is_satisfiable(node));

    // Balance the in/out degrees and finite models reappear: each node
    // has 2 children and exactly 2 parents — a 2-regular bipartite-style
    // structure that folds into a finite cycle.
    let balanced = "
        class Node
          attributes child : (2, 2) Node;
                     (inv child) : (2, 2) Node
        endclass
    ";
    let schema = parse_schema(balanced).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let node = schema.class_id("Node").unwrap();
    println!(
        "balanced schema:    Node satisfiable finitely? {}",
        reasoner.is_satisfiable(node)
    );
    assert!(reasoner.is_satisfiable(node));
    let model = reasoner.extract_model().expect("model exists");
    println!(
        "  extracted a verified model with {} objects and {} child links",
        model.universe_size(),
        model.attr_extension(schema.attr_id("child").unwrap()).len()
    );

    // The same phenomenon through relations: every Person mentors
    // exactly two and is mentored exactly once. Tuple counting gives
    // 2·|Person| = |Mentoring| = 1·|Person|, so Person must be empty in
    // every finite state — even though every constraint is locally
    // plausible.
    let mentoring = "
        class Person
          participates_in Mentoring[mentor] : (2, 2);
                          Mentoring[protege] : (1, 1)
        endclass
        relation Mentoring(mentor, protege)
          constraints (mentor : Person); (protege : Person)
        endrelation
    ";
    let schema = parse_schema(mentoring).expect("parses");
    let reasoner = Reasoner::new(&schema);
    let person = schema.class_id("Person").unwrap();
    println!(
        "mentoring schema:   Person satisfiable finitely? {}",
        reasoner.is_satisfiable(person)
    );
    assert!(!reasoner.is_satisfiable(person));
}
