//! Quickstart: build a schema with the API, reason about it, extract a
//! verified finite model.
//!
//! Run with `cargo run --example quickstart`.

use car::core::reasoner::Reasoner;
use car::core::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};

fn main() {
    // A small library domain: every Book has exactly one author (a
    // Person); Authors are Persons that authored at least one book
    // (inverse attribute!); Books are not Persons.
    let mut b = SchemaBuilder::new();
    let person = b.class("Person");
    let author = b.class("Author");
    let book = b.class("Book");
    let written_by = b.attribute("written_by");

    b.define_class(book)
        .isa(ClassFormula::neg_class(person))
        .attr(AttRef::Direct(written_by), Card::exactly(1), ClassFormula::class(author))
        .finish();
    b.define_class(author)
        .isa(ClassFormula::class(person))
        .attr(AttRef::Inverse(written_by), Card::at_least(1), ClassFormula::class(book))
        .finish();
    let schema = b.build().expect("valid schema");

    let reasoner = Reasoner::new(&schema);

    println!("Class satisfiability (Theorem 3.3):");
    for class in schema.symbols().class_ids() {
        println!(
            "  {:10} {}",
            schema.class_name(class),
            if reasoner.is_satisfiable(class) { "satisfiable" } else { "UNSATISFIABLE" }
        );
    }

    println!("\nLogical implications:");
    println!("  Author ⊑ Person : {}", reasoner.subsumes(person, author));
    println!("  Book disjoint Person: {}", reasoner.disjoint(book, person));
    println!("  Book disjoint Author: {}", reasoner.disjoint(book, author));

    let model = reasoner.extract_model().expect("coherent schema has a model");
    println!(
        "\nExtracted and verified a finite model with {} objects:",
        model.universe_size()
    );
    for class in schema.symbols().class_ids() {
        println!(
            "  |{}| = {}",
            schema.class_name(class),
            model.class_extension(class).len()
        );
    }
    assert!(model.is_model(&schema));
}
