//! # CAR — Classes, Attributes, Relations
//!
//! A complete Rust implementation of the CAR object-oriented data model and
//! its reasoning technique, from:
//!
//! > Diego Calvanese and Maurizio Lenzerini.
//! > *Making Object-Oriented Schemas More Expressive.*
//! > Proc. of the 13th ACM Symposium on Principles of Database Systems
//! > (PODS 1994), pages 243–254.
//!
//! This umbrella crate re-exports the workspace members so that downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the CAR data model: schemas, finite-model semantics, the
//!   two-phase satisfiability algorithm (expansion + linear disequations),
//!   logical implication, and the optimization strategies of Sections 4.3
//!   and 4.4 of the paper.
//! * [`parser`] — a parser and pretty-printer for the paper's concrete
//!   schema syntax.
//! * [`reductions`] — the lower-bound constructions (Theorems 4.1 and 4.2)
//!   and workload generators.
//! * [`baseline`] — brute-force finite-model search (ground truth) and the
//!   naive expansion strategy.
//! * [`arith`] — arbitrary-precision integers and exact rationals.
//! * [`lp`] — an exact-rational simplex linear-programming solver.
//! * [`logic`] — CNF machinery and a DPLL SAT solver with model enumeration.
//!
//! ## Quick start
//!
//! ```
//! use car::parser::parse_schema;
//! use car::core::reasoner::Reasoner;
//!
//! let schema = parse_schema(
//!     "class Student isa Person and not Professor endclass
//!      class Professor isa Person endclass
//!      class Person endclass",
//! ).unwrap();
//! let reasoner = Reasoner::new(&schema);
//! let student = schema.class_id("Student").unwrap();
//! assert!(reasoner.is_satisfiable(student));
//! ```

pub use car_arith as arith;
pub use car_baseline as baseline;
pub use car_core as core;
pub use car_logic as logic;
pub use car_lp as lp;
pub use car_parser as parser;
pub use car_reductions as reductions;
