//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the rand 0.8 API it actually uses: seedable
//! deterministic generators (`StdRng`, `SmallRng`), `Rng::gen_range`
//! over integer ranges, `Rng::gen_bool`, and `Rng::gen` for a few
//! primitive types. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and deterministic, though the streams
//! differ from the real `rand::StdRng` (ChaCha12). Nothing in this
//! workspace depends on the exact stream, only on per-seed determinism.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an integer range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high]` (inclusive).
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(unused_comparisons)]
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as i128 - low as i128) as u128 + 1;
                // Multiply-shift rejection-free mapping is fine here: the
                // spans used in this workspace are tiny, so modulo bias of
                // `u64 % span` is ≤ 2⁻⁵⁰ — irrelevant for test workloads —
                // but use 128-bit widening anyway for uniformity.
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T>
where
    T: PartialOrd + Dec,
{
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Decrement helper so half-open ranges can reuse the inclusive sampler.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value with the standard distribution.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::standard(self) < p
    }

    /// One value of the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Same engine under the `SmallRng` name.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 hit rate {hits}");
    }
}
