//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock mean over the
//! sample count (after one warm-up batch) printed to stderr — no
//! statistics, plots, or baselines — which is enough to read relative
//! scaling off the paper-reproduction experiments.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &name.to_string(), 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Hands the routine under test to the timing loop.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, one warm-up batch plus `samples` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up (page in code and data)
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, total: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if bencher.iters == 0 {
        eprintln!("bench {label:<50} (no measurement)");
    } else {
        let mean = bencher.total.as_secs_f64() / bencher.iters as f64;
        eprintln!("bench {label:<50} {:>12.3} µs/iter", mean * 1e6);
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = $config; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert!(runs >= 3);
    }
}
