//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the proptest 1.x API its tests use: the
//! [`proptest!`] macro, `prop_assert*`/`prop_assume!`, [`arbitrary::any`],
//! integer-range / tuple / [`collection::vec`] strategies, and the
//! `prop_map` / `prop_filter` / `prop_flat_map` combinators.
//!
//! Differences from real proptest, none of which this workspace relies
//! on: no shrinking (a failure reports the case seed instead of a
//! minimized input), no persistence of failing seeds (`.proptest-regressions`
//! files are ignored), and uniform rather than edge-biased value
//! distributions. Case generation is fully deterministic per test name,
//! so failures reproduce across runs.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (only the `cases` knob is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*` failed: the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the input: skip this case.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection with the given reason.
        #[must_use]
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic generation source (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator for one case, derived from the test name and case
        /// index so every property gets an independent, reproducible
        /// stream.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (u128::from(self.next_u64()).wrapping_mul(u128::from(bound)) >> 64) as u64
        }
    }

    /// Drives one property: runs `config.cases` cases, panicking with the
    /// case seed on the first falsification. Invoked by the expansion of
    /// [`crate::proptest!`].
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case_fn: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rejects: u64 = 0;
        let mut case: u64 = 0;
        let mut executed: u32 = 0;
        while executed < config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            match case_fn(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects < 65_536,
                        "proptest '{test_name}': too many rejected inputs ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' falsified at case #{case}: {msg}\n\
                         (re-run reproduces this case deterministically)"
                    );
                }
            }
            case += 1;
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no value tree: a strategy simply
    /// produces a value per case and nothing shrinks.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Rejects generated values failing a predicate (regenerating in
        /// place rather than rejecting the whole case).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, whence, f }
        }

        /// Generates through a dependent second strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Boxes the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

    trait StrategyObj {
        type Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObj for S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (u128::from(rng.next_u64())
                        .wrapping_mul(span) >> 64) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let draw = (u128::from(rng.next_u64())
                        .wrapping_mul(span) >> 64) as i128;
                    (*self.start() as i128 + draw) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// One uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// The inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) so the runner can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`: {}\n  both: `{:?}`",
            format!($($fmt)*),
            l
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    let __proptest_body = || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __proptest_body()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (-4i32..=4)
            .prop_filter("nonzero", |v| *v != 0)
            .prop_map(|v| v * 2);
        let mut rng = crate::test_runner::TestRng::for_case("compose", 0);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!(v != 0 && v % 2 == 0 && (-8..=8).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = crate::collection::vec(any::<u32>(), 2..5);
        let mut rng = crate::test_runner::TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u32>(), 3usize);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: assumptions skip, assertions pass.
        #[test]
        fn macro_smoke(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_seed() {
        crate::test_runner::run_cases(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }
}
