//! Greatest common divisor and least common multiple on [`BigInt`].

use crate::BigInt;

/// Euclid on machine words.
pub(crate) fn gcd_u64(mut x: u64, mut y: u64) -> u64 {
    while y != 0 {
        let r = x % y;
        x = y;
        y = r;
    }
    x
}

/// Euclid on double words (for `Ratio` cross-product reduction).
pub(crate) fn gcd_u128(mut x: u128, mut y: u128) -> u128 {
    while y != 0 {
        let r = x % y;
        x = y;
        y = r;
    }
    x
}

/// Greatest common divisor of `|a|` and `|b|` (Euclid's algorithm).
///
/// `gcd(0, 0) = 0`; otherwise the result is strictly positive.
#[must_use]
pub fn gcd(a: &BigInt, b: &BigInt) -> BigInt {
    let mut x = a.abs();
    let mut y = b.abs();
    while !y.is_zero() {
        // As soon as both operands fit a word — immediately for inline
        // values, otherwise once the remainders shrink — finish with
        // allocation-free word arithmetic.
        if let (Some(xv), Some(yv)) = (x.to_i64(), y.to_i64()) {
            return BigInt::from(gcd_u64(xv.unsigned_abs(), yv.unsigned_abs()));
        }
        let r = &x % &y;
        x = y;
        y = r;
    }
    x
}

/// Least common multiple of `|a|` and `|b|`; `lcm(0, _) = 0`.
#[must_use]
pub fn lcm(a: &BigInt, b: &BigInt) -> BigInt {
    if a.is_zero() || b.is_zero() {
        return BigInt::zero();
    }
    let g = gcd(a, b);
    (&a.abs() / &g) * b.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&big(12), &big(18)), big(6));
        assert_eq!(gcd(&big(-12), &big(18)), big(6));
        assert_eq!(gcd(&big(0), &big(5)), big(5));
        assert_eq!(gcd(&big(5), &big(0)), big(5));
        assert_eq!(gcd(&big(0), &big(0)), big(0));
        assert_eq!(gcd(&big(17), &big(13)), big(1));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&big(4), &big(6)), big(12));
        assert_eq!(lcm(&big(-4), &big(6)), big(12));
        assert_eq!(lcm(&big(0), &big(6)), big(0));
        assert_eq!(lcm(&big(7), &big(7)), big(7));
    }

    proptest! {
        #[test]
        fn prop_gcd_divides_both(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd(&big(a), &big(b));
            if a != 0 || b != 0 {
                prop_assert!(big(a).is_multiple_of(&g));
                prop_assert!(big(b).is_multiple_of(&g));
                prop_assert!(g.is_positive());
            }
        }

        #[test]
        fn prop_gcd_lcm_product(a in 1i64..5_000, b in 1i64..5_000) {
            let g = gcd(&big(a), &big(b));
            let l = lcm(&big(a), &big(b));
            prop_assert_eq!(g * l, big(a) * big(b));
        }
    }
}
