//! # car-arith — exact arithmetic for schema reasoning
//!
//! Arbitrary-precision signed integers ([`BigInt`]) and exact rational
//! numbers ([`Ratio`]), built from scratch for the CAR reasoner.
//!
//! Phase 2 of the CAR satisfiability algorithm (Theorem 4.3 of the paper)
//! decides whether a homogeneous system of linear disequations admits an
//! acceptable *integer* solution. The argument that rational feasibility
//! implies integer feasibility relies on exact scaling by denominators, and
//! the simplex pivots used to decide rational feasibility overflow
//! fixed-width integers very quickly. Both therefore require exact,
//! unbounded arithmetic, which this crate provides.
//!
//! The representation is deliberately simple and well-tested rather than
//! maximally fast: sign-and-magnitude with little-endian `u32` limbs,
//! schoolbook multiplication, and Knuth-style long division. Reasoning time
//! in CAR is dominated by the exponential expansion phase, not by limb
//! arithmetic, so clarity wins (measured in the `phase2_scaling` bench).
//!
//! ```
//! use car_arith::{BigInt, Ratio};
//!
//! let a = BigInt::from(1234567890123456789i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1524157875323883675019051998750190521");
//!
//! let r = Ratio::new(BigInt::from(2), BigInt::from(4));
//! assert_eq!(r, Ratio::new(BigInt::from(1), BigInt::from(2)));
//! assert!(r < Ratio::from_integer(BigInt::from(1)));
//! ```

mod bigint;
mod bigint_ops;
mod gcd;
mod ratio;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use gcd::{gcd, lcm};
pub use ratio::Ratio;
