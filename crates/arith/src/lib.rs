//! # car-arith — exact arithmetic for schema reasoning
//!
//! Arbitrary-precision signed integers ([`BigInt`]) and exact rational
//! numbers ([`Ratio`]), built from scratch for the CAR reasoner.
//!
//! Phase 2 of the CAR satisfiability algorithm (Theorem 4.3 of the paper)
//! decides whether a homogeneous system of linear disequations admits an
//! acceptable *integer* solution. The argument that rational feasibility
//! implies integer feasibility relies on exact scaling by denominators, and
//! the simplex pivots used to decide rational feasibility overflow
//! fixed-width integers very quickly. Both therefore require exact,
//! unbounded arithmetic, which this crate provides.
//!
//! [`BigInt`] uses a tagged representation: values that fit an `i64` are
//! stored inline (the overwhelmingly common case in simplex pivots and
//! cardinality bounds) and arithmetic on them is plain overflow-checked
//! word arithmetic; values outside that range spill to sign-and-magnitude
//! little-endian `u32` limbs with schoolbook multiplication and
//! Knuth-style long division. The representation is canonical — a value
//! is heap-allocated iff it does not fit an `i64` — so derived `Eq` and
//! `Hash` remain structural. [`Ratio`] reduces word-sized cross products
//! in `i128` without touching the limb kernels. The inline paths are
//! cross-checked against the limb kernels by the `smallint_agreement`
//! property suite via [`reference`].
//!
//! ```
//! use car_arith::{BigInt, Ratio};
//!
//! let a = BigInt::from(1234567890123456789i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1524157875323883675019051998750190521");
//!
//! let r = Ratio::new(BigInt::from(2), BigInt::from(4));
//! assert_eq!(r, Ratio::new(BigInt::from(1), BigInt::from(2)));
//! assert!(r < Ratio::from_integer(BigInt::from(1)));
//! ```

mod bigint;
mod bigint_ops;
mod gcd;
mod ratio;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use gcd::{gcd, lcm};
pub use ratio::Ratio;

/// Reference implementations that always route through the limb kernels,
/// bypassing the inline small-value fast paths.
///
/// Exists so property tests can assert bit-for-bit agreement between the
/// fast paths and the heap kernels across promotion boundaries. Not part
/// of the stable API.
#[doc(hidden)]
pub mod reference {
    use crate::BigInt;

    /// `a + b` via the limb kernels.
    #[must_use]
    pub fn add(a: &BigInt, b: &BigInt) -> BigInt {
        crate::bigint_ops::ref_add(a, b)
    }

    /// `a - b` via the limb kernels.
    #[must_use]
    pub fn sub(a: &BigInt, b: &BigInt) -> BigInt {
        crate::bigint_ops::ref_sub(a, b)
    }

    /// `a * b` via the limb kernels.
    #[must_use]
    pub fn mul(a: &BigInt, b: &BigInt) -> BigInt {
        crate::bigint_ops::ref_mul(a, b)
    }

    /// Truncating `(quotient, remainder)` via the limb kernels.
    ///
    /// # Panics
    /// Panics if `b` is zero.
    #[must_use]
    pub fn div_rem(a: &BigInt, b: &BigInt) -> (BigInt, BigInt) {
        crate::bigint_ops::ref_div_rem(a, b)
    }
}
