//! Exact rational numbers over [`BigInt`].

use crate::gcd::gcd_u128;
use crate::{gcd, BigInt};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` in lowest terms with `den > 0`.
///
/// Every value has a unique representation; zero is `0/1`. Used as the
/// scalar field of the simplex solver in `car-lp`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt,
}

impl Ratio {
    /// Creates `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigInt) -> Ratio {
        assert!(!den.is_zero(), "Ratio with zero denominator");
        if num.is_zero() {
            return Ratio::zero();
        }
        if let (Some(n), Some(d)) = (num.to_i64(), den.to_i64()) {
            // Inline operands: reduce in word arithmetic, no limb
            // allocation. i64 magnitudes (including i64::MIN) negate
            // safely in i128.
            let (mut n, mut d) = (i128::from(n), i128::from(d));
            if d < 0 {
                n = -n;
                d = -d;
            }
            return Ratio::new_reduced_i128(n, d);
        }
        let g = gcd(&num, &den);
        // gcd == 1 is the common case for simplex pivots; skip the two
        // limb divisions entirely.
        let (mut num, mut den) = if g.is_one() {
            (num, den)
        } else {
            (&num / &g, &den / &g)
        };
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// Builds `num / den` (with `den > 0`) by reducing in `i128`.
    ///
    /// Callers guarantee `den > 0`; `num` may be any `i128` including
    /// `i128::MIN`.
    fn new_reduced_i128(num: i128, den: i128) -> Ratio {
        debug_assert!(den > 0);
        if num == 0 {
            return Ratio::zero();
        }
        // gcd <= den <= i128::MAX, so the cast back is safe.
        let g = gcd_u128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        Ratio {
            num: BigInt::from_i128(num / g),
            den: BigInt::from_i128(den / g),
        }
    }

    /// The value `0`.
    #[must_use]
    pub fn zero() -> Ratio {
        Ratio { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Ratio {
        Ratio { num: BigInt::one(), den: BigInt::one() }
    }

    /// An integer as a rational.
    #[must_use]
    pub fn from_integer(n: BigInt) -> Ratio {
        Ratio { num: n, den: BigInt::one() }
    }

    /// Numerator (negative iff the value is negative).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff the value is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        // Already in lowest terms: swap numerator and denominator and
        // move the sign — no gcd needed.
        if self.num.is_negative() {
            Ratio { num: self.den.negated(), den: self.num.negated() }
        } else {
            Ratio { num: self.den.clone(), den: self.num.clone() }
        }
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Ratio {
        Ratio { num: self.num.abs(), den: self.den.clone() }
    }

    /// Approximate `f64` value (for diagnostics only; may lose precision).
    #[must_use]
    pub fn to_f64_lossy(&self) -> f64 {
        // Good enough for logging: use up to the top ~15 decimal digits.
        let ns = self.num.to_string();
        let ds = self.den.to_string();
        let approx = |s: &str| -> f64 {
            let neg = s.starts_with('-');
            let digits = s.trim_start_matches('-');
            let head: String = digits.chars().take(15).collect();
            let mantissa: f64 = head.parse().unwrap_or(0.0);
            let scale = digits.len().saturating_sub(head.len()) as i32;
            let v = mantissa * 10f64.powi(scale);
            if neg {
                -v
            } else {
                v
            }
        };
        approx(&ns) / approx(&ds)
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::zero()
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Ratio {
        Ratio::from_integer(BigInt::from(v))
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Ratio {
        Ratio::from_integer(BigInt::from(v))
    }
}

impl From<BigInt> for Ratio {
    fn from(v: BigInt) -> Ratio {
        Ratio::from_integer(v)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = self.words(other) {
            // i64 products always fit in i128.
            return (an * bd).cmp(&(bn * ad));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Ratio {
    /// Both operands' parts as `i128` words, when all four are inline.
    #[inline]
    #[allow(clippy::type_complexity)]
    fn words(&self, rhs: &Ratio) -> (Option<i128>, Option<i128>, Option<i128>, Option<i128>) {
        (
            self.num.to_i64().map(i128::from),
            self.den.to_i64().map(i128::from),
            rhs.num.to_i64().map(i128::from),
            rhs.den.to_i64().map(i128::from),
        )
    }
}

impl Add<&Ratio> for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = self.words(rhs) {
            // Each product fits in i128; only the sum can overflow.
            if let Some(num) = (an * bd).checked_add(bn * ad) {
                return Ratio::new_reduced_i128(num, ad * bd);
            }
        }
        Ratio::new(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub<&Ratio> for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = self.words(rhs) {
            if let Some(num) = (an * bd).checked_sub(bn * ad) {
                return Ratio::new_reduced_i128(num, ad * bd);
            }
        }
        Ratio::new(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul<&Ratio> for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = self.words(rhs) {
            // i64 products never overflow i128: no fallback needed.
            return Ratio::new_reduced_i128(an * bn, ad * bd);
        }
        Ratio::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div<&Ratio> for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = self.words(rhs) {
            let (mut num, mut den) = (an * bd, ad * bn);
            if den < 0 {
                // Magnitudes are at most 2^126: negation cannot overflow.
                num = -num;
                den = -den;
            }
            return Ratio::new_reduced_i128(num, den);
        }
        Ratio::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait<Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop!(Add, add; Sub, sub; Mul, mul; Div, div);

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -self.num, den: self.den }
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: self.num.negated(), den: self.den.clone() }
    }
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rat(n: i64, d: i64) -> Ratio {
        Ratio::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), Ratio::zero());
        assert!(rat(3, -6).denom().is_positive());
        assert_eq!(rat(6, 3), Ratio::from(2i64));
        assert!(rat(6, 3).is_integer());
        assert!(!rat(6, 4).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn arithmetic_matches_fractions() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(-rat(1, 2), rat(-1, 2));
        assert_eq!(rat(3, 4).recip(), rat(4, 3));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == Ratio::one());
        assert!(rat(-1, 2) < Ratio::zero());
        assert!(Ratio::zero() < rat(1, 1000));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(6, 2).floor(), BigInt::from(3));
        assert_eq!(rat(6, 2).ceil(), BigInt::from(3));
        assert_eq!(Ratio::zero().floor(), BigInt::zero());
    }

    #[test]
    fn display() {
        assert_eq!(rat(1, 2).to_string(), "1/2");
        assert_eq!(rat(-4, 2).to_string(), "-2");
        assert_eq!(Ratio::zero().to_string(), "0");
    }

    #[test]
    fn to_f64_lossy_is_close() {
        assert!((rat(1, 3).to_f64_lossy() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rat(-22, 7).to_f64_lossy() + 22.0 / 7.0).abs() < 1e-12);
    }

    fn arb_ratio() -> impl Strategy<Value = Ratio> {
        (-1000i64..1000, 1i64..1000).prop_map(|(n, d)| rat(n, d))
    }

    proptest! {
        #[test]
        fn prop_field_laws(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
            prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
            prop_assert_eq!(&a + Ratio::zero(), a.clone());
            prop_assert_eq!(&a * Ratio::one(), a.clone());
        }

        #[test]
        fn prop_sub_div_inverse(a in arb_ratio(), b in arb_ratio()) {
            prop_assert_eq!((&a + &b) - &b, a.clone());
            if !b.is_zero() {
                prop_assert_eq!((&a * &b) / &b, a.clone());
            }
        }

        #[test]
        fn prop_ordering_consistent_with_sub(a in arb_ratio(), b in arb_ratio()) {
            let diff = &a - &b;
            prop_assert_eq!(a.cmp(&b), diff.numer().cmp(&BigInt::zero()));
        }

        #[test]
        fn prop_floor_ceil_bracket(a in arb_ratio()) {
            let fl = Ratio::from_integer(a.floor());
            let ce = Ratio::from_integer(a.ceil());
            prop_assert!(fl <= a && a <= ce);
            prop_assert!(&ce - &fl <= Ratio::one());
        }
    }
}
