//! The [`BigInt`] type: representation, construction, comparison and
//! formatting. Arithmetic operator implementations live in
//! [`crate::bigint_ops`].

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Sign of a [`BigInt`].
///
/// Zero always carries [`Sign::Zero`] and an empty limb vector, so every
/// value has exactly one representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// The opposite sign (zero stays zero).
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

}

/// Sign of the product of two values with these signs.
impl std::ops::Mul for Sign {
    type Output = Sign;

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Stored as a sign plus a little-endian vector of `u32` limbs with no
/// trailing zero limbs. The canonical representation invariant is checked in
/// debug builds by [`BigInt::debug_check`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    pub(crate) sign: Sign,
    /// Little-endian magnitude; empty iff the value is zero; the last limb
    /// is never zero.
    pub(crate) limbs: Vec<u32>,
}

impl BigInt {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt { sign: Sign::Zero, limbs: Vec::new() }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt { sign: Sign::Plus, limbs: vec![1] }
    }

    /// Builds a value from a sign and a (possibly denormalized) magnitude.
    pub(crate) fn from_sign_limbs(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        debug_assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
        BigInt { sign, limbs }
    }

    /// Asserts the canonical-representation invariant (debug builds only).
    pub(crate) fn debug_check(&self) {
        debug_assert_eq!(self.limbs.is_empty(), self.sign == Sign::Zero);
        debug_assert!(self.limbs.last() != Some(&0));
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs == [1]
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// The sign of the value.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Minus => BigInt { sign: Sign::Plus, limbs: self.limbs.clone() },
            _ => self.clone(),
        }
    }

    /// Negation by reference (see also the `Neg` impls).
    #[must_use]
    pub fn negated(&self) -> BigInt {
        BigInt { sign: self.sign.negate(), limbs: self.limbs.clone() }
    }

    /// Number of bits in the magnitude (`0` for zero).
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * 32 + (32 - u64::from(top.leading_zeros()))
            }
        }
    }

    /// Converts to `i64` if the value fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let m = i64::from(self.limbs[0]);
                Some(if self.sign == Sign::Minus { -m } else { m })
            }
            2 => {
                let m = (u64::from(self.limbs[1]) << 32) | u64::from(self.limbs[0]);
                match self.sign {
                    Sign::Minus if m <= 1 << 63 => Some((m as i64).wrapping_neg()),
                    Sign::Plus if m < 1 << 63 => Some(m as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Converts to `u64` if the value fits (negative values do not).
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.sign == Sign::Minus {
            return None;
        }
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some((u64::from(self.limbs[1]) << 32) | u64::from(self.limbs[0])),
            _ => None,
        }
    }

    /// Compares magnitudes, ignoring signs.
    #[must_use]
    pub fn cmp_abs(&self, other: &BigInt) -> Ordering {
        cmp_limbs(&self.limbs, &other.limbs)
    }
}

/// Compares two canonical little-endian magnitudes.
pub(crate) fn cmp_limbs(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Minus, Minus) => cmp_limbs(&other.limbs, &self.limbs),
            (Minus, _) => Ordering::Less,
            (_, Minus) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Plus) => Ordering::Less,
            (Plus, Zero) => Ordering::Greater,
            (Plus, Plus) => cmp_limbs(&self.limbs, &other.limbs),
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let mut v = u64::from(v);
                if v == 0 {
                    return BigInt::zero();
                }
                let mut limbs = Vec::with_capacity(2);
                while v != 0 {
                    limbs.push(v as u32);
                    v >>= 32;
                }
                BigInt { sign: Sign::Plus, limbs }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let mag = BigInt::from(<$t>::unsigned_abs(v));
                if v < 0 {
                    -mag
                } else {
                    mag
                }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64);

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from(v as u64)
    }
}

/// Error returned when parsing an invalid decimal integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    pub(crate) message: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.message)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    /// Parses an optionally signed decimal literal (e.g. `-12345`).
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (negative, digits) = match s.as_bytes() {
            [b'-', rest @ ..] => (true, rest),
            [b'+', rest @ ..] => (false, rest),
            rest => (false, rest),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { message: "no digits" });
        }
        let mut value = BigInt::zero();
        for &b in digits {
            if !b.is_ascii_digit() {
                return Err(ParseBigIntError { message: "non-digit character" });
            }
            value = value.mul_small(10);
            value = &value + &BigInt::from(u32::from(b - b'0'));
        }
        if negative {
            value = -value;
        }
        Ok(value)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeated division by 10^9 produces the decimal digits in chunks.
        const CHUNK: u32 = 1_000_000_000;
        let mut mag = self.limbs.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let mut rem: u64 = 0;
            for limb in mag.iter_mut().rev() {
                let cur = (rem << 32) | u64::from(*limb);
                *limb = (cur / u64::from(CHUNK)) as u32;
                rem = cur % u64::from(CHUNK);
            }
            while mag.last() == Some(&0) {
                mag.pop();
            }
            chunks.push(rem as u32);
        }
        let mut digits = chunks.last().copied().unwrap_or(0).to_string();
        for chunk in chunks.iter().rev().skip(1) {
            digits.push_str(&format!("{chunk:09}"));
        }
        f.pad_integral(self.sign != Sign::Minus, "", &digits)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert_eq!(z.sign(), Sign::Zero);
        assert_eq!(z, BigInt::from(0u32));
        assert_eq!(z, BigInt::from(0i64));
        assert_eq!(z.to_string(), "0");
        assert_eq!((-z.clone()), z);
    }

    #[test]
    fn from_primitives_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 32, -(1 << 32)] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v), "value {v}");
            assert_eq!(BigInt::from(v).to_string(), v.to_string());
        }
        assert_eq!(BigInt::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigInt::from(u64::MAX).to_i64(), None);
        assert_eq!(BigInt::from(-1i32).to_u64(), None);
    }

    #[test]
    fn ordering_follows_integers() {
        let values = [-100i64, -3, -1, 0, 1, 2, 50, 1 << 40];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    BigInt::from(a).cmp(&BigInt::from(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "999999999999999999999999", "-123456789012345678901"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<BigInt>().unwrap(), BigInt::from(7u32));
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
    }

    #[test]
    fn bits_counts_magnitude_bits() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(BigInt::one().bits(), 1);
        assert_eq!(BigInt::from(255u32).bits(), 8);
        assert_eq!(BigInt::from(256u32).bits(), 9);
        assert_eq!(BigInt::from(1u64 << 40).bits(), 41);
        assert_eq!(BigInt::from(-8i32).bits(), 4);
    }

    #[test]
    fn abs_and_negate() {
        let v = BigInt::from(-9i32);
        assert_eq!(v.abs(), BigInt::from(9u32));
        assert_eq!(v.negated(), BigInt::from(9u32));
        assert_eq!(BigInt::from(9u32).negated(), v);
        assert_eq!(Sign::Plus * Sign::Minus, Sign::Minus);
        assert_eq!(Sign::Minus * Sign::Minus, Sign::Plus);
        assert_eq!(Sign::Zero * Sign::Minus, Sign::Zero);
    }
}
