//! The [`BigInt`] type: representation, construction, comparison and
//! formatting. Arithmetic operator implementations live in
//! [`crate::bigint_ops`].
//!
//! # Representation
//!
//! Values are stored in a tagged representation: anything that fits in
//! an `i64` lives inline as [`Repr::Small`] (no heap allocation at
//! all), and only values outside the `i64` range are promoted to
//! [`Repr::Heap`], a sign plus a little-endian `u32` limb vector. The
//! reasoner's hot loops (simplex pivots, cardinality-bound merges)
//! overwhelmingly manipulate tiny integers, so the small path is the
//! common case; overflow checks promote exactly when needed and every
//! heap-producing operation demotes results that fit back into a word.
//!
//! The canonical-representation invariant — `Small` iff the value fits
//! in `i64`, heap limb vectors have no trailing zeros — gives every
//! value a unique representation, so derived `Eq`/`Hash` are sound. It
//! is checked in debug builds by [`BigInt::debug_check`].

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Sign of a [`BigInt`].
///
/// Zero always carries [`Sign::Zero`], so every value has exactly one
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// The opposite sign (zero stays zero).
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

}

/// Sign of the product of two values with these signs.
impl std::ops::Mul for Sign {
    type Output = Sign;

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// Tagged value representation (see the module docs for the invariant).
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Repr {
    /// The value fits in a machine word; stored inline.
    Small(i64),
    /// The value does not fit in `i64`: sign plus little-endian
    /// magnitude with no trailing zero limbs (at least two limbs).
    Heap {
        sign: Sign,
        limbs: Vec<u32>,
    },
}

/// An arbitrary-precision signed integer with an inline small-value
/// representation (see the module docs).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    pub(crate) repr: Repr,
}

impl BigInt {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt { repr: Repr::Small(0) }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt { repr: Repr::Small(1) }
    }

    /// Builds an inline small value.
    #[inline]
    pub(crate) fn small(v: i64) -> BigInt {
        BigInt { repr: Repr::Small(v) }
    }

    /// Builds a value from a 128-bit integer, promoting to the heap only
    /// when it does not fit in `i64`.
    pub(crate) fn from_i128(v: i128) -> BigInt {
        if let Ok(small) = i64::try_from(v) {
            return BigInt::small(small);
        }
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let mut mag = v.unsigned_abs();
        let mut limbs = Vec::with_capacity(4);
        while mag != 0 {
            limbs.push(mag as u32);
            mag >>= 32;
        }
        BigInt { repr: Repr::Heap { sign, limbs } }
    }

    /// Builds a value from a sign and a (possibly denormalized)
    /// magnitude, canonicalizing: trailing zero limbs are stripped and
    /// word-sized results are demoted to the inline representation.
    pub(crate) fn from_sign_limbs(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        debug_assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
        if limbs.len() <= 2 {
            let mag = limbs
                .get(1)
                .map_or(0u64, |&hi| u64::from(hi) << 32)
                | u64::from(limbs[0]);
            match sign {
                Sign::Minus if mag <= 1 << 63 => {
                    return BigInt::small((mag as i64).wrapping_neg());
                }
                Sign::Plus if mag < 1 << 63 => return BigInt::small(mag as i64),
                _ => {}
            }
        }
        BigInt { repr: Repr::Heap { sign, limbs } }
    }

    /// The magnitude as limbs: inline values are decomposed into `buf`,
    /// heap values borrow their limb vector. The returned slice is empty
    /// iff the value is zero.
    #[inline]
    pub(crate) fn mag<'a>(&'a self, buf: &'a mut [u32; 2]) -> &'a [u32] {
        match &self.repr {
            Repr::Small(v) => {
                let mag = v.unsigned_abs();
                buf[0] = mag as u32;
                buf[1] = (mag >> 32) as u32;
                if mag == 0 {
                    &[]
                } else if mag >> 32 == 0 {
                    &buf[..1]
                } else {
                    &buf[..2]
                }
            }
            Repr::Heap { limbs, .. } => limbs,
        }
    }

    /// `true` iff the value is stored inline (no heap allocation). Part
    /// of the canonical-representation contract: every value fitting in
    /// `i64` must be stored inline. Exposed for the small-int agreement
    /// tests.
    #[doc(hidden)]
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Asserts the canonical-representation invariant (debug builds only).
    pub(crate) fn debug_check(&self) {
        if let Repr::Heap { sign, limbs } = &self.repr {
            debug_assert!(*sign != Sign::Zero, "heap value with Zero sign");
            debug_assert!(limbs.last().is_some_and(|&l| l != 0), "trailing zero limb");
            debug_assert!(limbs.len() >= 2, "single-limb value not demoted");
            if limbs.len() == 2 {
                let mag = (u64::from(limbs[1]) << 32) | u64::from(limbs[0]);
                match sign {
                    Sign::Plus => debug_assert!(mag >= 1 << 63, "small value not demoted"),
                    Sign::Minus => debug_assert!(mag > 1 << 63, "small value not demoted"),
                    Sign::Zero => unreachable!(),
                }
            }
        }
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// `true` iff the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign() == Sign::Minus
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign() == Sign::Plus
    }

    /// The sign of the value.
    #[must_use]
    pub fn sign(&self) -> Sign {
        match &self.repr {
            Repr::Small(v) => match v.cmp(&0) {
                Ordering::Less => Sign::Minus,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Plus,
            },
            Repr::Heap { sign, .. } => *sign,
        }
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt::small(a),
                None => BigInt::from_i128(-(i128::from(*v))),
            },
            Repr::Heap { limbs, .. } => {
                BigInt { repr: Repr::Heap { sign: Sign::Plus, limbs: limbs.clone() } }
            }
        }
    }

    /// Negation by reference (see also the `Neg` impls).
    #[must_use]
    pub fn negated(&self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt::small(n),
                None => BigInt::from_i128(-(i128::from(*v))),
            },
            Repr::Heap { sign, limbs } => {
                // Negating a heap value cannot re-enter the i64 range,
                // except |i64::MIN| whose positive form is still 2 limbs
                // but representable — route through the canonicalizer.
                BigInt::from_sign_limbs(sign.negate(), limbs.clone())
            }
        }
    }

    /// Number of bits in the magnitude (`0` for zero).
    #[must_use]
    pub fn bits(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => u64::from(64 - v.unsigned_abs().leading_zeros()),
            Repr::Heap { limbs, .. } => match limbs.last() {
                None => 0,
                Some(&top) => {
                    (limbs.len() as u64 - 1) * 32 + (32 - u64::from(top.leading_zeros()))
                }
            },
        }
    }

    /// Converts to `i64` if the value fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Heap { .. } => None, // canonical: heap values never fit
        }
    }

    /// Converts to `u64` if the value fits (negative values do not).
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => u64::try_from(*v).ok(),
            Repr::Heap { sign: Sign::Plus, limbs } if limbs.len() == 2 => {
                Some((u64::from(limbs[1]) << 32) | u64::from(limbs[0]))
            }
            Repr::Heap { .. } => None,
        }
    }

    /// Compares magnitudes, ignoring signs.
    #[must_use]
    pub fn cmp_abs(&self, other: &BigInt) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.unsigned_abs().cmp(&b.unsigned_abs()),
            // Canonical: heap magnitudes always exceed word magnitudes.
            (Repr::Small(_), Repr::Heap { .. }) => Ordering::Less,
            (Repr::Heap { .. }, Repr::Small(_)) => Ordering::Greater,
            (Repr::Heap { limbs: a, .. }, Repr::Heap { limbs: b, .. }) => cmp_limbs(a, b),
        }
    }
}

/// Compares two canonical little-endian magnitudes.
pub(crate) fn cmp_limbs(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical: a heap value lies strictly outside i64's range,
            // so its sign decides against any inline value.
            (Repr::Small(_), Repr::Heap { sign, .. }) => match sign {
                Sign::Plus => Ordering::Less,
                _ => Ordering::Greater,
            },
            (Repr::Heap { sign, .. }, Repr::Small(_)) => match sign {
                Sign::Plus => Ordering::Greater,
                _ => Ordering::Less,
            },
            (
                Repr::Heap { sign: sa, limbs: la },
                Repr::Heap { sign: sb, limbs: lb },
            ) => match (sa, sb) {
                (Sign::Minus, Sign::Minus) => cmp_limbs(lb, la),
                (Sign::Minus, _) => Ordering::Less,
                (_, Sign::Minus) => Ordering::Greater,
                _ => cmp_limbs(la, lb),
            },
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let v = u64::from(v);
                match i64::try_from(v) {
                    Ok(small) => BigInt::small(small),
                    Err(_) => BigInt {
                        repr: Repr::Heap {
                            sign: Sign::Plus,
                            limbs: vec![v as u32, (v >> 32) as u32],
                        },
                    },
                }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                BigInt::small(i64::from(v))
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64);

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from(v as u64)
    }
}

/// Error returned when parsing an invalid decimal integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    pub(crate) message: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.message)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    /// Parses an optionally signed decimal literal (e.g. `-12345`).
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (negative, digits) = match s.as_bytes() {
            [b'-', rest @ ..] => (true, rest),
            [b'+', rest @ ..] => (false, rest),
            rest => (false, rest),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { message: "no digits" });
        }
        // Accumulate inline while the value fits a word; spill to the
        // generic (auto-promoting) path only past 64 bits.
        let mut acc: i64 = 0;
        let mut spilled: Option<BigInt> = None;
        for &b in digits {
            if !b.is_ascii_digit() {
                return Err(ParseBigIntError { message: "non-digit character" });
            }
            let d = i64::from(b - b'0');
            match &mut spilled {
                None => match acc.checked_mul(10).and_then(|v| v.checked_add(d)) {
                    Some(next) => acc = next,
                    None => {
                        let mut big = BigInt::small(acc).mul_small(10);
                        big += &BigInt::small(d);
                        spilled = Some(big);
                    }
                },
                Some(big) => {
                    let mut next = big.mul_small(10);
                    next += &BigInt::small(d);
                    *big = next;
                }
            }
        }
        let mut value = spilled.unwrap_or_else(|| BigInt::small(acc));
        if negative {
            value = -value;
        }
        Ok(value)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let limbs = match &self.repr {
            Repr::Small(v) => {
                // Inline values print through the primitive formatter.
                let s = v.unsigned_abs().to_string();
                return f.pad_integral(*v >= 0, "", &s);
            }
            Repr::Heap { limbs, .. } => limbs,
        };
        // Repeated division by 10^9 produces the decimal digits in chunks.
        const CHUNK: u32 = 1_000_000_000;
        let mut mag = limbs.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let mut rem: u64 = 0;
            for limb in mag.iter_mut().rev() {
                let cur = (rem << 32) | u64::from(*limb);
                *limb = (cur / u64::from(CHUNK)) as u32;
                rem = cur % u64::from(CHUNK);
            }
            while mag.last() == Some(&0) {
                mag.pop();
            }
            chunks.push(rem as u32);
        }
        let mut digits = chunks.last().copied().unwrap_or(0).to_string();
        for chunk in chunks.iter().rev().skip(1) {
            digits.push_str(&format!("{chunk:09}"));
        }
        f.pad_integral(self.sign() != Sign::Minus, "", &digits)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert_eq!(z.sign(), Sign::Zero);
        assert_eq!(z, BigInt::from(0u32));
        assert_eq!(z, BigInt::from(0i64));
        assert_eq!(z.to_string(), "0");
        assert_eq!((-z.clone()), z);
    }

    #[test]
    fn from_primitives_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 32, -(1 << 32)] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v), "value {v}");
            assert_eq!(BigInt::from(v).to_string(), v.to_string());
            assert!(BigInt::from(v).is_inline(), "value {v}");
        }
        assert_eq!(BigInt::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigInt::from(u64::MAX).to_i64(), None);
        assert_eq!(BigInt::from(-1i32).to_u64(), None);
        assert!(!BigInt::from(u64::MAX).is_inline());
    }

    #[test]
    fn promotion_boundary_is_canonical() {
        // Around ±2^63: values inside i64 stay inline, outside go heap.
        let max = BigInt::from(i64::MAX);
        let min = BigInt::from(i64::MIN);
        let above = &max + &BigInt::one();
        let below = &min - &BigInt::one();
        assert!(max.is_inline() && min.is_inline());
        assert!(!above.is_inline() && !below.is_inline());
        assert_eq!(&above - &BigInt::one(), max);
        assert_eq!(&below + &BigInt::one(), min);
        assert!((&below + &BigInt::one()).is_inline());
        above.debug_check();
        below.debug_check();
        assert_eq!(above.to_string(), "9223372036854775808");
        assert_eq!(below.to_string(), "-9223372036854775809");
    }

    #[test]
    fn ordering_follows_integers() {
        let values = [-100i64, -3, -1, 0, 1, 2, 50, 1 << 40];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    BigInt::from(a).cmp(&BigInt::from(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
        // Mixed-representation ordering.
        let big_pos: BigInt = "99999999999999999999999".parse().unwrap();
        let big_neg: BigInt = "-99999999999999999999999".parse().unwrap();
        for &v in &values {
            assert!(BigInt::from(v) < big_pos);
            assert!(big_neg < BigInt::from(v));
        }
        assert!(big_neg < big_pos);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "999999999999999999999999", "-123456789012345678901"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<BigInt>().unwrap(), BigInt::from(7u32));
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
    }

    #[test]
    fn bits_counts_magnitude_bits() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(BigInt::one().bits(), 1);
        assert_eq!(BigInt::from(255u32).bits(), 8);
        assert_eq!(BigInt::from(256u32).bits(), 9);
        assert_eq!(BigInt::from(1u64 << 40).bits(), 41);
        assert_eq!(BigInt::from(-8i32).bits(), 4);
        assert_eq!(BigInt::from(i64::MIN).bits(), 64);
        assert_eq!(BigInt::from(u64::MAX).bits(), 64);
    }

    #[test]
    fn abs_and_negate() {
        let v = BigInt::from(-9i32);
        assert_eq!(v.abs(), BigInt::from(9u32));
        assert_eq!(v.negated(), BigInt::from(9u32));
        assert_eq!(BigInt::from(9u32).negated(), v);
        assert_eq!(Sign::Plus * Sign::Minus, Sign::Minus);
        assert_eq!(Sign::Minus * Sign::Minus, Sign::Plus);
        assert_eq!(Sign::Zero * Sign::Minus, Sign::Zero);
        // i64::MIN has no inline negation; both directions stay exact.
        let min = BigInt::from(i64::MIN);
        assert_eq!(min.abs().to_string(), "9223372036854775808");
        assert_eq!(min.negated().negated(), min);
        assert_eq!(min.abs(), min.negated());
    }
}
