//! Arithmetic on [`BigInt`]: addition, subtraction, multiplication and
//! Euclidean division, for owned values and references.
//!
//! Every operator first tries the inline word path — plain `i64`
//! arithmetic with overflow checks, falling back to `i128` where the
//! result is guaranteed to fit — and only reaches the limb kernels when
//! a heap operand or an overflow forces it. Limb results are demoted
//! back to the inline representation whenever they fit, preserving the
//! canonical-representation invariant of [`crate::bigint`].

use crate::bigint::{cmp_limbs, BigInt, Repr, Sign};
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// `a + b` on magnitudes.
pub(crate) fn add_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: u64 = 0;
    for (i, &limb) in long.iter().enumerate() {
        let sum = u64::from(limb) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
        out.push(sum as u32);
        carry = sum >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b` on magnitudes; requires `a >= b`.
pub(crate) fn sub_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(cmp_limbs(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: i64 = 0;
    for (i, &limb) in a.iter().enumerate() {
        let diff = i64::from(limb) - i64::from(b.get(i).copied().unwrap_or(0)) - borrow;
        if diff < 0 {
            out.push((diff + (1 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(diff as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Schoolbook `a * b` on magnitudes.
pub(crate) fn mul_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &y) in b.iter().enumerate() {
            let cur = u64::from(out[i + j]) + u64::from(x) * u64::from(y) + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = u64::from(out[k]) + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Knuth algorithm D: `(quotient, remainder)` of magnitudes; `b` nonzero.
pub(crate) fn divrem_limbs(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero");
    match cmp_limbs(a, b) {
        Ordering::Less => return (Vec::new(), a.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if b.len() == 1 {
        // Fast path: single-limb divisor.
        let d = u64::from(b[0]);
        let mut q = vec![0u32; a.len()];
        let mut rem: u64 = 0;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | u64::from(a[i]);
            q[i] = (cur / d) as u32;
            rem = cur % d;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let r = if rem == 0 { Vec::new() } else { vec![rem as u32] };
        return (q, r);
    }

    // Normalize so the top limb of the divisor has its high bit set.
    let shift = b.last().unwrap().leading_zeros();
    let bn = shl_bits(b, shift);
    let mut an = shl_bits(a, shift);
    an.push(0); // extra high limb for the algorithm
    let n = bn.len();
    let m = an.len() - n - 1;
    let top = u64::from(bn[n - 1]);
    let second = u64::from(bn[n - 2]);
    let mut q = vec![0u32; m + 1];

    for j in (0..=m).rev() {
        let hi = (u64::from(an[j + n]) << 32) | u64::from(an[j + n - 1]);
        let mut qhat = hi / top;
        let mut rhat = hi % top;
        // Refine the 2-limb estimate against the third limb.
        while qhat >= 1 << 32
            || qhat * second > ((rhat << 32) | u64::from(an[j + n - 2]))
        {
            qhat -= 1;
            rhat += top;
            if rhat >= 1 << 32 {
                break;
            }
        }
        // Multiply-and-subtract qhat * bn from an[j..j+n+1].
        let mut borrow: i64 = 0;
        let mut carry: u64 = 0;
        for i in 0..n {
            let prod = qhat * u64::from(bn[i]) + carry;
            carry = prod >> 32;
            let sub = i64::from(an[j + i]) - i64::from(prod as u32) - borrow;
            if sub < 0 {
                an[j + i] = (sub + (1 << 32)) as u32;
                borrow = 1;
            } else {
                an[j + i] = sub as u32;
                borrow = 0;
            }
        }
        let sub = i64::from(an[j + n]) - i64::from(carry as u32) - borrow;
        // `carry` always fits in 32 bits here because qhat < 2^32.
        debug_assert!(carry >> 32 == 0);
        if sub < 0 {
            // qhat was one too large: add back.
            an[j + n] = (sub + (1 << 32)) as u32;
            qhat -= 1;
            let mut carry2: u64 = 0;
            for i in 0..n {
                let sum = u64::from(an[j + i]) + u64::from(bn[i]) + carry2;
                an[j + i] = sum as u32;
                carry2 = sum >> 32;
            }
            an[j + n] = an[j + n].wrapping_add(carry2 as u32);
        } else {
            an[j + n] = sub as u32;
        }
        q[j] = qhat as u32;
    }

    while q.last() == Some(&0) {
        q.pop();
    }
    an.truncate(n);
    let r = shr_bits(&an, shift);
    (q, r)
}

/// Shifts a magnitude left by `shift` bits (`shift < 32`).
fn shl_bits(a: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: u32 = 0;
    for &limb in a {
        out.push((limb << shift) | carry);
        carry = limb >> (32 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shifts a magnitude right by `shift` bits (`shift < 32`).
fn shr_bits(a: &[u32], shift: u32) -> Vec<u32> {
    let mut out = a.to_vec();
    if shift != 0 {
        let mut carry: u32 = 0;
        for limb in out.iter_mut().rev() {
            let new_carry = *limb << (32 - shift);
            *limb = (*limb >> shift) | carry;
            carry = new_carry;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

impl BigInt {
    /// Multiplies by a small unsigned constant.
    #[must_use]
    pub fn mul_small(&self, k: u32) -> BigInt {
        match &self.repr {
            // i64 * u32 always fits in i128.
            Repr::Small(v) => BigInt::from_i128(i128::from(*v) * i128::from(k)),
            Repr::Heap { sign, limbs } => {
                if k == 0 {
                    return BigInt::zero();
                }
                let mut out = Vec::with_capacity(limbs.len() + 1);
                let mut carry: u64 = 0;
                for &limb in limbs {
                    let cur = u64::from(limb) * u64::from(k) + carry;
                    out.push(cur as u32);
                    carry = cur >> 32;
                }
                if carry != 0 {
                    out.push(carry as u32);
                }
                BigInt::from_sign_limbs(*sign, out)
            }
        }
    }

    /// Euclidean division: returns `(q, r)` with `self = q * other + r`,
    /// `q` truncated toward zero and `r` carrying the sign of `self`
    /// (the semantics of Rust's `/` and `%` on primitive integers).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            // Only i64::MIN / -1 overflows; route it through i128.
            return match a.checked_div(*b) {
                Some(q) => (BigInt::small(q), BigInt::small(a % b)),
                None => (BigInt::from_i128(-(i128::from(*a))), BigInt::zero()),
            };
        }
        let mut abuf = [0u32; 2];
        let mut bbuf = [0u32; 2];
        let (q_mag, r_mag) = divrem_limbs(self.mag(&mut abuf), other.mag(&mut bbuf));
        let q = BigInt::from_sign_limbs(self.sign().mul(other.sign()), q_mag);
        let r = BigInt::from_sign_limbs(self.sign(), r_mag);
        q.debug_check();
        r.debug_check();
        (q, r)
    }

    /// `true` iff `other` divides `self` exactly.
    #[must_use]
    pub fn is_multiple_of(&self, other: &BigInt) -> bool {
        !other.is_zero() && self.div_rem(other).1.is_zero()
    }
}

/// Signed addition through the limb kernels (any representation mix).
fn add_signed_slow(a: &BigInt, b: &BigInt) -> BigInt {
    let mut abuf = [0u32; 2];
    let mut bbuf = [0u32; 2];
    let amag = a.mag(&mut abuf);
    let bmag = b.mag(&mut bbuf);
    match (a.sign(), b.sign()) {
        (Sign::Zero, _) => b.clone(),
        (_, Sign::Zero) => a.clone(),
        (x, y) if x == y => BigInt::from_sign_limbs(x, add_limbs(amag, bmag)),
        (x, y) => match cmp_limbs(amag, bmag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_limbs(x, sub_limbs(amag, bmag)),
            Ordering::Less => BigInt::from_sign_limbs(y, sub_limbs(bmag, amag)),
        },
    }
}

/// Addition through the limb kernels regardless of representation
/// (reference path for cross-checking the inline fast paths).
pub(crate) fn ref_add(a: &BigInt, b: &BigInt) -> BigInt {
    add_signed_slow(a, b)
}

/// Subtraction through the limb kernels regardless of representation.
pub(crate) fn ref_sub(a: &BigInt, b: &BigInt) -> BigInt {
    add_signed_slow(a, &b.negated())
}

/// Multiplication through the limb kernels regardless of representation.
pub(crate) fn ref_mul(a: &BigInt, b: &BigInt) -> BigInt {
    let mut abuf = [0u32; 2];
    let mut bbuf = [0u32; 2];
    BigInt::from_sign_limbs(
        a.sign().mul(b.sign()),
        mul_limbs(a.mag(&mut abuf), b.mag(&mut bbuf)),
    )
}

/// Division through the limb kernels regardless of representation.
pub(crate) fn ref_div_rem(a: &BigInt, b: &BigInt) -> (BigInt, BigInt) {
    assert!(!b.is_zero(), "BigInt division by zero");
    let mut abuf = [0u32; 2];
    let mut bbuf = [0u32; 2];
    let (q_mag, r_mag) = divrem_limbs(a.mag(&mut abuf), b.mag(&mut bbuf));
    (
        BigInt::from_sign_limbs(a.sign().mul(b.sign()), q_mag),
        BigInt::from_sign_limbs(a.sign(), r_mag),
    )
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // The i128 sum of two i64s never overflows.
            return match a.checked_add(*b) {
                Some(v) => BigInt::small(v),
                None => BigInt::from_i128(i128::from(*a) + i128::from(*b)),
            };
        }
        add_signed_slow(self, rhs)
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_sub(*b) {
                Some(v) => BigInt::small(v),
                None => BigInt::from_i128(i128::from(*a) - i128::from(*b)),
            };
        }
        add_signed_slow(self, &rhs.negated())
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // The i128 product of two i64s never overflows.
            return match a.checked_mul(*b) {
                Some(v) => BigInt::small(v),
                None => BigInt::from_i128(i128::from(*a) * i128::from(*b)),
            };
        }
        let mut abuf = [0u32; 2];
        let mut bbuf = [0u32; 2];
        BigInt::from_sign_limbs(
            self.sign().mul(rhs.sign()),
            mul_limbs(self.mag(&mut abuf), rhs.mag(&mut bbuf)),
        )
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop!(Add, add; Sub, sub; Mul, mul; Div, div; Rem, rem);

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.negated()
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.negated()
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl std::iter::Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic_matches_i64() {
        let values = [-7i64, -3, -1, 0, 1, 2, 5, 100, -100];
        for &a in &values {
            for &b in &values {
                assert_eq!(big(a) + big(b), big(a + b), "{a}+{b}");
                assert_eq!(big(a) - big(b), big(a - b), "{a}-{b}");
                assert_eq!(big(a) * big(b), big(a * b), "{a}*{b}");
                if b != 0 {
                    assert_eq!(big(a) / big(b), big(a / b), "{a}/{b}");
                    assert_eq!(big(a) % big(b), big(a % b), "{a}%{b}");
                }
            }
        }
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        // Every i64 edge that overflows inline arithmetic.
        let max = big(i64::MAX);
        let min = big(i64::MIN);
        assert_eq!((&max + &max).to_string(), "18446744073709551614");
        assert_eq!((&min + &min).to_string(), "-18446744073709551616");
        assert_eq!((&min - &max).to_string(), "-18446744073709551615");
        assert_eq!((&max * &max).to_string(), "85070591730234615847396907784232501249");
        assert_eq!((&min * &min).to_string(), "85070591730234615865843651857942052864");
        let (q, r) = min.div_rem(&big(-1));
        assert_eq!(q.to_string(), "9223372036854775808");
        assert!(r.is_zero());
        // Heap results that fit a word are demoted.
        let sum = (&max + &max) - &max;
        assert!(sum.is_inline());
        assert_eq!(sum, max);
        let prod = (&max * &max) / &max;
        assert!(prod.is_inline());
        assert_eq!(prod, max);
    }

    #[test]
    fn large_multiplication() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "987654321098765432109876543210".parse().unwrap();
        assert_eq!(
            (&a * &b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
        let (q, r) = (&a * &b).div_rem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn division_with_add_back_case() {
        // Exercises the rare "add back" branch of Knuth's algorithm D.
        let a = BigInt::from_sign_limbs(crate::Sign::Plus, vec![0, 0, 0x8000_0000]);
        let b = BigInt::from_sign_limbs(crate::Sign::Plus, vec![1, 0x8000_0000]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r.cmp_abs(&b) == std::cmp::Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn mul_small_matches_mul() {
        let a: BigInt = "340282366920938463463374607431768211455".parse().unwrap();
        assert_eq!(a.mul_small(1000), &a * &BigInt::from(1000u32));
        assert_eq!(a.mul_small(0), BigInt::zero());
        assert_eq!(big(7).mul_small(6), big(42));
        assert_eq!(big(i64::MAX).mul_small(2), &big(i64::MAX) + &big(i64::MAX));
    }

    #[test]
    fn is_multiple_of() {
        assert!(big(12).is_multiple_of(&big(4)));
        assert!(big(-12).is_multiple_of(&big(4)));
        assert!(!big(13).is_multiple_of(&big(4)));
        assert!(!big(13).is_multiple_of(&BigInt::zero()));
        assert!(BigInt::zero().is_multiple_of(&big(5)));
    }

    fn arb_bigint() -> impl Strategy<Value = BigInt> {
        proptest::collection::vec(any::<u32>(), 0..6).prop_flat_map(|limbs| {
            any::<bool>().prop_map(move |neg| {
                let sign = if neg { crate::Sign::Minus } else { crate::Sign::Plus };
                BigInt::from_sign_limbs(sign, limbs.clone())
            })
        })
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_bigint(), b in arb_bigint()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn prop_add_associative(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
            prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        }

        #[test]
        fn prop_mul_commutative(a in arb_bigint(), b in arb_bigint()) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn prop_mul_distributes_over_add(
            a in arb_bigint(), b in arb_bigint(), c in arb_bigint()
        ) {
            prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        }

        #[test]
        fn prop_sub_inverse_of_add(a in arb_bigint(), b in arb_bigint()) {
            prop_assert_eq!((&a + &b) - &b, a);
        }

        #[test]
        fn prop_divrem_identity(a in arb_bigint(), b in arb_bigint()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&q * &b + &r, a.clone());
            prop_assert!(r.cmp_abs(&b) == std::cmp::Ordering::Less);
            // Remainder carries the dividend's sign (or is zero).
            prop_assert!(r.is_zero() || r.sign() == a.sign());
        }

        #[test]
        fn prop_display_parse_round_trip(a in arb_bigint()) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
        }

        #[test]
        fn prop_neg_involutive(a in arb_bigint()) {
            prop_assert_eq!(-(-a.clone()), a);
        }

        #[test]
        fn prop_canonical_representation(a in arb_bigint(), b in arb_bigint()) {
            for v in [&a + &b, &a - &b, &a * &b] {
                v.debug_check();
                prop_assert_eq!(v.is_inline(), v.to_i64().is_some());
            }
        }
    }
}
