//! Agreement between the inline small-integer fast paths and the limb
//! kernels, concentrated on the `i64` promotion boundary.
//!
//! `BigInt` stores word-sized values inline and falls back to heap limbs
//! on overflow; `Ratio` reduces word-sized cross products in `i128`.
//! These tests drive both paths with boundary-biased operands and assert
//! bit-for-bit agreement with `car_arith::reference`, which always
//! routes through the limb kernels.

use car_arith::{reference, BigInt, Ratio};
use proptest::prelude::*;

/// Values straddling every promotion/demotion edge the fast paths
/// branch on, plus uniform words and small values.
fn boundary_i128() -> impl Strategy<Value = i128> {
    const EDGES: &[i128] = &[
        0,
        1,
        -1,
        i64::MAX as i128,
        i64::MIN as i128,
        i64::MAX as i128 + 1,
        i64::MIN as i128 - 1,
        u64::MAX as i128,
        -(u64::MAX as i128),
        1 << 62,
        -(1 << 62),
        (1 << 100) + 12345,
        -(1 << 100) - 12345,
    ];
    (any::<u64>(), any::<i64>()).prop_map(|(sel, r)| match sel % 5 {
        0 => EDGES[(sel as usize / 5) % EDGES.len()],
        1 => i128::from(r),
        2 => i64::MAX as i128 + i128::from(r % 1000), // straddle +2^63
        3 => i64::MIN as i128 + i128::from(r % 1000), // straddle -2^63
        _ => i128::from(r % 1000),
    })
}

fn boundary_bigint() -> impl Strategy<Value = BigInt> {
    boundary_i128().prop_map(|v| v.to_string().parse().unwrap())
}

/// gcd computed entirely through the limb-kernel reference path.
fn gcd_ref(a: &BigInt, b: &BigInt) -> BigInt {
    let mut x = a.abs();
    let mut y = b.abs();
    while !y.is_zero() {
        let r = reference::div_rem(&x, &y).1;
        x = y;
        y = r;
    }
    x
}

/// Canonical `(num, den)` of `num/den` via the reference path only.
fn normalize_ref(num: BigInt, den: BigInt) -> (BigInt, BigInt) {
    if num.is_zero() {
        return (BigInt::zero(), BigInt::one());
    }
    let g = gcd_ref(&num, &den);
    let mut num = reference::div_rem(&num, &g).0;
    let mut den = reference::div_rem(&den, &g).0;
    if den.is_negative() {
        num = num.negated();
        den = den.negated();
    }
    (num, den)
}

fn assert_ratio_is(r: &Ratio, num: BigInt, den: BigInt) {
    assert_eq!((r.numer(), r.denom()), (&num, &den), "non-canonical ratio {r:?}");
}

#[test]
fn promotion_demotion_round_trips() {
    let max = BigInt::from(i64::MAX);
    let min = BigInt::from(i64::MIN);
    let one = BigInt::one();
    assert!(max.is_inline() && min.is_inline());

    // Crossing the boundary promotes; crossing back demotes to inline.
    let above = &max + &one;
    assert!(!above.is_inline());
    assert_eq!(above.to_i64(), None);
    let back = &above - &one;
    assert!(back.is_inline());
    assert_eq!(back.to_i64(), Some(i64::MAX));

    let below = &min - &one;
    assert!(!below.is_inline());
    let back = &below + &one;
    assert!(back.is_inline());
    assert_eq!(back.to_i64(), Some(i64::MIN));

    // |i64::MIN| does not fit inline; negating twice returns inline.
    let abs_min = min.abs();
    assert!(!abs_min.is_inline());
    assert_eq!(abs_min.to_u64(), Some(1u64 << 63));
    assert_eq!(abs_min.negated(), min);
    assert!(abs_min.negated().is_inline());

    // Demotion through multiplication and division.
    let sq = &max * &max;
    assert!(!sq.is_inline());
    assert!((&sq / &max).is_inline());
    assert_eq!(&sq / &max, max);
}

#[test]
fn parse_promotes_exactly_at_the_boundary() {
    for (s, inline) in [
        ("9223372036854775807", true),   // i64::MAX
        ("9223372036854775808", false),  // i64::MAX + 1
        ("-9223372036854775808", true),  // i64::MIN
        ("-9223372036854775809", false), // i64::MIN - 1
    ] {
        let v: BigInt = s.parse().unwrap();
        assert_eq!(v.is_inline(), inline, "{s}");
        assert_eq!(v.to_string(), s);
        assert_eq!(v.to_i64().is_some(), inline, "{s}");
    }
}

proptest! {
    /// The inline add/sub/mul/div paths agree with the limb kernels.
    #[test]
    fn prop_bigint_ops_agree_with_reference(a in boundary_bigint(), b in boundary_bigint()) {
        prop_assert_eq!(&a + &b, reference::add(&a, &b));
        prop_assert_eq!(&a - &b, reference::sub(&a, &b));
        prop_assert_eq!(&a * &b, reference::mul(&a, &b));
        if !b.is_zero() {
            let (q, r) = a.div_rem(&b);
            let (rq, rr) = reference::div_rem(&a, &b);
            prop_assert_eq!((q, r), (rq, rr));
        }
    }

    /// Every result is canonical: inline exactly when it fits an i64.
    #[test]
    fn prop_results_are_canonical(a in boundary_bigint(), b in boundary_bigint()) {
        for v in [&a + &b, &a - &b, &a * &b, a.negated(), a.abs()] {
            prop_assert_eq!(v.is_inline(), v.to_i64().is_some(), "{:?}", v);
            // to_i64/to_string must describe the same value.
            if let Some(w) = v.to_i64() {
                prop_assert_eq!(v.to_string(), w.to_string());
            }
        }
    }

    /// Ordering agrees with the sign of the reference-path difference.
    #[test]
    fn prop_cmp_agrees_with_reference(a in boundary_bigint(), b in boundary_bigint()) {
        let diff = reference::sub(&a, &b);
        prop_assert_eq!(a.cmp(&b), diff.cmp(&BigInt::zero()));
    }

    /// Ratio arithmetic through the i128 fast path yields exactly the
    /// canonical value the limb-kernel pipeline produces.
    #[test]
    fn prop_ratio_ops_agree_with_reference(
        (an, ad) in (boundary_i128(), boundary_i128()),
        (bn, bd) in (boundary_i128(), boundary_i128()),
    ) {
        prop_assume!(ad != 0 && bd != 0);
        let big = |v: i128| -> BigInt { v.to_string().parse().unwrap() };
        let a = Ratio::new(big(an), big(ad));
        let b = Ratio::new(big(bn), big(bd));

        // a itself must be canonical per the reference pipeline.
        let (n, d) = normalize_ref(big(an), big(ad));
        assert_ratio_is(&a, n, d);

        let sum_num = reference::add(
            &reference::mul(a.numer(), b.denom()),
            &reference::mul(b.numer(), a.denom()),
        );
        let (n, d) = normalize_ref(sum_num, reference::mul(a.denom(), b.denom()));
        assert_ratio_is(&(&a + &b), n, d);

        let diff_num = reference::sub(
            &reference::mul(a.numer(), b.denom()),
            &reference::mul(b.numer(), a.denom()),
        );
        let (n, d) = normalize_ref(diff_num, reference::mul(a.denom(), b.denom()));
        assert_ratio_is(&(&a - &b), n, d);

        let (n, d) = normalize_ref(
            reference::mul(a.numer(), b.numer()),
            reference::mul(a.denom(), b.denom()),
        );
        assert_ratio_is(&(&a * &b), n, d);

        if !b.is_zero() {
            let (n, d) = normalize_ref(
                reference::mul(a.numer(), b.denom()),
                reference::mul(a.denom(), b.numer()),
            );
            assert_ratio_is(&(&a / &b), n, d);
        }

        // Ordering via i128 cross products vs reference cross products.
        let lhs = reference::mul(a.numer(), b.denom());
        let rhs = reference::mul(b.numer(), a.denom());
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));

        // recip skips gcd entirely; it must still be canonical.
        if !a.is_zero() {
            let (n, d) = normalize_ref(a.denom().clone(), a.numer().clone());
            assert_ratio_is(&a.recip(), n, d);
        }
    }
}
