//! Exhaustive bounded finite-model search.
//!
//! Enumerates every interpretation over universes of size `1..=max`
//! (class memberships, attribute pair sets, relation tuple sets) and
//! filters through [`car_core::Interpretation::check`]. Class-membership
//! assignments are enumerated as non-decreasing type sequences — models
//! are closed under object relabeling, so this symmetry cut preserves
//! completeness while shrinking the search space.
//!
//! The search space is astronomically large in general, so a
//! [`BruteForceBudget`] caps both the structural parameters and the total
//! number of candidate interpretations; exceeding it yields
//! [`BruteForceVerdict::BudgetExceeded`] rather than a wrong answer.

use car_core::{Budget, ClassId, Interpretation, ResourceExhausted, Schema};

/// Limits for the exhaustive search.
#[derive(Debug, Clone, Copy)]
pub struct BruteForceBudget {
    /// Largest universe size tried.
    pub max_universe: u32,
    /// Maximum number of candidate interpretations examined.
    pub max_candidates: u64,
}

impl Default for BruteForceBudget {
    fn default() -> BruteForceBudget {
        BruteForceBudget { max_universe: 3, max_candidates: 20_000_000 }
    }
}

/// Three-valued outcome of the bounded search.
#[derive(Debug, Clone)]
pub enum BruteForceVerdict {
    /// A model with the target class nonempty was found.
    Satisfiable(Box<Interpretation>),
    /// No model exists within the universe bound. (The class may still be
    /// satisfiable in a larger universe.)
    NoModelWithinBound,
    /// The candidate budget was exhausted before the search completed.
    BudgetExceeded,
}

/// Searches for a model of `schema` in which `target` is nonempty.
#[must_use]
pub fn search_model(
    schema: &Schema,
    target: ClassId,
    budget: &BruteForceBudget,
) -> BruteForceVerdict {
    search_model_governed(schema, target, budget, &Budget::unbounded())
        .expect("unbounded budget cannot exhaust")
}

/// [`search_model`] under a resource [`Budget`]: one checkpoint per
/// candidate interpretation in the odometer sweep. The structural
/// [`BruteForceBudget`] still applies and still yields
/// [`BruteForceVerdict::BudgetExceeded`]; the resource budget instead
/// interrupts the search with an error.
///
/// # Errors
/// [`ResourceExhausted`] as soon as the resource budget runs out.
pub fn search_model_governed(
    schema: &Schema,
    target: ClassId,
    budget: &BruteForceBudget,
    resources: &Budget,
) -> Result<BruteForceVerdict, ResourceExhausted> {
    let mut candidates_left = budget.max_candidates;
    for n in 1..=budget.max_universe {
        match search_at_size(schema, target, n, &mut candidates_left, resources)? {
            Outcome::Found(model) => {
                return Ok(BruteForceVerdict::Satisfiable(Box::new(model)));
            }
            Outcome::Exhausted => {}
            Outcome::OutOfBudget => return Ok(BruteForceVerdict::BudgetExceeded),
        }
    }
    Ok(BruteForceVerdict::NoModelWithinBound)
}

enum Outcome {
    Found(Interpretation),
    Exhausted,
    OutOfBudget,
}

fn search_at_size(
    schema: &Schema,
    target: ClassId,
    n: u32,
    candidates_left: &mut u64,
    resources: &Budget,
) -> Result<Outcome, ResourceExhausted> {
    let num_classes = schema.num_classes();
    assert!(num_classes <= 16, "brute force supports at most 16 classes");
    let type_count: u32 = 1 << num_classes;

    // Non-decreasing sequences of per-object types.
    let mut types = vec![0u32; n as usize];
    loop {
        match try_types(schema, target, n, &types, candidates_left, resources)? {
            Outcome::Found(model) => return Ok(Outcome::Found(model)),
            Outcome::OutOfBudget => return Ok(Outcome::OutOfBudget),
            Outcome::Exhausted => {}
        }
        // Advance the non-decreasing odometer.
        let mut i = n as usize;
        loop {
            if i == 0 {
                return Ok(Outcome::Exhausted);
            }
            i -= 1;
            if types[i] + 1 < type_count {
                types[i] += 1;
                let reset = types[i];
                for t in &mut types[i + 1..] {
                    *t = reset;
                }
                break;
            }
        }
    }
}

/// Enumerates all edge/tuple configurations for one membership
/// assignment.
fn try_types(
    schema: &Schema,
    target: ClassId,
    n: u32,
    types: &[u32],
    candidates_left: &mut u64,
    resources: &Budget,
) -> Result<Outcome, ResourceExhausted> {
    // Quick reject: target must be inhabited.
    if !types.iter().any(|&t| t & (1 << target.index()) != 0) {
        return Ok(Outcome::Exhausted);
    }
    // Quick reject: isa formulas depend only on memberships; check them
    // once per type assignment instead of once per edge configuration.
    for &t in types {
        for (class, def) in schema.classes() {
            if t & (1 << class.index()) == 0 {
                continue;
            }
            let satisfied = def.isa.clauses.iter().all(|clause| {
                clause
                    .literals
                    .iter()
                    .any(|l| l.positive == (t & (1 << l.class.index()) != 0))
            });
            if !satisfied {
                return Ok(Outcome::Exhausted);
            }
        }
    }

    // Component sizes: one bitmask per attribute over n² pairs; one per
    // relation over n^K tuples.
    let pairs = (n * n) as u64;
    let mut widths: Vec<u64> = Vec::new();
    for _ in 0..schema.num_attrs() {
        widths.push(pairs);
    }
    for (_, def) in schema.relations() {
        widths.push((n as u64).pow(def.arity() as u32));
    }
    for &w in &widths {
        assert!(w <= 63, "brute force component too wide; shrink the universe");
    }

    // Odometer over all component bitmasks.
    let mut masks = vec![0u64; widths.len()];
    loop {
        resources.checkpoint()?;
        if *candidates_left == 0 {
            return Ok(Outcome::OutOfBudget);
        }
        *candidates_left -= 1;

        let model = materialize(schema, n, types, &masks);
        if model.check(schema).is_ok() {
            return Ok(Outcome::Found(model));
        }

        // Advance.
        let mut i = 0;
        loop {
            if i == masks.len() {
                return Ok(Outcome::Exhausted);
            }
            masks[i] += 1;
            if masks[i] < (1u64 << widths[i]) {
                break;
            }
            masks[i] = 0;
            i += 1;
        }
    }
}

fn materialize(schema: &Schema, n: u32, types: &[u32], masks: &[u64]) -> Interpretation {
    let mut interp = Interpretation::new(schema, n as usize);
    for (obj, &t) in types.iter().enumerate() {
        for c in 0..schema.num_classes() {
            if t & (1 << c) != 0 {
                interp.add_to_class(car_core::ClassId::from_index(c), obj as u32);
            }
        }
    }
    let mut mi = 0;
    for attr in schema.symbols().attr_ids() {
        let mask = masks[mi];
        mi += 1;
        for bit in 0..(n * n) {
            if mask & (1 << bit) != 0 {
                interp.add_attr_pair(attr, bit / n, bit % n);
            }
        }
    }
    for (rel, def) in schema.relations() {
        let mask = masks[mi];
        mi += 1;
        let arity = def.arity() as u32;
        let count = (n as u64).pow(arity);
        for code in 0..count {
            if mask & (1 << code) != 0 {
                let mut tuple = Vec::with_capacity(arity as usize);
                let mut c = code;
                for _ in 0..arity {
                    tuple.push((c % n as u64) as u32);
                    c /= n as u64;
                }
                interp.add_tuple(rel, tuple);
            }
        }
    }
    interp
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_core::syntax::{
        AttRef, Card, ClassFormula, RoleClause, RoleLiteral, SchemaBuilder,
    };

    fn budget() -> BruteForceBudget {
        BruteForceBudget { max_universe: 3, max_candidates: 5_000_000 }
    }

    #[test]
    fn finds_trivial_model() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let s = b.build().unwrap();
        match search_model(&s, a, &budget()) {
            BruteForceVerdict::Satisfiable(model) => {
                assert!(model.is_model(&s));
                assert!(!model.class_extension(a).is_empty());
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_class_finds_nothing() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
        let s = b.build().unwrap();
        assert!(matches!(
            search_model(&s, a, &budget()),
            BruteForceVerdict::NoModelWithinBound
        ));
    }

    #[test]
    fn attribute_constraints_are_honored() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .isa(ClassFormula::neg_class(t))
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(t))
            .finish();
        let s = b.build().unwrap();
        match search_model(&s, a, &budget()) {
            BruteForceVerdict::Satisfiable(model) => {
                let obj = *model.class_extension(a).iter().next().unwrap();
                assert_eq!(model.att_count(AttRef::Direct(f), obj), 2);
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn relation_constraints_are_honored() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        let v = b.role("v");
        b.define_class(a)
            .isa(ClassFormula::neg_class(t))
            .participates(r, u, Card::exactly(1))
            .finish();
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral { role: v, formula: ClassFormula::class(t) }]),
        );
        let s = b.build().unwrap();
        match search_model(&s, a, &budget()) {
            BruteForceVerdict::Satisfiable(model) => {
                let rel = s.rel_id("R").unwrap();
                assert_eq!(model.rel_extension(rel).len(), 1);
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn finite_model_cycle_is_rejected_within_bound() {
        // The finite-model-only unsatisfiable cycle (see car-core's
        // satisfiability tests): no model of any finite size exists, so in
        // particular none within the bound.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
            .finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a))
            .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
            .finish();
        let s = b.build().unwrap();
        assert!(matches!(
            search_model(&s, a, &BruteForceBudget { max_universe: 2, ..budget() }),
            BruteForceVerdict::NoModelWithinBound
        ));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.attribute("f");
        b.attribute("g");
        let s = b.build().unwrap();
        // 1 candidate is not enough to even try the empty configuration
        // beyond the first type assignment... force exhaustion with 0.
        assert!(matches!(
            search_model(&s, a, &BruteForceBudget { max_universe: 3, max_candidates: 0 }),
            BruteForceVerdict::BudgetExceeded
        ));
    }
}
