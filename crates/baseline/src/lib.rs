//! # car-baseline — ground truth and paper-baseline comparators
//!
//! Two independent reference points for the CAR reasoner:
//!
//! * [`brute_force`] — exhaustive bounded finite-model search, filtered
//!   through the independent model checker of `car-core::semantics`. It
//!   shares *no* code with the two-phase algorithm (no expansion, no
//!   linear programming), so agreement between the two is meaningful
//!   evidence of correctness (experiment E2 in `EXPERIMENTS.md`).
//! * the *naive* expansion strategy — the "most trivial way" of §4.2 of
//!   the paper (sweep all `2^|C|` subsets) — lives in
//!   `car_core::enumerate::naive` and is exercised through
//!   `Strategy::Naive`; this crate re-exports a convenience constructor.
//!
//! Bounded search cannot prove unsatisfiability (a model might exist just
//! beyond the bound), so the oracle's verdicts are three-valued.

pub mod brute_force;

pub use brute_force::{search_model, BruteForceBudget, BruteForceVerdict};

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_core::Schema;

/// A reasoner fixed to the paper's §4.2 naive enumeration strategy, for
/// benchmarking the §4.3/§4.4 heuristics against it.
#[must_use]
pub fn naive_reasoner(schema: &Schema) -> Reasoner<'_> {
    Reasoner::with_config(
        schema,
        ReasonerConfig { strategy: Strategy::Naive, ..ReasonerConfig::default() },
    )
}
