//! # car-logic — propositional reasoning for schema expansion
//!
//! CNF formulas, a DPLL SAT solver with unit propagation and pure-literal
//! elimination, exhaustive model enumeration (AllSAT), and a
//! unit-propagation-only entailment test.
//!
//! ## Role in the CAR reproduction
//!
//! Section 3.1 of the paper defines the *consistent compound classes* of a
//! schema `S`: subsets `C̄` of the class alphabet such that every class
//! `C ∈ C̄` has its isa-formula `F_C` realized by the truth assignment
//! induced by `C̄`. Those are exactly the models of the propositional
//! formula `⋀_C (C → F_C)`, so:
//!
//! * [`for_each_model`] enumerates consistent compound classes without ever
//!   visiting the inconsistent ones (the naive `2^|C|` sweep of §4.2 is kept
//!   in `car-baseline` as the paper's comparison point);
//! * [`up_entails`] is the "efficient and sound procedure that does not
//!   guarantee completeness" ([Dal92]) used by the §4.3 preselection step to
//!   fill the inclusion and disjointness tables.
//!
//! ```
//! use car_logic::{CnfFormula, PropLit, solve, for_each_model};
//!
//! let mut f = CnfFormula::new(2);
//! f.add_clause([PropLit::pos(0), PropLit::pos(1)]); // x0 ∨ x1
//! f.add_clause([PropLit::neg(0), PropLit::neg(1)]); // ¬x0 ∨ ¬x1
//! assert!(solve(&f).is_some());
//! let mut count = 0;
//! for_each_model(&f, |_model| { count += 1; true });
//! assert_eq!(count, 2); // exactly {x0}, {x1}
//! ```

mod allsat;
mod assignment;
mod cnf;
mod counters;
mod dpll;
mod entail;
mod watch;

pub use allsat::{count_models, for_each_model};
pub use assignment::Assignment;
pub use cnf::{Clause, CnfFormula, PropLit, PropVar};
pub use counters::{search_counters, SearchCounters};
pub use dpll::{solve, solve_guided};
pub use entail::{propagate_units, up_entails, up_forced_value, Propagation};
