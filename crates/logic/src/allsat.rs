//! Exhaustive model enumeration (AllSAT).
//!
//! Enumerates every *total* model of a CNF formula, visiting conflicting
//! subtrees at most once thanks to watched-literal unit propagation. Used
//! to enumerate the consistent compound classes of a CAR schema (the
//! models of `⋀_C (C → F_C)`) without sweeping all `2^|C|` candidates.
//!
//! The emission order — lexicographic in the model vector with `true`
//! before `false` — is a stable contract: `car-core`'s parallel cube
//! splitting and the incremental cluster-splice cache both reassemble
//! transcripts under the assumption that enumeration order never changes.
//! Unit propagation cannot disturb it: propagation only forces literals
//! whose opposite branch is a conflict (emitting nothing), so the
//! sequence of emitted total models is exactly the branching order.
//! `allsat_order.rs` pins this contract.

use crate::assignment::Assignment;
use crate::cnf::{CnfFormula, PropVar, PropLit};
use crate::counters::count_decision;
use crate::watch::{unwind, Watcher};

/// Calls `visit` once per total model of `formula`, in lexicographic
/// order of the model vector (with `true` explored before `false` on each
/// variable). Enumeration stops early when `visit` returns `false`.
pub fn for_each_model<F>(formula: &CnfFormula, mut visit: F)
where
    F: FnMut(&[bool]) -> bool,
{
    let mut engine = Watcher::new(formula);
    if engine.has_empty_clause() {
        return;
    }
    let mut assignment = Assignment::new(formula.num_vars());
    let mut trail = Vec::new();
    if !engine.propagate_initial(formula, &mut assignment, &mut trail) {
        return;
    }
    let mut model = vec![false; formula.num_vars()];
    enumerate(formula, &mut engine, &mut assignment, &mut trail, &mut model, &mut visit);
}

/// Counts the total models of `formula` (up to `limit`, to bound work on
/// adversarial inputs; pass `usize::MAX` for an exact count).
#[must_use]
pub fn count_models(formula: &CnfFormula, limit: usize) -> usize {
    let mut count = 0;
    for_each_model(formula, |_| {
        count += 1;
        count < limit
    });
    count
}

/// Returns `false` iff the visitor aborted enumeration.
fn enumerate<F>(
    formula: &CnfFormula,
    engine: &mut Watcher,
    assignment: &mut Assignment,
    trail: &mut Vec<PropVar>,
    model: &mut Vec<bool>,
    visit: &mut F,
) -> bool
where
    F: FnMut(&[bool]) -> bool,
{
    // Propagation is at fixpoint on entry, so a full trail is a model.
    if trail.len() == assignment.len() {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = assignment.value(v).expect("assignment is total");
        }
        debug_assert!(formula.eval(model));
        return visit(model);
    }

    let var = assignment
        .first_unassigned()
        .expect("partial assignment has an unassigned variable");
    for value in [true, false] {
        count_decision();
        let mark = trail.len();
        let lit = PropLit { var, positive: value };
        // A conflict prunes the subtree (it contains no models);
        // enumeration itself continues.
        let keep_going = if engine.assign_and_propagate(formula, assignment, lit, trail) {
            enumerate(formula, engine, assignment, trail, model, visit)
        } else {
            true
        };
        unwind(assignment, trail, mark);
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::PropLit;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_formula_enumerates_all_assignments() {
        let f = CnfFormula::new(3);
        assert_eq!(count_models(&f, usize::MAX), 8);
    }

    #[test]
    fn zero_vars() {
        let f = CnfFormula::new(0);
        assert_eq!(count_models(&f, usize::MAX), 1); // the empty model
        let mut g = CnfFormula::new(0);
        g.add_clause([]);
        assert_eq!(count_models(&g, usize::MAX), 0);
    }

    #[test]
    fn exactly_one_constraint() {
        // (x0 ∨ x1 ∨ x2) ∧ pairwise exclusion: exactly 3 models.
        let mut f = CnfFormula::new(3);
        f.add_clause([PropLit::pos(0), PropLit::pos(1), PropLit::pos(2)]);
        for i in 0..3 {
            for j in (i + 1)..3 {
                f.add_clause([PropLit::neg(i), PropLit::neg(j)]);
            }
        }
        let mut models = Vec::new();
        for_each_model(&f, |m| {
            models.push(m.to_vec());
            true
        });
        assert_eq!(models.len(), 3);
        for m in &models {
            assert_eq!(m.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn early_abort_stops_enumeration() {
        let f = CnfFormula::new(10);
        assert_eq!(count_models(&f, 5), 5);
    }

    #[test]
    fn unsatisfiable_formula_yields_nothing() {
        let mut f = CnfFormula::new(1);
        f.add_clause([PropLit::pos(0)]);
        f.add_clause([PropLit::neg(0)]);
        assert_eq!(count_models(&f, usize::MAX), 0);
    }

    fn arb_cnf() -> impl Strategy<Value = CnfFormula> {
        let clause = proptest::collection::vec(
            (-4i32..=4).prop_filter("nonzero", |v| *v != 0),
            1..4,
        );
        proptest::collection::vec(clause, 0..10).prop_map(|clauses| {
            let mut f = CnfFormula::new(4);
            for c in clauses {
                f.add_clause(c.iter().map(|&v| {
                    if v > 0 {
                        PropLit::pos((v - 1) as usize)
                    } else {
                        PropLit::neg((-v - 1) as usize)
                    }
                }));
            }
            f
        })
    }

    proptest! {
        #[test]
        fn prop_enumeration_matches_truth_table(f in arb_cnf()) {
            let mut visited = Vec::new();
            for_each_model(&f, |m| {
                visited.push(m.to_vec());
                true
            });
            let enumerated: BTreeSet<Vec<bool>> = visited.iter().cloned().collect();
            prop_assert_eq!(enumerated.len(), visited.len(), "duplicate models");
            // Compare against brute force.
            let n = f.num_vars();
            let expected: BTreeSet<Vec<bool>> = (0..1u32 << n)
                .map(|bits| (0..n).map(|i| bits & (1 << i) != 0).collect::<Vec<bool>>())
                .filter(|m| f.eval(m))
                .collect();
            prop_assert_eq!(enumerated, expected);
        }
    }
}
