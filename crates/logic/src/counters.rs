//! Monotonic per-thread work counters for the DPLL/AllSAT engines.
//!
//! The counters track the deterministic work profile of the solver —
//! unit propagations, branching decisions, conflicts — independently of
//! wall clock. Bench telemetry reads deltas around a workload; because
//! the counters are thread-local, a single-threaded run observes exact,
//! reproducible values (parallel workers keep their own tallies).

use std::cell::Cell;

/// Snapshot of the solver's cumulative work counters on this thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Literals asserted by unit propagation (forced assignments).
    pub propagations: u64,
    /// Branching decisions (both polarities of an enumeration split
    /// count as one decision each).
    pub decisions: u64,
    /// Conflicts detected (a clause with every literal false).
    pub conflicts: u64,
    /// Calls to the weight-guided solver [`crate::solve_guided`] — one
    /// per pricing query when `car-core` uses it as a column-generation
    /// oracle.
    pub guided_solves: u64,
}

thread_local! {
    static COUNTERS: Cell<SearchCounters> = const { Cell::new(SearchCounters {
        propagations: 0,
        decisions: 0,
        conflicts: 0,
        guided_solves: 0,
    }) };
}

/// Current cumulative counters for this thread (monotonic; subtract two
/// snapshots to meter a region).
#[must_use]
pub fn search_counters() -> SearchCounters {
    COUNTERS.with(Cell::get)
}

#[inline]
pub(crate) fn count_propagations(n: u64) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        v.propagations += n;
        c.set(v);
    });
}

#[inline]
pub(crate) fn count_decision() {
    COUNTERS.with(|c| {
        let mut v = c.get();
        v.decisions += 1;
        c.set(v);
    });
}

#[inline]
pub(crate) fn count_guided_solve() {
    COUNTERS.with(|c| {
        let mut v = c.get();
        v.guided_solves += 1;
        c.set(v);
    });
}

#[inline]
pub(crate) fn count_conflict() {
    COUNTERS.with(|c| {
        let mut v = c.get();
        v.conflicts += 1;
        c.set(v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{CnfFormula, PropLit};

    #[test]
    fn counters_advance_monotonically() {
        let before = search_counters();
        let mut f = CnfFormula::new(3);
        f.add_clause([PropLit::pos(0)]);
        f.add_clause([PropLit::neg(0), PropLit::pos(1)]);
        assert!(crate::solve(&f).is_some());
        let after = search_counters();
        assert!(after.propagations > before.propagations);
        assert!(after.propagations >= before.propagations + 2);
    }
}
