//! Propositional variables, literals, clauses and CNF formulas.

use std::fmt;

/// Index of a propositional variable (dense, starting at 0).
pub type PropVar = usize;

/// A propositional literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropLit {
    /// The underlying variable.
    pub var: PropVar,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl PropLit {
    /// The positive literal of `var`.
    #[must_use]
    pub fn pos(var: PropVar) -> PropLit {
        PropLit { var, positive: true }
    }

    /// The negative literal of `var`.
    #[must_use]
    pub fn neg(var: PropVar) -> PropLit {
        PropLit { var, positive: false }
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> PropLit {
        PropLit { var: self.var, positive: !self.positive }
    }

    /// Whether the literal is satisfied by assigning `value` to its
    /// variable.
    #[must_use]
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for PropLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    /// The literals of the clause, in insertion order.
    pub literals: Vec<PropLit>,
}

impl Clause {
    /// Builds a clause from literals.
    #[must_use]
    pub fn new(literals: Vec<PropLit>) -> Clause {
        Clause { literals }
    }

    /// `true` for the empty clause (unsatisfiable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// `true` iff the clause contains both a literal and its negation
    /// (and is therefore valid, i.e. always satisfied).
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        self.literals.iter().any(|l| self.literals.contains(&l.negated()))
    }

    /// Evaluates the clause under a total assignment.
    #[must_use]
    pub fn eval(&self, model: &[bool]) -> bool {
        self.literals.iter().any(|l| l.satisfied_by(model[l.var]))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊥");
        }
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Debug, Clone, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// An empty (trivially true) formula over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> CnfFormula {
        CnfFormula { num_vars, clauses: Vec::new() }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses of the formula.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause given its literals.
    ///
    /// # Panics
    /// Panics if a literal references a variable `≥ num_vars`.
    pub fn add_clause<I>(&mut self, literals: I)
    where
        I: IntoIterator<Item = PropLit>,
    {
        let clause = Clause::new(literals.into_iter().collect());
        for l in &clause.literals {
            assert!(l.var < self.num_vars, "literal variable out of range");
        }
        self.clauses.push(clause);
    }

    /// Evaluates the formula under a total assignment.
    ///
    /// # Panics
    /// Panics if `model.len() < num_vars`.
    #[must_use]
    pub fn eval(&self, model: &[bool]) -> bool {
        assert!(model.len() >= self.num_vars);
        self.clauses.iter().all(|c| c.eval(model))
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let l = PropLit::pos(3);
        assert_eq!(l.negated(), PropLit::neg(3));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(PropLit::neg(3).satisfied_by(false));
    }

    #[test]
    fn clause_eval_and_tautology() {
        let c = Clause::new(vec![PropLit::pos(0), PropLit::neg(1)]);
        assert!(c.eval(&[true, true]));
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
        assert!(!c.is_tautology());
        let t = Clause::new(vec![PropLit::pos(0), PropLit::neg(0)]);
        assert!(t.is_tautology());
        assert!(Clause::default().is_empty());
    }

    #[test]
    fn formula_eval() {
        let mut f = CnfFormula::new(2);
        f.add_clause([PropLit::pos(0)]);
        f.add_clause([PropLit::neg(1)]);
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
        assert!(CnfFormula::new(0).eval(&[]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut f = CnfFormula::new(1);
        f.add_clause([PropLit::pos(1)]);
    }

    #[test]
    fn display() {
        let mut f = CnfFormula::new(2);
        f.add_clause([PropLit::pos(0), PropLit::neg(1)]);
        assert_eq!(f.to_string(), "(x0 ∨ ¬x1)");
        assert_eq!(CnfFormula::new(3).to_string(), "⊤");
        assert_eq!(Clause::default().to_string(), "⊥");
    }
}
