//! Unit-propagation closure and sound-but-incomplete entailment.
//!
//! Section 4.3 of the paper fills its inclusion and disjointness tables
//! with deductions over the isa parts of class definitions, noting that
//! full deduction is NP-complete and that "it may be sufficient to use an
//! efficient and sound procedure that does not guarantee completeness
//! [Dal92]". Unit propagation is exactly such a procedure: everything it
//! derives is entailed, it runs in time linear in the formula per derived
//! literal, and it misses some entailments — which the surrounding
//! algorithm tolerates by construction.

use crate::cnf::{CnfFormula, PropLit, PropVar};

/// Result of propagating a set of assumption literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Propagation {
    /// Propagation closed without conflict; the fixed literals are
    /// recorded per variable (`None` = untouched).
    Closed(Vec<Option<bool>>),
    /// The assumptions unit-propagate to a contradiction.
    Conflict,
}

/// Computes the unit-propagation closure of `formula` under `assumptions`.
///
/// # Panics
/// Panics if an assumption references a variable out of range.
#[must_use]
pub fn propagate_units(formula: &CnfFormula, assumptions: &[PropLit]) -> Propagation {
    let n = formula.num_vars();
    let mut values: Vec<Option<bool>> = vec![None; n];
    let mut queue: Vec<PropLit> = Vec::new();

    for &lit in assumptions {
        assert!(lit.var < n, "assumption variable out of range");
        match values[lit.var] {
            Some(v) if v != lit.positive => return Propagation::Conflict,
            Some(_) => {}
            None => {
                values[lit.var] = Some(lit.positive);
                queue.push(lit);
            }
        }
    }

    // Saturate: scan clauses for new units until a fixpoint. The formulas
    // involved are small, so the quadratic scan is simpler and fast
    // enough; a watched-literal scheme would obscure the logic.
    let mut changed = true;
    while changed {
        changed = false;
        for clause in formula.clauses() {
            let mut satisfied = false;
            let mut unassigned: Option<PropLit> = None;
            let mut unassigned_count = 0;
            for &lit in &clause.literals {
                match values[lit.var] {
                    Some(v) if lit.satisfied_by(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(lit);
                        unassigned_count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => return Propagation::Conflict,
                1 => {
                    let lit = unassigned.expect("counted one unassigned literal");
                    values[lit.var] = Some(lit.positive);
                    changed = true;
                }
                _ => {}
            }
        }
    }
    Propagation::Closed(values)
}

/// Sound, incomplete entailment: `true` means `formula ∧ assumptions ⊨ goal`
/// is *certain* (refutation closes under unit propagation alone); `false`
/// means "not derived" — the entailment may still hold.
#[must_use]
pub fn up_entails(formula: &CnfFormula, assumptions: &[PropLit], goal: PropLit) -> bool {
    let mut with_negated_goal = assumptions.to_vec();
    with_negated_goal.push(goal.negated());
    matches!(propagate_units(formula, &with_negated_goal), Propagation::Conflict)
}

/// Convenience wrapper: does the formula alone force `var` to a value,
/// as far as unit propagation can tell under the given assumptions?
#[must_use]
pub fn up_forced_value(
    formula: &CnfFormula,
    assumptions: &[PropLit],
    var: PropVar,
) -> Option<bool> {
    match propagate_units(formula, assumptions) {
        Propagation::Conflict => None,
        Propagation::Closed(values) => values[var],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::solve;
    use proptest::prelude::*;

    fn formula(num_vars: usize, clauses: &[&[i32]]) -> CnfFormula {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(c.iter().map(|&v| {
                if v > 0 {
                    PropLit::pos((v - 1) as usize)
                } else {
                    PropLit::neg((-v - 1) as usize)
                }
            }));
        }
        f
    }

    #[test]
    fn propagation_closure() {
        // x0 -> x1, x1 -> x2
        let f = formula(3, &[&[-1, 2], &[-2, 3]]);
        match propagate_units(&f, &[PropLit::pos(0)]) {
            Propagation::Closed(values) => {
                assert_eq!(values, vec![Some(true), Some(true), Some(true)]);
            }
            Propagation::Conflict => panic!("no conflict expected"),
        }
    }

    #[test]
    fn conflict_detection() {
        let f = formula(2, &[&[-1, 2], &[-1, -2]]);
        assert_eq!(propagate_units(&f, &[PropLit::pos(0)]), Propagation::Conflict);
        // Contradictory assumptions conflict immediately.
        let g = CnfFormula::new(1);
        assert_eq!(
            propagate_units(&g, &[PropLit::pos(0), PropLit::neg(0)]),
            Propagation::Conflict
        );
    }

    #[test]
    fn entailment_finds_chains() {
        let f = formula(4, &[&[-1, 2], &[-2, 3], &[-3, 4]]);
        assert!(up_entails(&f, &[PropLit::pos(0)], PropLit::pos(3)));
        assert!(!up_entails(&f, &[PropLit::pos(3)], PropLit::pos(0)));
    }

    #[test]
    fn entailment_is_incomplete_but_sound() {
        // (x0 ∨ x1 ∨ x2) ∧ (x0 ∨ ¬x1 ∨ x2) ∧ (x0 ∨ x1 ∨ ¬x2) ∧
        // (x0 ∨ ¬x1 ∨ ¬x2) entails x0, but after assuming ¬x0 the
        // remaining clauses all have width two: unit propagation is stuck
        // and the entailment is missed (it needs a case split on x1).
        let f = formula(3, &[&[1, 2, 3], &[1, -2, 3], &[1, 2, -3], &[1, -2, -3]]);
        assert!(!up_entails(&f, &[], PropLit::pos(0)));
        {
            // ...but it *is* a real entailment, as DPLL confirms.
            let mut refutation = f.clone();
            refutation.add_clause([PropLit::neg(0)]);
            assert!(solve(&refutation).is_none());
        }
        // ...whereas a directly forced literal is found:
        let g = formula(1, &[&[1]]);
        assert!(up_entails(&g, &[], PropLit::pos(0)));
    }

    #[test]
    fn forced_value() {
        let f = formula(2, &[&[1], &[-1, -2]]);
        assert_eq!(up_forced_value(&f, &[], 0), Some(true));
        assert_eq!(up_forced_value(&f, &[], 1), Some(false));
        let g = CnfFormula::new(1);
        assert_eq!(up_forced_value(&g, &[], 0), None);
    }

    fn arb_cnf() -> impl Strategy<Value = CnfFormula> {
        let clause = proptest::collection::vec(
            (-4i32..=4).prop_filter("nonzero", |v| *v != 0),
            1..4,
        );
        proptest::collection::vec(clause, 0..10).prop_map(|clauses| {
            let mut f = CnfFormula::new(4);
            for c in clauses {
                f.add_clause(c.iter().map(|&v| {
                    if v > 0 {
                        PropLit::pos((v - 1) as usize)
                    } else {
                        PropLit::neg((-v - 1) as usize)
                    }
                }));
            }
            f
        })
    }

    proptest! {
        /// Soundness: whenever unit propagation claims entailment, full
        /// DPLL on the refutation must agree it is unsatisfiable.
        #[test]
        fn prop_up_entailment_is_sound(f in arb_cnf(), goal_var in 0usize..4) {
            let goal = PropLit::pos(goal_var);
            if up_entails(&f, &[], goal) {
                let mut refutation = f.clone();
                refutation.add_clause([goal.negated()]);
                prop_assert!(solve(&refutation).is_none());
            }
        }

        /// Propagation never fixes a variable to a value that contradicts
        /// some model of the formula extended with the fixed literals.
        #[test]
        fn prop_closure_is_consistent(f in arb_cnf()) {
            if let Propagation::Closed(values) = propagate_units(&f, &[]) {
                if solve(&f).is_some() {
                    let mut extended = f.clone();
                    for (v, val) in values.iter().enumerate() {
                        if let Some(b) = val {
                            extended.add_clause([PropLit { var: v, positive: *b }]);
                        }
                    }
                    prop_assert!(solve(&extended).is_some());
                }
            }
        }
    }
}
