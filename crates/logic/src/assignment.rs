//! Partial truth assignments used by the DPLL search.

use crate::cnf::{PropLit, PropVar};

/// A partial assignment of truth values to variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// An all-unassigned assignment over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Assignment {
        Assignment { values: vec![None; num_vars] }
    }

    /// Number of variables covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff there are no variables at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of `var`, if assigned.
    #[must_use]
    pub fn value(&self, var: PropVar) -> Option<bool> {
        self.values[var]
    }

    /// Assigns `value` to `var` (overwrites any previous value).
    pub fn assign(&mut self, var: PropVar, value: bool) {
        self.values[var] = Some(value);
    }

    /// Clears the value of `var`.
    pub fn unassign(&mut self, var: PropVar) {
        self.values[var] = None;
    }

    /// Status of a literal under the current assignment.
    #[must_use]
    pub fn lit_value(&self, lit: PropLit) -> Option<bool> {
        self.values[lit.var].map(|v| lit.satisfied_by(v))
    }

    /// `true` iff every variable is assigned.
    #[must_use]
    pub fn is_total(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// First unassigned variable, if any.
    #[must_use]
    pub fn first_unassigned(&self) -> Option<PropVar> {
        self.values.iter().position(Option::is_none)
    }

    /// Extracts a total model; unassigned variables default to `false`
    /// (harmless completions for enumeration are handled by the caller).
    #[must_use]
    pub fn to_model(&self) -> Vec<bool> {
        self.values.iter().map(|v| v.unwrap_or(false)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut a = Assignment::new(3);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(!a.is_total());
        assert_eq!(a.first_unassigned(), Some(0));
        a.assign(0, true);
        a.assign(2, false);
        assert_eq!(a.value(0), Some(true));
        assert_eq!(a.value(1), None);
        assert_eq!(a.first_unassigned(), Some(1));
        assert_eq!(a.lit_value(PropLit::pos(0)), Some(true));
        assert_eq!(a.lit_value(PropLit::neg(0)), Some(false));
        assert_eq!(a.lit_value(PropLit::pos(1)), None);
        assert_eq!(a.lit_value(PropLit::neg(2)), Some(true));
        a.assign(1, true);
        assert!(a.is_total());
        assert_eq!(a.to_model(), vec![true, true, false]);
        a.unassign(1);
        assert!(!a.is_total());
        assert_eq!(a.to_model(), vec![true, false, false]);
    }

    #[test]
    fn empty_assignment() {
        let a = Assignment::new(0);
        assert!(a.is_empty());
        assert!(a.is_total());
        assert_eq!(a.first_unassigned(), None);
        assert_eq!(a.to_model(), Vec::<bool>::new());
    }
}
