//! A DPLL satisfiability solver with unit propagation and pure-literal
//! elimination.
//!
//! Deliberately simple (no clause learning, no watched literals): the CNF
//! instances arising from CAR schema expansion are small — one variable
//! per class of a cluster — and the solver's simplicity makes the AllSAT
//! enumeration built on top of it (in [`crate::allsat`]) easy to trust.

use crate::assignment::Assignment;
use crate::cnf::{CnfFormula, PropLit};

/// Decides satisfiability; returns a total satisfying model if one exists.
#[must_use]
pub fn solve(formula: &CnfFormula) -> Option<Vec<bool>> {
    let mut assignment = Assignment::new(formula.num_vars());
    if search(formula, &mut assignment, true) {
        let model = assignment.to_model();
        debug_assert!(formula.eval(&model));
        Some(model)
    } else {
        None
    }
}

/// Status of the formula under a partial assignment.
enum Status {
    /// All clauses satisfied.
    Satisfied,
    /// Some clause has all literals false.
    Conflict,
    /// Undecided; if a unit clause exists, its forced literal.
    Open(Option<PropLit>),
}

fn status(formula: &CnfFormula, assignment: &Assignment) -> Status {
    let mut all_satisfied = true;
    let mut unit: Option<PropLit> = None;
    for clause in formula.clauses() {
        let mut satisfied = false;
        let mut unassigned: Option<PropLit> = None;
        let mut unassigned_count = 0;
        for &lit in &clause.literals {
            match assignment.lit_value(lit) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => {
                    unassigned = Some(lit);
                    unassigned_count += 1;
                }
            }
        }
        if satisfied {
            continue;
        }
        match unassigned_count {
            0 => return Status::Conflict,
            1 => unit = unit.or(unassigned),
            _ => {}
        }
        all_satisfied = false;
    }
    if all_satisfied {
        Status::Satisfied
    } else {
        Status::Open(unit)
    }
}

/// Finds a literal that occurs with only one polarity among the clauses
/// not yet satisfied (a *pure* literal, safe to assert).
fn pure_literal(formula: &CnfFormula, assignment: &Assignment) -> Option<PropLit> {
    let n = assignment.len();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in formula.clauses() {
        if clause.literals.iter().any(|&l| assignment.lit_value(l) == Some(true)) {
            continue;
        }
        for &lit in &clause.literals {
            if assignment.lit_value(lit).is_none() {
                if lit.positive {
                    pos[lit.var] = true;
                } else {
                    neg[lit.var] = true;
                }
            }
        }
    }
    (0..n).find_map(|v| {
        if assignment.value(v).is_some() {
            return None;
        }
        match (pos[v], neg[v]) {
            (true, false) => Some(PropLit::pos(v)),
            (false, true) => Some(PropLit::neg(v)),
            _ => None,
        }
    })
}

/// Recursive DPLL. When `use_pure` is false the pure-literal rule is
/// skipped (required for model *enumeration*, where asserting a pure
/// literal would silently drop models with the opposite polarity).
pub(crate) fn search(
    formula: &CnfFormula,
    assignment: &mut Assignment,
    use_pure: bool,
) -> bool {
    match status(formula, assignment) {
        Status::Satisfied => return true,
        Status::Conflict => return false,
        Status::Open(Some(unit)) => {
            assignment.assign(unit.var, unit.positive);
            if search(formula, assignment, use_pure) {
                return true;
            }
            assignment.unassign(unit.var);
            return false;
        }
        Status::Open(None) => {}
    }

    if use_pure {
        if let Some(pure) = pure_literal(formula, assignment) {
            assignment.assign(pure.var, pure.positive);
            if search(formula, assignment, use_pure) {
                return true;
            }
            assignment.unassign(pure.var);
            return false;
        }
    }

    let var = assignment
        .first_unassigned()
        .expect("open status implies an unassigned variable");
    for value in [true, false] {
        assignment.assign(var, value);
        if search(formula, assignment, use_pure) {
            return true;
        }
        assignment.unassign(var);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pl(v: i32) -> PropLit {
        if v >= 0 {
            PropLit::pos(v as usize)
        } else {
            PropLit::neg((-v - 1) as usize)
        }
    }

    /// Encodes DIMACS-like literals: 1 = x0, -1 = ¬x0, 2 = x1, ...
    fn formula(num_vars: usize, clauses: &[&[i32]]) -> CnfFormula {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(c.iter().map(|&v| {
                if v > 0 {
                    PropLit::pos((v - 1) as usize)
                } else {
                    PropLit::neg((-v - 1) as usize)
                }
            }));
        }
        f
    }

    #[test]
    fn trivial_cases() {
        assert!(solve(&CnfFormula::new(0)).is_some());
        assert!(solve(&CnfFormula::new(3)).is_some());
        let mut f = CnfFormula::new(1);
        f.add_clause([]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn simple_sat_and_unsat() {
        let f = formula(2, &[&[1, 2], &[-1, 2], &[1, -2]]);
        let m = solve(&f).expect("satisfiable");
        assert!(f.eval(&m));
        let g = formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        // x0, x0 -> x1, x1 -> x2, x2 -> ¬x3
        let f = formula(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, -4]]);
        let m = solve(&f).unwrap();
        assert_eq!(&m[..4], &[true, true, true, false]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j, vars 0..6 as i*2+j.
        let mut f = CnfFormula::new(6);
        for i in 0..3 {
            f.add_clause([PropLit::pos(i * 2), PropLit::pos(i * 2 + 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    f.add_clause([PropLit::neg(i1 * 2 + j), PropLit::neg(i2 * 2 + j)]);
                }
            }
        }
        assert!(solve(&f).is_none());
    }

    #[test]
    fn pl_helper_sanity() {
        assert_eq!(pl(0), PropLit::pos(0));
        assert_eq!(pl(-1), PropLit::neg(0));
    }

    /// Random 3-CNF instances: DPLL must agree with truth-table search.
    fn arb_cnf() -> impl Strategy<Value = CnfFormula> {
        let clause = proptest::collection::vec((-4i32..=4).prop_filter("nonzero", |v| *v != 0), 1..4);
        proptest::collection::vec(clause, 0..12).prop_map(|clauses| {
            let mut f = CnfFormula::new(4);
            for c in clauses {
                f.add_clause(c.iter().map(|&v| {
                    if v > 0 {
                        PropLit::pos((v - 1) as usize)
                    } else {
                        PropLit::neg((-v - 1) as usize)
                    }
                }));
            }
            f
        })
    }

    fn truth_table_sat(f: &CnfFormula) -> bool {
        let n = f.num_vars();
        (0..1u32 << n).any(|bits| {
            let model: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            f.eval(&model)
        })
    }

    proptest! {
        #[test]
        fn prop_dpll_matches_truth_table(f in arb_cnf()) {
            let dpll = solve(&f);
            prop_assert_eq!(dpll.is_some(), truth_table_sat(&f));
            if let Some(m) = dpll {
                prop_assert!(f.eval(&m));
            }
        }
    }
}
