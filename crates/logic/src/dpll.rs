//! A DPLL satisfiability solver with watched-literal unit propagation and
//! pure-literal elimination.
//!
//! Unit propagation goes through the two-watched-literal engine in
//! [`crate::watch`], so a clause is only touched when one of its two
//! watched literals is falsified — no per-node rescan of the formula.
//! The pure-literal rule uses literal-occurrence lists precomputed once
//! per solve, with its scratch buffer hoisted into the search state
//! instead of reallocated at every node.

use crate::assignment::Assignment;
use crate::cnf::{CnfFormula, PropLit, PropVar};
use crate::counters::{count_decision, count_guided_solve};
use crate::watch::{unwind, Watcher};

/// Decides satisfiability; returns a total satisfying model if one exists.
#[must_use]
pub fn solve(formula: &CnfFormula) -> Option<Vec<bool>> {
    let mut assignment = Assignment::new(formula.num_vars());
    let mut state = SearchState::new(formula);
    if state.engine.has_empty_clause() {
        return None;
    }
    let mut trail = Vec::new();
    if !state.engine.propagate_initial(formula, &mut assignment, &mut trail) {
        return None;
    }
    if search(&mut state, &mut assignment, &mut trail, true) {
        let model = assignment.to_model();
        debug_assert!(formula.eval(&model));
        Some(model)
    } else {
        None
    }
}

/// Weight-guided DPLL: decides satisfiability like [`solve`], but the
/// branching heuristic is an *objective*. At every decision the search
/// branches on the unassigned variable with the largest `|weights[v]|`
/// (ties break toward the lowest index) and tries the polarity the sign
/// of the weight favors first: `true` when `weights[v] > 0`, else
/// `false`. Zero-weight variables therefore default to `false`-first,
/// which steers the search toward set-minimal models.
///
/// The pure-literal rule is disabled, so the returned model is a
/// deterministic function of `(formula, weights)` alone — the property
/// the column-generation pricing oracle in `car-core` relies on for
/// reproducible working sets. Each call bumps the `guided_solves`
/// counter of [`crate::search_counters`].
///
/// # Panics
/// Panics if `weights.len() != formula.num_vars()`.
#[must_use]
pub fn solve_guided(formula: &CnfFormula, weights: &[i64]) -> Option<Vec<bool>> {
    assert_eq!(
        weights.len(),
        formula.num_vars(),
        "one weight per propositional variable"
    );
    count_guided_solve();
    let mut assignment = Assignment::new(formula.num_vars());
    let mut state = SearchState::new(formula);
    if state.engine.has_empty_clause() {
        return None;
    }
    let mut trail = Vec::new();
    if !state.engine.propagate_initial(formula, &mut assignment, &mut trail) {
        return None;
    }
    if search_guided(&mut state, &mut assignment, &mut trail, weights) {
        let model = assignment.to_model();
        debug_assert!(formula.eval(&model));
        Some(model)
    } else {
        None
    }
}

/// The recursive core of [`solve_guided`]: identical control flow to
/// [`search`] with `use_pure = false`, except for the weight-driven
/// variable and polarity selection.
fn search_guided(
    state: &mut SearchState<'_>,
    assignment: &mut Assignment,
    trail: &mut Vec<PropVar>,
    weights: &[i64],
) -> bool {
    if trail.len() == assignment.len() {
        return true;
    }

    let var = (0..assignment.len())
        .filter(|&v| assignment.value(v).is_none())
        .max_by_key(|&v| (weights[v].unsigned_abs(), std::cmp::Reverse(v)))
        .expect("partial assignment has an unassigned variable");
    let preferred = weights[var] > 0;
    for value in [preferred, !preferred] {
        count_decision();
        let mark = trail.len();
        let lit = PropLit { var, positive: value };
        if state.engine.assign_and_propagate(state.formula, assignment, lit, trail)
            && search_guided(state, assignment, trail, weights)
        {
            return true;
        }
        unwind(assignment, trail, mark);
    }
    false
}

/// Per-solve search state: the watch engine, the occurrence lists used by
/// the pure-literal rule, and its reusable scratch buffer.
pub(crate) struct SearchState<'f> {
    formula: &'f CnfFormula,
    pub(crate) engine: Watcher,
    /// Per variable, the clauses containing its positive literal.
    occ_pos: Vec<Vec<u32>>,
    /// Per variable, the clauses containing its negative literal.
    occ_neg: Vec<Vec<u32>>,
    /// Scratch: per clause, whether it is satisfied under the current
    /// assignment (recomputed per pure-literal query, never reallocated).
    clause_sat: Vec<bool>,
}

impl<'f> SearchState<'f> {
    pub(crate) fn new(formula: &'f CnfFormula) -> SearchState<'f> {
        let n = formula.num_vars();
        let mut occ_pos = vec![Vec::new(); n];
        let mut occ_neg = vec![Vec::new(); n];
        for (ci, clause) in formula.clauses().iter().enumerate() {
            for &lit in &clause.literals {
                let occ = if lit.positive { &mut occ_pos } else { &mut occ_neg };
                // Skip duplicate entries from repeated literals.
                if occ[lit.var].last() != Some(&(ci as u32)) {
                    occ[lit.var].push(ci as u32);
                }
            }
        }
        SearchState {
            formula,
            engine: Watcher::new(formula),
            occ_pos,
            occ_neg,
            clause_sat: vec![false; formula.clauses().len()],
        }
    }

    /// Finds a literal occurring with only one polarity among the clauses
    /// not yet satisfied (a *pure* literal, safe to assert).
    fn pure_literal(&mut self, assignment: &Assignment) -> Option<PropLit> {
        for (ci, clause) in self.formula.clauses().iter().enumerate() {
            self.clause_sat[ci] = clause
                .literals
                .iter()
                .any(|&l| assignment.lit_value(l) == Some(true));
        }
        (0..assignment.len()).find_map(|v| {
            if assignment.value(v).is_some() {
                return None;
            }
            let live = |occ: &[u32]| occ.iter().any(|&ci| !self.clause_sat[ci as usize]);
            match (live(&self.occ_pos[v]), live(&self.occ_neg[v])) {
                (true, false) => Some(PropLit::pos(v)),
                (false, true) => Some(PropLit::neg(v)),
                _ => None,
            }
        })
    }
}

/// Recursive DPLL over the propagation fixpoint. When `use_pure` is false
/// the pure-literal rule is skipped (required for model *enumeration*,
/// where asserting a pure literal would silently drop models with the
/// opposite polarity).
///
/// Invariant on entry: unit propagation is at fixpoint and conflict-free
/// (callers only recurse after a successful `assign_and_propagate`).
pub(crate) fn search(
    state: &mut SearchState<'_>,
    assignment: &mut Assignment,
    trail: &mut Vec<PropVar>,
    use_pure: bool,
) -> bool {
    // All assignments flow through the trail, so totality is O(1).
    if trail.len() == assignment.len() {
        return true;
    }

    if use_pure {
        if let Some(pure) = state.pure_literal(assignment) {
            // A pure literal never falsifies a clause, so if the subtree
            // fails the formula is unsatisfiable: no need to flip.
            let mark = trail.len();
            if state.engine.assign_and_propagate(state.formula, assignment, pure, trail)
                && search(state, assignment, trail, use_pure)
            {
                return true;
            }
            unwind(assignment, trail, mark);
            return false;
        }
    }

    let var = assignment
        .first_unassigned()
        .expect("partial assignment has an unassigned variable");
    for value in [true, false] {
        count_decision();
        let mark = trail.len();
        let lit = PropLit { var, positive: value };
        if state.engine.assign_and_propagate(state.formula, assignment, lit, trail)
            && search(state, assignment, trail, use_pure)
        {
            return true;
        }
        unwind(assignment, trail, mark);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pl(v: i32) -> PropLit {
        if v >= 0 {
            PropLit::pos(v as usize)
        } else {
            PropLit::neg((-v - 1) as usize)
        }
    }

    /// Encodes DIMACS-like literals: 1 = x0, -1 = ¬x0, 2 = x1, ...
    fn formula(num_vars: usize, clauses: &[&[i32]]) -> CnfFormula {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(c.iter().map(|&v| {
                if v > 0 {
                    PropLit::pos((v - 1) as usize)
                } else {
                    PropLit::neg((-v - 1) as usize)
                }
            }));
        }
        f
    }

    #[test]
    fn trivial_cases() {
        assert!(solve(&CnfFormula::new(0)).is_some());
        assert!(solve(&CnfFormula::new(3)).is_some());
        let mut f = CnfFormula::new(1);
        f.add_clause([]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn simple_sat_and_unsat() {
        let f = formula(2, &[&[1, 2], &[-1, 2], &[1, -2]]);
        let m = solve(&f).expect("satisfiable");
        assert!(f.eval(&m));
        let g = formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        // x0, x0 -> x1, x1 -> x2, x2 -> ¬x3
        let f = formula(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, -4]]);
        let m = solve(&f).unwrap();
        assert_eq!(&m[..4], &[true, true, true, false]);
    }

    #[test]
    fn conflicting_unit_clauses() {
        let f = formula(2, &[&[1], &[-1]]);
        assert!(solve(&f).is_none());
        let g = formula(2, &[&[1], &[1]]);
        assert!(solve(&g).is_some());
    }

    #[test]
    fn duplicate_literals_in_a_clause() {
        let f = formula(2, &[&[1, 1], &[-1, -1, 2]]);
        let m = solve(&f).unwrap();
        assert_eq!(&m[..2], &[true, true]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j, vars 0..6 as i*2+j.
        let mut f = CnfFormula::new(6);
        for i in 0..3 {
            f.add_clause([PropLit::pos(i * 2), PropLit::pos(i * 2 + 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    f.add_clause([PropLit::neg(i1 * 2 + j), PropLit::neg(i2 * 2 + j)]);
                }
            }
        }
        assert!(solve(&f).is_none());
    }

    #[test]
    fn guided_agrees_with_plain_solve_on_satisfiability() {
        let cases = [
            formula(2, &[&[1, 2], &[-1, 2], &[1, -2]]),
            formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]),
            formula(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, -4]]),
        ];
        for f in &cases {
            for weights in [vec![0i64; f.num_vars()], (0..f.num_vars() as i64).collect()] {
                let guided = solve_guided(f, &weights);
                assert_eq!(guided.is_some(), solve(f).is_some());
                if let Some(m) = guided {
                    assert!(f.eval(&m));
                }
            }
        }
    }

    #[test]
    fn guided_polarity_follows_weight_sign() {
        // Unconstrained variables: the model is dictated by the weights.
        let f = CnfFormula::new(3);
        assert_eq!(solve_guided(&f, &[5, -3, 0]), Some(vec![true, false, false]));
        assert_eq!(solve_guided(&f, &[-1, 2, 7]), Some(vec![false, true, true]));
    }

    #[test]
    fn guided_zero_weights_yield_minimal_model() {
        // x0 ∨ x1, with false-first defaults: the all-false branch fails,
        // and the search settles on the lexicographically minimal model
        // under false-before-true exploration.
        let f = formula(2, &[&[1, 2]]);
        let m = solve_guided(&f, &[0, 0]).unwrap();
        assert!(f.eval(&m));
        assert_eq!(m, vec![false, true]);
    }

    #[test]
    fn guided_counts_calls() {
        let f = CnfFormula::new(1);
        let before = crate::search_counters().guided_solves;
        let _ = solve_guided(&f, &[0]);
        let _ = solve_guided(&f, &[1]);
        assert_eq!(crate::search_counters().guided_solves, before + 2);
    }

    #[test]
    #[should_panic(expected = "one weight per propositional variable")]
    fn guided_rejects_mismatched_weights() {
        let _ = solve_guided(&CnfFormula::new(2), &[0]);
    }

    #[test]
    fn pl_helper_sanity() {
        assert_eq!(pl(0), PropLit::pos(0));
        assert_eq!(pl(-1), PropLit::neg(0));
    }

    /// Random 3-CNF instances: DPLL must agree with truth-table search.
    fn arb_cnf() -> impl Strategy<Value = CnfFormula> {
        let clause = proptest::collection::vec((-4i32..=4).prop_filter("nonzero", |v| *v != 0), 1..4);
        proptest::collection::vec(clause, 0..12).prop_map(|clauses| {
            let mut f = CnfFormula::new(4);
            for c in clauses {
                f.add_clause(c.iter().map(|&v| {
                    if v > 0 {
                        PropLit::pos((v - 1) as usize)
                    } else {
                        PropLit::neg((-v - 1) as usize)
                    }
                }));
            }
            f
        })
    }

    fn truth_table_sat(f: &CnfFormula) -> bool {
        let n = f.num_vars();
        (0..1u32 << n).any(|bits| {
            let model: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            f.eval(&model)
        })
    }

    proptest! {
        #[test]
        fn prop_dpll_matches_truth_table(f in arb_cnf()) {
            let dpll = solve(&f);
            prop_assert_eq!(dpll.is_some(), truth_table_sat(&f));
            if let Some(m) = dpll {
                prop_assert!(f.eval(&m));
            }
        }
    }
}
