//! Two-watched-literal unit propagation.
//!
//! Shared propagation engine of the DPLL solver ([`crate::dpll`]) and the
//! AllSAT enumerator ([`crate::allsat`]). Instead of rescanning every
//! clause per search node, each clause with two or more literals watches
//! two of them; a clause is only inspected when one of its watched
//! literals becomes false. Watches are never rewound on backtracking:
//! a watch only moves to a literal that is non-false at move time, so
//! undoing assignments can only make watched literals "more unassigned",
//! preserving the invariant that a falsified watch has been processed.
//!
//! Propagation discovers exactly the unit-propagation fixpoint of the
//! naive per-node rescan, and conflicts prune exactly the same subtrees,
//! so the search tree — and therefore the AllSAT emission order that
//! `car-core`'s cluster-splice cache depends on — is unchanged.

use crate::assignment::Assignment;
use crate::cnf::{CnfFormula, PropLit, PropVar};
use crate::counters::{count_conflict, count_propagations};

/// Index of a literal in watch lists: `2 * var + polarity`.
#[inline]
fn code(lit: PropLit) -> usize {
    lit.var * 2 + usize::from(lit.positive)
}

/// Watch state for one formula.
pub(crate) struct Watcher {
    /// Per literal code, the clauses currently watching that literal.
    watch_lists: Vec<Vec<u32>>,
    /// Per clause, its two watched literals (unused for clauses with
    /// fewer than two literals).
    watched: Vec<[PropLit; 2]>,
    /// Literals of the input unit clauses, to assert at the root.
    unit_clauses: Vec<PropLit>,
    /// `true` iff some input clause is empty (trivially unsatisfiable).
    has_empty_clause: bool,
}

impl Watcher {
    pub fn new(formula: &CnfFormula) -> Watcher {
        let mut w = Watcher {
            watch_lists: vec![Vec::new(); formula.num_vars() * 2],
            watched: vec![[PropLit::pos(0); 2]; formula.clauses().len()],
            unit_clauses: Vec::new(),
            has_empty_clause: false,
        };
        for (ci, clause) in formula.clauses().iter().enumerate() {
            match clause.literals.as_slice() {
                [] => w.has_empty_clause = true,
                [lit] => w.unit_clauses.push(*lit),
                [a, b, ..] => {
                    w.watched[ci] = [*a, *b];
                    w.watch_lists[code(*a)].push(ci as u32);
                    w.watch_lists[code(*b)].push(ci as u32);
                }
            }
        }
        w
    }

    pub fn has_empty_clause(&self) -> bool {
        self.has_empty_clause
    }

    /// Asserts the input unit clauses and propagates to fixpoint,
    /// recording assignments on `trail`. Returns `false` on conflict
    /// (the caller unwinds via the trail).
    pub fn propagate_initial(
        &mut self,
        formula: &CnfFormula,
        assignment: &mut Assignment,
        trail: &mut Vec<PropVar>,
    ) -> bool {
        let units = std::mem::take(&mut self.unit_clauses);
        for lit in &units {
            match assignment.lit_value(*lit) {
                Some(true) => {}
                Some(false) => {
                    count_conflict();
                    self.unit_clauses = units;
                    return false;
                }
                None => {
                    count_propagations(1);
                    if !self.assign_and_propagate(formula, assignment, *lit, trail) {
                        self.unit_clauses = units;
                        return false;
                    }
                }
            }
        }
        self.unit_clauses = units;
        true
    }

    /// Assigns `lit` true and propagates units to fixpoint. Every
    /// assignment made (including `lit` itself) is pushed on `trail`.
    /// Returns `false` on conflict; the caller restores the assignment
    /// by unassigning trail entries beyond its mark.
    pub fn assign_and_propagate(
        &mut self,
        formula: &CnfFormula,
        assignment: &mut Assignment,
        lit: PropLit,
        trail: &mut Vec<PropVar>,
    ) -> bool {
        debug_assert!(assignment.value(lit.var).is_none());
        let mut head = trail.len();
        assignment.assign(lit.var, lit.positive);
        trail.push(lit.var);
        while head < trail.len() {
            let var = trail[head];
            head += 1;
            let value = assignment.value(var).expect("trail entries are assigned");
            // The literal that just became false.
            let false_lit = PropLit { var, positive: !value };
            let fcode = code(false_lit);
            let mut i = 0;
            while i < self.watch_lists[fcode].len() {
                let ci = self.watch_lists[fcode][i] as usize;
                let [w0, w1] = self.watched[ci];
                let other = if w0 == false_lit { w1 } else { w0 };
                if assignment.lit_value(other) == Some(true) {
                    // Clause already satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a non-false replacement watch.
                let clause = &formula.clauses()[ci];
                let replacement = clause.literals.iter().copied().find(|&cand| {
                    cand != other
                        && cand != false_lit
                        && assignment.lit_value(cand) != Some(false)
                });
                if let Some(cand) = replacement {
                    self.watched[ci] = [other, cand];
                    self.watch_lists[code(cand)].push(ci as u32);
                    self.watch_lists[fcode].swap_remove(i);
                    continue;
                }
                match assignment.lit_value(other) {
                    // `other` false (or the clause is a duplicated single
                    // literal): every literal is false.
                    Some(_) => {
                        count_conflict();
                        return false;
                    }
                    None => {
                        // Unit: `other` is forced.
                        count_propagations(1);
                        assignment.assign(other.var, other.positive);
                        trail.push(other.var);
                        i += 1;
                    }
                }
            }
        }
        true
    }
}

/// Unassigns every trail entry beyond `mark`.
pub(crate) fn unwind(assignment: &mut Assignment, trail: &mut Vec<PropVar>, mark: usize) {
    while trail.len() > mark {
        let var = trail.pop().expect("trail longer than mark");
        assignment.unassign(var);
    }
}
