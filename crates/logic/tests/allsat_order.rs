//! Pins the AllSAT emission order of [`car_logic::for_each_model`].
//!
//! The order — lexicographic in the model vector with `true` explored
//! before `false` on each variable — is a load-bearing contract:
//! `car-core`'s parallel cube splitting concatenates per-cube transcripts
//! assuming it, and the incremental cluster-splice cache replays cached
//! model prefixes positionally. Any propagation-engine change that
//! reorders emission would corrupt both. These tests fail on the first
//! such reordering.

use car_logic::{for_each_model, CnfFormula, PropLit};
use proptest::prelude::*;

fn collect_models(f: &CnfFormula) -> Vec<Vec<bool>> {
    let mut models = Vec::new();
    for_each_model(f, |m| {
        models.push(m.to_vec());
        true
    });
    models
}

/// The contract's comparison key: `true` sorts before `false`.
fn order_key(model: &[bool]) -> Vec<u8> {
    model.iter().map(|&b| u8::from(!b)).collect()
}

/// Brute-force model list in the contract order.
fn brute_force_ordered(f: &CnfFormula) -> Vec<Vec<bool>> {
    let n = f.num_vars();
    let mut models: Vec<Vec<bool>> = (0..1u32 << n)
        .map(|bits| (0..n).map(|i| bits & (1 << i) != 0).collect::<Vec<bool>>())
        .filter(|m| f.eval(m))
        .collect();
    models.sort_by_key(|m| order_key(m));
    models
}

#[test]
fn free_variables_enumerate_true_first_lexicographically() {
    let f = CnfFormula::new(2);
    assert_eq!(
        collect_models(&f),
        vec![
            vec![true, true],
            vec![true, false],
            vec![false, true],
            vec![false, false],
        ]
    );
}

#[test]
fn exactly_one_emits_in_pinned_order() {
    // (x0 ∨ x1 ∨ x2) with pairwise exclusions: the witness orders are
    // exactly {x0}, {x1}, {x2}.
    let mut f = CnfFormula::new(3);
    f.add_clause([PropLit::pos(0), PropLit::pos(1), PropLit::pos(2)]);
    for i in 0..3 {
        for j in (i + 1)..3 {
            f.add_clause([PropLit::neg(i), PropLit::neg(j)]);
        }
    }
    assert_eq!(
        collect_models(&f),
        vec![
            vec![true, false, false],
            vec![false, true, false],
            vec![false, false, true],
        ]
    );
}

#[test]
fn unit_chain_does_not_disturb_order_of_free_suffix() {
    // x0 forced true, x1 forced false, x2/x3 free.
    let mut f = CnfFormula::new(4);
    f.add_clause([PropLit::pos(0)]);
    f.add_clause([PropLit::neg(0), PropLit::neg(1)]);
    assert_eq!(
        collect_models(&f),
        vec![
            vec![true, false, true, true],
            vec![true, false, true, false],
            vec![true, false, false, true],
            vec![true, false, false, false],
        ]
    );
}

proptest! {
    /// On random CNF, emission order equals the brute-force list sorted
    /// by the contract key — i.e. propagation never reorders emission.
    #[test]
    fn prop_emission_order_is_lexicographic(
        clauses in proptest::collection::vec(
            proptest::collection::vec(
                (-5i32..=5).prop_filter("nonzero", |v| *v != 0),
                1..4,
            ),
            0..12,
        ),
    ) {
        let mut f = CnfFormula::new(5);
        for c in clauses {
            f.add_clause(c.iter().map(|&v| {
                if v > 0 {
                    PropLit::pos((v - 1) as usize)
                } else {
                    PropLit::neg((-v - 1) as usize)
                }
            }));
        }
        prop_assert_eq!(collect_models(&f), brute_force_ordered(&f));
    }
}
