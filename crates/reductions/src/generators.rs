//! Workload generators for the benchmark harness.
//!
//! Each generator produces a family of schemas parameterized by size,
//! covering the regimes the paper's complexity analysis distinguishes:
//!
//! * [`clustered_schema`] — category β of §4.3: independent clusters,
//!   where preselection + cluster decomposition is polynomial;
//! * [`dense_schema`] — category α: unions crossing the whole alphabet,
//!   where the expansion is necessarily exponential;
//! * [`hierarchy_schema`] — generalization hierarchies of §4.4 (balanced
//!   trees with explicit sibling disjointness);
//! * [`kary_schema`] — one K-ary relation with unit role-clauses, the
//!   Theorem 4.5 regime;
//! * [`ratio_chain_schema`] — attribute chains whose cardinality bounds
//!   force geometric population growth, stressing phase 2 (the linear
//!   disequations) while phase 1 stays trivial;
//! * [`random_schema`] — seeded random schemas for oracle agreement
//!   testing (small alphabets, small bounds).

use car_core::syntax::{Card, ClassFormula, RoleClause, RoleLiteral, SchemaBuilder};
use car_core::{AttRef, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k` independent clusters of `size` classes each: within a cluster,
/// class `i+1` isa class `i`, and the cluster's leaf carries an attribute
/// bound into the cluster root. Clusters never reference each other.
#[must_use]
pub fn clustered_schema(clusters: usize, size: usize) -> Schema {
    assert!(size >= 1);
    let mut b = SchemaBuilder::new();
    for c in 0..clusters {
        let ids: Vec<_> = (0..size).map(|i| b.class(&format!("K{c}_{i}"))).collect();
        for i in 1..size {
            b.define_class(ids[i]).isa(ClassFormula::class(ids[i - 1])).finish();
        }
        let att = b.attribute(&format!("f{c}"));
        b.define_class(ids[0])
            .attr(AttRef::Direct(att), Card::new(1, 2), ClassFormula::class(ids[size - 1]))
            .finish();
    }
    b.build().expect("generator produces valid schemas")
}

/// A category-α schema: `n` classes, every class's isa contains a clause
/// `C_0 ∨ C_1 ∨ … ∨ C_{n-1}` (everything may co-occur with everything),
/// so no disjointness can be assumed and the expansion is necessarily
/// exponential in `n`. Deliberately free of cardinality constraints:
/// category α measures phase-1 enumeration cost, and any attribute over
/// these fully-overlapping classes would square the already-exponential
/// unknown count.
#[must_use]
pub fn dense_schema(n: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.class(&format!("D{i}"))).collect();
    for &id in &ids {
        // A clause over all classes: satisfied by any nonempty compound
        // class, so it prunes nothing — the worst case for enumeration.
        let all = ClassFormula::union_of(ids.iter().copied());
        b.define_class(id).isa(all).finish();
    }
    b.build().expect("generator produces valid schemas")
}

/// A balanced generalization hierarchy: a tree of the given `depth` and
/// `branching` factor (depth 0 = a single root) with explicit pairwise
/// sibling disjointness — the §4.4 polynomial case. Total classes:
/// `(branching^(depth+1) - 1) / (branching - 1)` for `branching > 1`.
#[must_use]
pub fn hierarchy_schema(depth: usize, branching: usize) -> Schema {
    assert!(branching >= 1);
    let mut b = SchemaBuilder::new();
    let root = b.class("N");
    b.define_class(root).finish();
    let mut frontier = vec![(root, "N".to_owned())];
    for _ in 0..depth {
        let mut next = Vec::new();
        for (parent, name) in frontier {
            let children: Vec<_> = (0..branching)
                .map(|k| {
                    let child_name = format!("{name}_{k}");
                    (b.class(&child_name), child_name)
                })
                .collect();
            for (k, (child, _)) in children.iter().enumerate() {
                let mut isa = ClassFormula::class(parent);
                for (other, _) in &children[..k] {
                    isa = isa.and(ClassFormula::neg_class(*other));
                }
                b.define_class(*child).isa(isa).finish();
            }
            next.extend(children);
        }
        frontier = next;
    }
    b.build().expect("generator produces valid schemas")
}

/// One `K`-ary relation with unit role-clauses typing each role with its
/// own class, and a participation constraint on the first role — the
/// Theorem 4.5 regime. The filler classes are pairwise disjoint;
/// `extra_free_classes` adds unconstrained classes that may co-occur
/// with every filler, so each role has `2^extra` candidate compound
/// classes and the direct expansion carries `2^(extra·K)` compound
/// relations — the `|C̄|^K` blow-up of §4.2, with a controllable base.
#[must_use]
pub fn kary_schema(arity: usize, extra_free_classes: usize) -> Schema {
    assert!(arity >= 2);
    let mut b = SchemaBuilder::new();
    let role_names: Vec<String> = (0..arity).map(|k| format!("u{k}")).collect();
    let rel = b.relation("R", role_names.iter().map(String::as_str));
    let fillers: Vec<_> = (0..arity).map(|k| b.class(&format!("F{k}"))).collect();
    for (k, &filler) in fillers.iter().enumerate() {
        let role = b.role(&role_names[k]);
        b.relation_constraint(
            rel,
            RoleClause::new(vec![RoleLiteral { role, formula: ClassFormula::class(filler) }]),
        );
    }
    let u0 = b.role("u0");
    for (k, &filler) in fillers.iter().enumerate() {
        let mut cb = b.define_class(filler);
        for &other in &fillers[..k] {
            cb = cb.isa(ClassFormula::neg_class(other));
        }
        if k == 0 {
            cb = cb.participates(rel, u0, Card::new(1, 2));
        }
        cb.finish();
    }
    for e in 0..extra_free_classes {
        b.class(&format!("X{e}"));
    }
    b.build().expect("generator produces valid schemas")
}

/// A chain `C_0 → C_1 → … → C_len` where each `C_i` needs exactly `grow`
/// attribute fillers in `C_{i+1}` and each `C_{i+1}` object serves
/// exactly one predecessor: populations are forced to grow geometrically
/// (`|C_{i+1}| = grow · |C_i|`), producing disequation systems whose
/// solutions have large values — a phase-2 stress test with a trivial
/// phase 1 (the chain is a hierarchy-free, disjoint family).
#[must_use]
pub fn ratio_chain_schema(len: usize, grow: u64) -> Schema {
    let mut b = SchemaBuilder::new();
    let ids: Vec<_> = (0..=len).map(|i| b.class(&format!("C{i}"))).collect();
    let atts: Vec<_> = (0..len).map(|i| b.attribute(&format!("f{i}"))).collect();
    for i in 0..=len {
        let mut cb = b.define_class(ids[i]);
        if i < len {
            // Forward edge: each C_i object has exactly `grow` fillers.
            cb = cb.attr(
                AttRef::Direct(atts[i]),
                Card::exactly(grow),
                ClassFormula::class(ids[i + 1]),
            );
        }
        if i > 0 {
            // The inverse pins the ratio exactly, and the negative
            // literal keeps chain classes pairwise disjoint so each is
            // its own compound class.
            cb = cb
                .attr(
                    AttRef::Inverse(atts[i - 1]),
                    Card::exactly(1),
                    ClassFormula::class(ids[i - 1]),
                )
                .isa(ClassFormula::neg_class(ids[i - 1]));
        }
        cb.finish();
    }
    b.build().expect("generator produces valid schemas")
}

/// Parameters for [`random_schema`].
#[derive(Debug, Clone, Copy)]
pub struct RandomSchemaParams {
    /// Number of classes (keep ≤ 5 for oracle comparisons).
    pub classes: usize,
    /// Number of attributes.
    pub attrs: usize,
    /// Number of binary relations.
    pub rels: usize,
    /// Probability that a class gets an isa clause.
    pub isa_density: f64,
    /// Largest cardinality bound generated.
    pub max_bound: u64,
}

impl Default for RandomSchemaParams {
    fn default() -> RandomSchemaParams {
        RandomSchemaParams { classes: 4, attrs: 1, rels: 1, isa_density: 0.6, max_bound: 2 }
    }
}

/// A seeded random schema for oracle agreement testing: random isa
/// clauses (1–2 literals, mixed polarity), random attribute specs with
/// small bounds, random binary relations with unit role-clauses and
/// participations.
#[must_use]
pub fn random_schema(params: &RandomSchemaParams, seed: u64) -> Schema {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..params.classes).map(|i| b.class(&format!("C{i}"))).collect();
    let attrs: Vec<_> = (0..params.attrs).map(|i| b.attribute(&format!("a{i}"))).collect();
    let rels: Vec<_> = (0..params.rels)
        .map(|i| b.relation(&format!("R{i}"), ["u", "v"]))
        .collect();
    let role_u = b.role("u");
    let role_v = b.role("v");

    // Random unit role-clauses.
    for &rel in &rels {
        for role in [role_u, role_v] {
            if rng.gen_bool(0.7) {
                let target = classes[rng.gen_range(0..classes.len())];
                b.relation_constraint(
                    rel,
                    RoleClause::new(vec![RoleLiteral {
                        role,
                        formula: ClassFormula::class(target),
                    }]),
                );
            }
        }
    }

    let rand_card = |rng: &mut StdRng| -> Card {
        let min = rng.gen_range(0..=params.max_bound);
        if rng.gen_bool(0.3) {
            Card::at_least(min)
        } else {
            Card::new(min, rng.gen_range(min..=params.max_bound.max(min)))
        }
    };

    for (i, &class) in classes.iter().enumerate() {
        let mut isa = ClassFormula::top();
        if rng.gen_bool(params.isa_density) {
            let width = rng.gen_range(1..=2usize);
            let mut lits = Vec::new();
            for _ in 0..width {
                let j = rng.gen_range(0..classes.len());
                if j == i {
                    continue;
                }
                let lit = if rng.gen_bool(0.3) {
                    car_core::ClassLiteral::neg(classes[j])
                } else {
                    car_core::ClassLiteral::pos(classes[j])
                };
                lits.push(lit);
            }
            if !lits.is_empty() {
                isa.push_clause(car_core::ClassClause::new(lits));
            }
        }
        let mut cb = b.define_class(class).isa(isa);
        if !attrs.is_empty() && rng.gen_bool(0.5) {
            let att = attrs[rng.gen_range(0..attrs.len())];
            let att_ref = if rng.gen_bool(0.3) {
                AttRef::Inverse(att)
            } else {
                AttRef::Direct(att)
            };
            let ty = if rng.gen_bool(0.7) {
                ClassFormula::class(classes[rng.gen_range(0..classes.len())])
            } else {
                ClassFormula::top()
            };
            cb = cb.attr(att_ref, rand_card(&mut rng), ty);
        }
        if !rels.is_empty() && rng.gen_bool(0.4) {
            let rel = rels[rng.gen_range(0..rels.len())];
            let role = if rng.gen_bool(0.5) { role_u } else { role_v };
            cb = cb.participates(rel, role, rand_card(&mut rng));
        }
        cb.finish();
    }
    b.build().expect("generator produces valid schemas")
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_core::hierarchy;
    use car_core::preselection::Preselection;
    use car_core::reasoner::Reasoner;

    #[test]
    fn clustered_schema_has_expected_clusters() {
        let s = clustered_schema(3, 4);
        assert_eq!(s.num_classes(), 12);
        let p = Preselection::compute(&s);
        assert_eq!(p.clusters().len(), 3);
        let r = Reasoner::new(&s);
        assert!(r.try_is_coherent().unwrap());
    }

    #[test]
    fn dense_schema_resists_clustering() {
        let s = dense_schema(5);
        let p = Preselection::compute(&s);
        assert_eq!(p.clusters().len(), 1);
    }

    #[test]
    fn hierarchy_schema_is_detected_by_fast_path() {
        let s = hierarchy_schema(3, 2);
        assert_eq!(s.num_classes(), 15);
        let h = hierarchy::detect(&s).expect("generator emits detectable hierarchies");
        let ccs = hierarchy::path_closure_ccs(&s, &h);
        assert_eq!(ccs.len(), 15);
        let r = Reasoner::new(&s);
        assert!(r.try_is_coherent().unwrap());
    }

    #[test]
    fn kary_schema_shape() {
        let s = kary_schema(4, 2);
        let rel = s.rel_id("R").unwrap();
        assert_eq!(s.rel_def(rel).arity(), 4);
        assert!(car_core::arity::reducible(&s, rel));
        let r = Reasoner::new(&s);
        assert!(r.is_satisfiable(s.class_id("F0").unwrap()));
    }

    #[test]
    fn ratio_chain_is_satisfiable_and_grows() {
        let s = ratio_chain_schema(4, 2);
        let r = Reasoner::new(&s);
        assert!(r.try_is_coherent().unwrap());
        // The forced growth shows up in the extracted model.
        let model = r.extract_model().unwrap();
        let c0 = s.class_id("C0").unwrap();
        let c4 = s.class_id("C4").unwrap();
        assert_eq!(
            model.class_extension(c4).len(),
            16 * model.class_extension(c0).len()
        );
    }

    #[test]
    fn random_schemas_are_valid_and_deterministic() {
        let params = RandomSchemaParams::default();
        for seed in 0..20 {
            let s1 = random_schema(&params, seed);
            let s2 = random_schema(&params, seed);
            assert_eq!(s1.num_classes(), s2.num_classes());
            // Reasoning terminates without panicking.
            let r = Reasoner::new(&s1);
            let _ = r.try_unsatisfiable_classes().unwrap();
        }
    }
}
