//! The Theorem 4.2 construction: Intersection Pattern reduced to class
//! satisfiability in a union-free, negation-free CAR schema with no
//! relations.
//!
//! **Intersection Pattern** ([GJ79], problem SP9): given a symmetric
//! `n × n` matrix `A` of nonnegative integers, do there exist sets
//! `S_1, …, S_n` with `|S_i ∩ S_j| = A[i][j]` for all `i ≤ j`?
//!
//! ## Construction
//!
//! One anchor class `P` (the class whose satisfiability is queried) pins
//! class sizes relative to `|P|` through a counting gadget: `P` has an
//! attribute with bound `(k, k)` typed `X` and `X` carries the inverse
//! with `(1, 1)`, forcing `|X| = k · |P|`. With classes `S_i` (sizes
//! pinned to `A[i][i]`), and per pair `i < j` two classes
//!
//! * `M_ij ⊑ S_i ⊓ S_j` with `|M_ij| = A[i][j]`, and
//! * `N_ij ⊑ S_i` with `|N_ij| = A[i][i] − A[i][j]`,
//!
//! where `M_ij`, `N_ij` are disjoint from each other and `N_ij` is
//! disjoint from `S_j` — *both disjointnesses expressed through
//! cardinality constraints alone* (one class carries an attribute with
//! bound `(1, 1)`, the other the same attribute with `(0, 0)`; no object
//! can satisfy both), which is exactly the trick the paper's proof sketch
//! points at. Then `|M_ij| + |N_ij| = |S_i|` with `M_ij ⊔ N_ij ⊆ S_i`
//! forces `M_ij ⊔ N_ij = S_i`, so `S_i ∩ S_j = M_ij ∩ S_j = M_ij` and
//! the intersection size is pinned *exactly* — no unions, no negations,
//! no relations.
//!
//! A model with `|P| = k` realizes the scaled pattern `k · A`; scaled
//! realizations divide back into rational realizations of `A`, and the
//! pattern system (a 0/1 type-incidence system) admits an integer
//! realization whenever it admits a rational one, so satisfiability of
//! `P` coincides with realizability of `A` (cross-validated empirically
//! against [`pattern_realizable`]).

use car_core::syntax::{Card, ClassFormula, SchemaBuilder};
use car_core::{AttRef, ClassId, Schema};

/// The encoded schema plus the anchor class.
#[derive(Debug)]
pub struct PatternEncoding {
    /// The union-free, negation-free schema (no relations).
    pub schema: Schema,
    /// Satisfiable iff the pattern is realizable.
    pub anchor: ClassId,
    /// The set classes `S_i`.
    pub sets: Vec<ClassId>,
}

/// Encodes a symmetric pattern matrix. Only the upper triangle
/// (including the diagonal) is read.
///
/// # Panics
/// Panics if the matrix is not square or some `A[i][j] > A[i][i]` /
/// `A[i][j] > A[j][j]` (trivially unrealizable inputs are rejected so the
/// encoding's subtraction `A[i][i] − A[i][j]` stays in range; callers
/// should treat such inputs as "not realizable" directly).
#[must_use]
pub fn encode_pattern(matrix: &[Vec<u64>]) -> PatternEncoding {
    let n = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), n, "pattern matrix must be square");
    }
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                matrix[i][j] <= matrix[i][i] && matrix[i][j] <= matrix[j][j],
                "intersection larger than a set: reject before encoding"
            );
        }
    }

    let mut b = SchemaBuilder::new();
    let anchor = b.class("P");
    let sets: Vec<ClassId> = (0..n).map(|i| b.class(&format!("S{i}"))).collect();

    // Counting gadget bookkeeping: (attribute, counted class, factor k).
    let mut counted: Vec<(car_core::AttrId, ClassId, u64)> = Vec::new();
    for (i, &s_i) in sets.iter().enumerate() {
        let att = b.attribute(&format!("cnt_s{i}"));
        counted.push((att, s_i, matrix[i][i]));
    }

    // Pair gadgets.
    struct PairGadget {
        m: ClassId,
        n_class: ClassId,
        s_i: ClassId,
        s_j: ClassId,
        sep_mn: car_core::AttrId,
        sep_nj: car_core::AttrId,
    }
    let mut gadgets = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let m = b.class(&format!("M_{i}_{j}"));
            let nc = b.class(&format!("N_{i}_{j}"));
            let cm = b.attribute(&format!("cnt_m{i}_{j}"));
            let cn = b.attribute(&format!("cnt_n{i}_{j}"));
            counted.push((cm, m, matrix[i][j]));
            counted.push((cn, nc, matrix[i][i] - matrix[i][j]));
            let sep_mn = b.attribute(&format!("sep_mn_{i}_{j}"));
            let sep_nj = b.attribute(&format!("sep_nj_{i}_{j}"));
            gadgets.push(PairGadget {
                m,
                n_class: nc,
                s_i: sets[i],
                s_j: sets[j],
                sep_mn,
                sep_nj,
            });
        }
    }

    // P: one counting attribute per counted class.
    let mut pb = b.define_class(anchor);
    for &(att, class, k) in &counted {
        pb = pb.attr(AttRef::Direct(att), Card::exactly(k), ClassFormula::class(class));
    }
    pb.finish();

    // Collect all per-class constraints, then emit one definition each.
    #[derive(Default)]
    struct ClassSpec {
        isa: Vec<ClassId>,
        attrs: Vec<(AttRef, Card)>,
    }
    let mut specs: std::collections::BTreeMap<ClassId, ClassSpec> =
        std::collections::BTreeMap::new();
    let mut typed_inverse: Vec<(ClassId, car_core::AttrId)> = Vec::new();

    for &(att, class, _) in &counted {
        // The inverse must be typed with the anchor: each counted object
        // owes its single incoming edge to a `P`-object, which is what
        // pins `|class| = k · |P|`. (Typed `⊤` the edge could come from
        // anywhere and the count gadget would not count.)
        specs
            .entry(class)
            .or_default()
            .attrs
            .push((AttRef::Inverse(att), Card::exactly(1)));
        typed_inverse.push((class, att));
    }
    for g in &gadgets {
        // M ⊑ S_i ⊓ S_j; N ⊑ S_i.
        specs.entry(g.m).or_default().isa.extend([g.s_i, g.s_j]);
        specs.entry(g.n_class).or_default().isa.push(g.s_i);
        // M/N disjoint via cardinalities alone.
        specs
            .entry(g.m)
            .or_default()
            .attrs
            .push((AttRef::Direct(g.sep_mn), Card::exactly(1)));
        specs
            .entry(g.n_class)
            .or_default()
            .attrs
            .push((AttRef::Direct(g.sep_mn), Card::new(0, 0)));
        // N disjoint from S_j the same way.
        specs
            .entry(g.n_class)
            .or_default()
            .attrs
            .push((AttRef::Direct(g.sep_nj), Card::exactly(1)));
        specs
            .entry(g.s_j)
            .or_default()
            .attrs
            .push((AttRef::Direct(g.sep_nj), Card::new(0, 0)));
    }

    for (class, spec) in specs {
        let mut cb = b.define_class(class);
        for sup in spec.isa {
            cb = cb.isa(ClassFormula::class(sup));
        }
        for (att, card) in spec.attrs {
            let ty = if typed_inverse.contains(&(class, att.attr()))
                && matches!(att, AttRef::Inverse(_))
            {
                ClassFormula::class(anchor)
            } else {
                ClassFormula::top()
            };
            cb = cb.attr(att, card, ty);
        }
        cb.finish();
    }

    let schema = b.build().expect("encoder produces a valid schema");
    debug_assert!(schema.is_union_free());
    debug_assert!(schema.is_negation_free());
    debug_assert_eq!(schema.num_rels(), 0);
    PatternEncoding { schema, anchor, sets }
}

/// Ground truth by exhaustive search: is the pattern realizable by sets?
/// Searches nonnegative integer counts per element *type* (subset of
/// `[n]` with at least two members; singleton types are slack for the
/// diagonal) satisfying `Σ_{T ⊇ {i,j}} x_T = A[i][j]`. Exponential in
/// `n`; intended for `n ≤ 4`.
#[must_use]
pub fn pattern_realizable(matrix: &[Vec<u64>]) -> bool {
    let n = matrix.len();
    assert!(n <= 4, "brute-force pattern check supports n <= 4");
    for i in 0..n {
        for j in (i + 1)..n {
            if matrix[i][j] > matrix[i][i] || matrix[i][j] > matrix[j][j] {
                return false;
            }
        }
    }
    let types: Vec<u32> = (1u32..(1 << n)).filter(|t| t.count_ones() >= 2).collect();
    let bound = |t: u32| -> u64 {
        (0..n)
            .filter(|&i| t & (1 << i) != 0)
            .map(|i| matrix[i][i])
            .min()
            .unwrap_or(0)
    };
    let mut counts = vec![0u64; types.len()];
    search(matrix, n, &types, &bound, &mut counts, 0)
}

fn search(
    matrix: &[Vec<u64>],
    n: usize,
    types: &[u32],
    bound: &impl Fn(u32) -> u64,
    counts: &mut Vec<u64>,
    k: usize,
) -> bool {
    if k == types.len() {
        for (i, row) in matrix.iter().enumerate().take(n) {
            for (j, &required) in row.iter().enumerate().take(n).skip(i + 1) {
                let pair_sum: u64 = types
                    .iter()
                    .zip(counts.iter())
                    .filter(|(t, _)| *t & (1 << i) != 0 && *t & (1 << j) != 0)
                    .map(|(_, &c)| c)
                    .sum();
                if pair_sum != required {
                    return false;
                }
            }
            let used: u64 = types
                .iter()
                .zip(counts.iter())
                .filter(|(t, _)| *t & (1 << i) != 0)
                .map(|(_, &c)| c)
                .sum();
            if used > row[i] {
                return false;
            }
        }
        return true;
    }
    for v in 0..=bound(types[k]) {
        counts[k] = v;
        if search(matrix, n, types, bound, counts, k + 1) {
            return true;
        }
    }
    counts[k] = 0;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};

    fn agree(matrix: Vec<Vec<u64>>) {
        let realizable = pattern_realizable(&matrix);
        let trivially_bad = (0..matrix.len()).any(|i| {
            ((i + 1)..matrix.len())
                .any(|j| matrix[i][j] > matrix[i][i] || matrix[i][j] > matrix[j][j])
        });
        if trivially_bad {
            assert!(!realizable);
            return;
        }
        let enc = encode_pattern(&matrix);
        let r = Reasoner::with_config(
            &enc.schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        assert_eq!(
            r.try_is_satisfiable(enc.anchor).unwrap(),
            realizable,
            "matrix {matrix:?}"
        );
    }

    #[test]
    fn realizable_patterns() {
        agree(vec![vec![2]]);
        agree(vec![vec![1, 1], vec![1, 1]]);
        agree(vec![vec![2, 1], vec![1, 3]]);
        agree(vec![vec![2, 0], vec![0, 2]]);
    }

    #[test]
    fn unrealizable_pattern_equal_sets_conflict() {
        // |S1|=|S2|=|S3|=2 with |S1∩S2| = |S2∩S3| = 2 forces
        // S1 = S2 = S3, contradicting |S1∩S3| = 1.
        agree(vec![vec![2, 2, 1], vec![2, 2, 2], vec![1, 2, 2]]);
    }

    #[test]
    fn unrealizable_pattern_triangle() {
        // Singletons: S1 ~ S2 share their element, S2 ~ S3 share theirs,
        // so S1 = S2 = S3 as singletons — but |S1∩S3| = 0. Impossible.
        agree(vec![vec![1, 1, 0], vec![1, 1, 1], vec![0, 1, 1]]);
    }

    #[test]
    fn oversized_intersections_are_rejected() {
        assert!(!pattern_realizable(&[vec![1, 2], vec![2, 1]]));
    }

    #[test]
    fn schema_shape_matches_theorem_4_2() {
        let enc = encode_pattern(&[vec![2, 1], vec![1, 2]]);
        assert!(enc.schema.is_union_free());
        assert!(enc.schema.is_negation_free());
        assert_eq!(enc.schema.num_rels(), 0);
        assert_eq!(enc.sets.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reject before encoding")]
    fn encoder_rejects_oversized_intersections() {
        let _ = encode_pattern(&[vec![1, 2], vec![2, 1]]);
    }
}
