//! # car-reductions — lower-bound constructions and workload generators
//!
//! The executable counterparts of the paper's complexity results, plus
//! the workload generators used by the benchmark harness:
//!
//! * [`turing`] — a deterministic single-tape Turing machine simulator;
//! * [`exptime`] — the Theorem 4.1 construction: TM acceptance (clocked)
//!   reduced to class satisfiability in a schema with only attributes and
//!   `0/1` cardinalities;
//! * [`intersection_pattern`] — the Theorem 4.2 construction: Intersection
//!   Pattern ([GJ79], SP9) reduced to class satisfiability in a
//!   *union-free, negation-free* schema with no relations;
//! * [`generators`] — random/structured schema families for the
//!   experiments in `EXPERIMENTS.md` (category-α dense schemas,
//!   category-β clustered schemas, generalization hierarchies, k-ary
//!   relation families, cardinality-ratio chains).

pub mod exptime;
pub mod generators;
pub mod intersection_pattern;
pub mod turing;

pub use exptime::encode_tm;
pub use intersection_pattern::{encode_pattern, pattern_realizable};
pub use turing::{Move, RunOutcome, TuringMachine};
