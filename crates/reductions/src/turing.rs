//! A deterministic single-tape Turing machine, with a bounded simulator.
//!
//! The substrate for the Theorem 4.1 reduction: the schema encoder in
//! [`crate::exptime`] translates machines of this type, and the simulator
//! provides the ground truth the reduction is validated against.

use std::collections::HashMap;

/// Head movement of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay in place.
    Stay,
}

/// A deterministic single-tape Turing machine over dense state/symbol
/// alphabets `0..states` and `0..symbols`.
///
/// A missing transition halts the machine (accepting iff the current
/// state is the accepting state; reaching the accepting state also halts).
#[derive(Debug, Clone)]
pub struct TuringMachine {
    /// Number of states.
    pub states: usize,
    /// Initial state.
    pub start: usize,
    /// Accepting state (halting).
    pub accept: usize,
    /// Number of tape symbols.
    pub symbols: usize,
    /// The blank symbol.
    pub blank: usize,
    /// `(state, read) -> (state', write, move)`.
    pub delta: HashMap<(usize, usize), (usize, usize, Move)>,
}

/// Result of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached the accepting state within the bounds.
    Accept {
        /// Step at which the accepting state was entered.
        step: usize,
    },
    /// Halted (no transition) in a non-accepting state.
    Reject,
    /// Ran out of time without halting.
    TimeExceeded,
    /// Tried to leave the allotted tape region.
    SpaceExceeded,
}

impl TuringMachine {
    /// Validates internal consistency (indices in range).
    ///
    /// # Panics
    /// Panics on out-of-range states or symbols.
    pub fn validate(&self) {
        assert!(self.start < self.states && self.accept < self.states);
        assert!(self.blank < self.symbols);
        for (&(q, a), &(q2, b, _)) in &self.delta {
            assert!(q < self.states && q2 < self.states);
            assert!(a < self.symbols && b < self.symbols);
        }
    }

    /// Runs the machine on `input` with at most `max_steps` steps over a
    /// tape of `tape_cells` cells (the head starts on cell 0).
    #[must_use]
    pub fn run(&self, input: &[usize], max_steps: usize, tape_cells: usize) -> RunOutcome {
        self.validate();
        assert!(input.len() <= tape_cells, "input longer than tape");
        let mut tape = vec![self.blank; tape_cells];
        tape[..input.len()].copy_from_slice(input);
        let mut state = self.start;
        let mut head: usize = 0;
        if state == self.accept {
            return RunOutcome::Accept { step: 0 };
        }
        for step in 1..=max_steps {
            let Some(&(q2, write, mv)) = self.delta.get(&(state, tape[head])) else {
                return RunOutcome::Reject;
            };
            tape[head] = write;
            state = q2;
            match mv {
                Move::Left => {
                    if head == 0 {
                        return RunOutcome::SpaceExceeded;
                    }
                    head -= 1;
                }
                Move::Right => {
                    if head + 1 == tape_cells {
                        return RunOutcome::SpaceExceeded;
                    }
                    head += 1;
                }
                Move::Stay => {}
            }
            if state == self.accept {
                return RunOutcome::Accept { step };
            }
        }
        RunOutcome::TimeExceeded
    }

    /// A machine that accepts iff the tape starts with an even number of
    /// `1` symbols (symbol alphabet `{0 = blank, 1}`): walks right over
    /// the `1`s flipping a parity state, accepts on blank with even
    /// parity. Handy test machine.
    #[must_use]
    pub fn parity_machine() -> TuringMachine {
        // states: 0 = even (start), 1 = odd, 2 = accept
        let mut delta = HashMap::new();
        delta.insert((0, 1), (1, 1, Move::Right));
        delta.insert((1, 1), (0, 1, Move::Right));
        delta.insert((0, 0), (2, 0, Move::Stay));
        // (1, 0): halt-reject (odd parity on blank)
        TuringMachine { states: 3, start: 0, accept: 2, symbols: 2, blank: 0, delta }
    }

    /// A machine that never halts (loops in place). For rejection tests.
    #[must_use]
    pub fn looper() -> TuringMachine {
        let mut delta = HashMap::new();
        delta.insert((0, 0), (0, 0, Move::Stay));
        delta.insert((0, 1), (0, 1, Move::Stay));
        TuringMachine { states: 2, start: 0, accept: 1, symbols: 2, blank: 0, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_machine_accepts_even_runs_of_ones() {
        let m = TuringMachine::parity_machine();
        assert!(matches!(m.run(&[], 10, 4), RunOutcome::Accept { step: 1 }));
        assert!(matches!(m.run(&[1, 1], 10, 4), RunOutcome::Accept { step: 3 }));
        assert!(matches!(m.run(&[1, 1, 1, 1], 10, 6), RunOutcome::Accept { .. }));
        assert_eq!(m.run(&[1], 10, 4), RunOutcome::Reject);
        assert_eq!(m.run(&[1, 1, 1], 10, 5), RunOutcome::Reject);
    }

    #[test]
    fn looper_exceeds_time() {
        let m = TuringMachine::looper();
        assert_eq!(m.run(&[], 100, 3), RunOutcome::TimeExceeded);
    }

    #[test]
    fn space_bound_is_enforced() {
        // A right-runner on blanks.
        let mut delta = HashMap::new();
        delta.insert((0, 0), (0, 0, Move::Right));
        let m = TuringMachine { states: 2, start: 0, accept: 1, symbols: 1, blank: 0, delta };
        assert_eq!(m.run(&[], 100, 3), RunOutcome::SpaceExceeded);
    }

    #[test]
    fn accept_at_step_zero() {
        let m = TuringMachine {
            states: 1,
            start: 0,
            accept: 0,
            symbols: 1,
            blank: 0,
            delta: HashMap::new(),
        };
        assert!(matches!(m.run(&[], 5, 2), RunOutcome::Accept { step: 0 }));
    }

    #[test]
    #[should_panic(expected = "input longer than tape")]
    fn input_must_fit() {
        let m = TuringMachine::parity_machine();
        let _ = m.run(&[1, 1, 1], 5, 2);
    }
}
