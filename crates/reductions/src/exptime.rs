//! The Theorem 4.1 construction: Turing machine acceptance reduced to
//! class satisfiability.
//!
//! The paper's proof sketch encodes time instants and tape positions with
//! polynomially many classes, uses two attributes (spatial and temporal
//! successor) together with their inverses, and makes the class of the
//! accepting state satisfiable iff the machine accepts. This module is
//! the executable counterpart, *clocked*: the encoder takes explicit time
//! and space bounds `T`, `S` and produces a schema whose designated class
//! is satisfiable iff the machine accepts within those bounds — running
//! it at small sizes validates the construction, which is the reduction's
//! essential property (see `DESIGN.md`, substitution table).
//!
//! ## Construction
//!
//! A `(T+1) × S` grid of **cell classes** `cell_{t,p}`; each cell's
//! content is one of a set of mutually disjoint **variant classes**:
//! either a plain tape symbol `a`, or a head variant `(q, a, tag)` where
//! the tag records how the head arrived (`stayed` / `from-left` /
//! `from-right`) — at `t = 0` the start variant is untagged and pinned to
//! the input configuration. Temporal successor attributes `fut_{t,p}`
//! (with `(inv fut)` exactly-one on the next row, so every object's
//! backward chain is uniquely linked) carry the tape contents forward:
//!
//! * a plain-symbol variant types its future as "same symbol, or a head
//!   arrives on the same symbol";
//! * a head variant with transition `δ(q, a) = (q', b, move)` types its
//!   future as the written symbol `b` (with the head on it for `Stay`),
//!   and, for `Left`/`Right` moves, a diagonal attribute `fl/fr_{t,p}`
//!   typed with arrival variants at the neighbor cell;
//! * every arrival variant carries an inverse-attribute specification
//!   `(1,1)` typed with the union of transitions that could have produced
//!   it — so no head can appear out of thin air, and by determinism the
//!   only justified chain is the machine's actual run.
//!
//! Every cardinality is `0` or `1` and no relation appears, matching the
//! theorem's strengthened statement.

use crate::turing::{Move, TuringMachine};
use car_core::syntax::{Card, ClassClause, ClassFormula, ClassLiteral, SchemaBuilder};
use car_core::{AttRef, ClassId, Schema};

/// The encoded schema plus the designated classes of Theorem 4.1.
#[derive(Debug)]
pub struct TmEncoding {
    /// The CAR schema (attributes only, 0/1 bounds).
    pub schema: Schema,
    /// The accepting-state variant classes, one per grid position and
    /// read symbol: the machine accepts within the bounds iff *some* of
    /// them is satisfiable. (A single disjunctive `Accept` class would
    /// merge every grid cluster of the Theorem 4.6 decomposition into
    /// one; querying the variants individually keeps the clusters — and
    /// hence the reasoning — per-cell.)
    pub accept_classes: Vec<ClassId>,
}

impl TmEncoding {
    /// Theorem 4.1 query: is some accepting-state class satisfiable?
    ///
    /// # Errors
    /// Propagates reasoner resource errors.
    pub fn accepts(
        &self,
        reasoner: &car_core::reasoner::Reasoner<'_>,
    ) -> Result<bool, car_core::reasoner::ReasonerError> {
        for &class in &self.accept_classes {
            if reasoner.try_is_satisfiable(class)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Content variant of one tape cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Variant {
    /// Plain tape symbol, no head.
    Sym(usize),
    /// Head on the cell: state, symbol under the head, arrival tag.
    Head(usize, usize, Tag),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tag {
    /// The `t = 0` head (pinned by the input configuration).
    Initial,
    /// The head stayed on this cell.
    Stayed,
    /// The head moved in from the left neighbor.
    FromLeft,
    /// The head moved in from the right neighbor.
    FromRight,
}

impl Tag {
    fn name(self) -> &'static str {
        match self {
            Tag::Initial => "i",
            Tag::Stayed => "s",
            Tag::FromLeft => "l",
            Tag::FromRight => "r",
        }
    }
}

fn variant_name(t: usize, p: usize, v: Variant) -> String {
    match v {
        Variant::Sym(a) => format!("v_{t}_{p}_s{a}"),
        Variant::Head(q, a, tag) => format!("v_{t}_{p}_h{q}_{a}_{}", tag.name()),
    }
}

/// Encodes `(machine, input)` with time bound `time` and `tape` cells.
///
/// # Panics
/// Panics if the input does not fit the tape or the machine is invalid.
#[must_use]
pub fn encode_tm(
    machine: &TuringMachine,
    input: &[usize],
    time: usize,
    tape: usize,
) -> TmEncoding {
    machine.validate();
    assert!(input.len() <= tape, "input longer than tape");
    assert!(tape >= 1 && time >= 1);

    let mut b = SchemaBuilder::new();

    // The variants available at each row.
    let variants_at = |t: usize| -> Vec<Variant> {
        let mut vs = Vec::new();
        for a in 0..machine.symbols {
            vs.push(Variant::Sym(a));
        }
        for q in 0..machine.states {
            for a in 0..machine.symbols {
                if t == 0 {
                    vs.push(Variant::Head(q, a, Tag::Initial));
                } else {
                    vs.push(Variant::Head(q, a, Tag::Stayed));
                    vs.push(Variant::Head(q, a, Tag::FromLeft));
                    vs.push(Variant::Head(q, a, Tag::FromRight));
                }
            }
        }
        vs
    };

    // Intern every class first.
    let cell = |t: usize, p: usize| format!("cell_{t}_{p}");
    let mut cell_ids = vec![vec![ClassId::from_index(0); tape]; time + 1];
    let mut var_ids: Vec<Vec<Vec<(Variant, ClassId)>>> =
        vec![vec![Vec::new(); tape]; time + 1];
    for t in 0..=time {
        for p in 0..tape {
            cell_ids[t][p] = b.class(&cell(t, p));
            for v in variants_at(t) {
                let id = b.class(&variant_name(t, p, v));
                var_ids[t][p].push((v, id));
            }
        }
    }
    // Attributes.
    let fut = |t: usize, p: usize| format!("fut_{t}_{p}");
    let fr = |t: usize, p: usize| format!("fr_{t}_{p}");
    let fl = |t: usize, p: usize| format!("fl_{t}_{p}");
    let fut_ids: Vec<Vec<_>> = (0..time)
        .map(|t| (0..tape).map(|p| b.attribute(&fut(t, p))).collect::<Vec<_>>())
        .collect();
    let fr_ids: Vec<Vec<_>> = (0..time)
        .map(|t| (0..tape).map(|p| b.attribute(&fr(t, p))).collect::<Vec<_>>())
        .collect();
    let fl_ids: Vec<Vec<_>> = (0..time)
        .map(|t| (0..tape).map(|p| b.attribute(&fl(t, p))).collect::<Vec<_>>())
        .collect();

    let find = |t: usize, p: usize, v: Variant, var_ids: &Vec<Vec<Vec<(Variant, ClassId)>>>| {
        var_ids[t][p]
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, id)| *id)
            .expect("variant interned")
    };

    // Arrival variants at (t+1, ·) caused by transitions out of (q, a).
    let movers_into = |q2: usize, mv: Move| -> Vec<(usize, usize)> {
        machine
            .delta
            .iter()
            .filter(|(&(q, _), &(q2x, _, m))| {
                q != machine.accept && q2x == q2 && m == mv
            })
            .map(|(&(q, a), _)| (q, a))
            .collect()
    };

    // ---- Cell definitions -------------------------------------------
    for t in 0..=time {
        for p in 0..tape {
            let vs = &var_ids[t][p];
            let mut isa = ClassFormula::top();
            // Some variant holds...
            isa.push_clause(ClassClause::new(
                vs.iter().map(|&(_, id)| ClassLiteral::pos(id)).collect(),
            ));
            // ...and at most one (pairwise disjointness).
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    isa.push_clause(ClassClause::new(vec![
                        ClassLiteral::neg(vs[i].1),
                        ClassLiteral::neg(vs[j].1),
                    ]));
                }
            }
            // t = 0: pin to the input configuration.
            if t == 0 {
                let symbol = input.get(p).copied().unwrap_or(machine.blank);
                let pinned = if p == 0 {
                    Variant::Head(machine.start, symbol, Tag::Initial)
                } else {
                    Variant::Sym(symbol)
                };
                isa.push_clause(ClassClause::new(vec![ClassLiteral::pos(find(
                    0, p, pinned, &var_ids,
                ))]));
            }

            let mut cb = b.define_class(cell_ids[t][p]).isa(isa);
            if t < time {
                // Every cell has exactly one temporal successor...
                cb = cb.attr(
                    AttRef::Direct(fut_ids[t][p]),
                    Card::exactly(1),
                    ClassFormula::class(cell_ids[t + 1][p]),
                );
            }
            if t >= 1 {
                // ...and exactly one temporal predecessor, which is what
                // links every object's backward chain uniquely.
                cb = cb.attr(
                    AttRef::Inverse(fut_ids[t - 1][p]),
                    Card::exactly(1),
                    ClassFormula::class(cell_ids[t - 1][p]),
                );
            }
            cb.finish();
        }
    }

    // ---- Variant definitions ----------------------------------------
    for t in 0..=time {
        for p in 0..tape {
            for &(v, id) in &var_ids[t][p] {
                let mut isa = ClassFormula::class(cell_ids[t][p]);
                let mut specs: Vec<(AttRef, ClassFormula)> = Vec::new();
                let mut dead = false;

                match v {
                    Variant::Sym(a) => {
                        if t < time {
                            // Symbol persists; a head may arrive onto it.
                            let mut succ = vec![ClassLiteral::pos(find(
                                t + 1,
                                p,
                                Variant::Sym(a),
                                &var_ids,
                            ))];
                            for q in 0..machine.states {
                                for tag in [Tag::Stayed, Tag::FromLeft, Tag::FromRight] {
                                    succ.push(ClassLiteral::pos(find(
                                        t + 1,
                                        p,
                                        Variant::Head(q, a, tag),
                                        &var_ids,
                                    )));
                                }
                            }
                            specs.push((
                                AttRef::Direct(fut_ids[t][p]),
                                ClassFormula { clauses: vec![ClassClause::new(succ)] },
                            ));
                        }
                    }
                    Variant::Head(q, a, tag) => {
                        // Justification of the arrival (t >= 1 tags).
                        match tag {
                            Tag::Initial => {}
                            Tag::Stayed => {
                                let origins = movers_into(q, Move::Stay);
                                if origins.is_empty() {
                                    dead = true;
                                } else {
                                    let lits = origin_literals(
                                        &origins, t - 1, p, &var_ids, &find,
                                    );
                                    specs.push((
                                        AttRef::Inverse(fut_ids[t - 1][p]),
                                        ClassFormula {
                                            clauses: vec![ClassClause::new(lits)],
                                        },
                                    ));
                                }
                            }
                            Tag::FromLeft => {
                                let origins = movers_into(q, Move::Right);
                                if p == 0 || origins.is_empty() {
                                    dead = true;
                                } else {
                                    let lits = origin_literals(
                                        &origins, t - 1, p - 1, &var_ids, &find,
                                    );
                                    specs.push((
                                        AttRef::Inverse(fr_ids[t - 1][p - 1]),
                                        ClassFormula {
                                            clauses: vec![ClassClause::new(lits)],
                                        },
                                    ));
                                }
                            }
                            Tag::FromRight => {
                                let origins = movers_into(q, Move::Left);
                                if p + 1 >= tape || origins.is_empty() {
                                    dead = true;
                                } else {
                                    let lits = origin_literals(
                                        &origins, t - 1, p + 1, &var_ids, &find,
                                    );
                                    specs.push((
                                        AttRef::Inverse(fl_ids[t - 1][p + 1]),
                                        ClassFormula {
                                            clauses: vec![ClassClause::new(lits)],
                                        },
                                    ));
                                }
                            }
                        }

                        // Forward behavior from the transition function.
                        if !dead && t < time && q != machine.accept {
                            if let Some(&(q2, write, mv)) = machine.delta.get(&(q, a)) {
                                match mv {
                                    Move::Stay => {
                                        specs.push((
                                            AttRef::Direct(fut_ids[t][p]),
                                            ClassFormula::class(find(
                                                t + 1,
                                                p,
                                                Variant::Head(q2, write, Tag::Stayed),
                                                &var_ids,
                                            )),
                                        ));
                                    }
                                    Move::Right => {
                                        if p + 1 >= tape {
                                            dead = true; // off the tape
                                        } else {
                                            specs.push((
                                                AttRef::Direct(fut_ids[t][p]),
                                                ClassFormula::class(find(
                                                    t + 1,
                                                    p,
                                                    Variant::Sym(write),
                                                    &var_ids,
                                                )),
                                            ));
                                            let arrivals = (0..machine.symbols)
                                                .map(|a2| {
                                                    ClassLiteral::pos(find(
                                                        t + 1,
                                                        p + 1,
                                                        Variant::Head(
                                                            q2,
                                                            a2,
                                                            Tag::FromLeft,
                                                        ),
                                                        &var_ids,
                                                    ))
                                                })
                                                .collect();
                                            specs.push((
                                                AttRef::Direct(fr_ids[t][p]),
                                                ClassFormula {
                                                    clauses: vec![ClassClause::new(
                                                        arrivals,
                                                    )],
                                                },
                                            ));
                                        }
                                    }
                                    Move::Left => {
                                        if p == 0 {
                                            dead = true;
                                        } else {
                                            specs.push((
                                                AttRef::Direct(fut_ids[t][p]),
                                                ClassFormula::class(find(
                                                    t + 1,
                                                    p,
                                                    Variant::Sym(write),
                                                    &var_ids,
                                                )),
                                            ));
                                            let arrivals = (0..machine.symbols)
                                                .map(|a2| {
                                                    ClassLiteral::pos(find(
                                                        t + 1,
                                                        p - 1,
                                                        Variant::Head(
                                                            q2,
                                                            a2,
                                                            Tag::FromRight,
                                                        ),
                                                        &var_ids,
                                                    ))
                                                })
                                                .collect();
                                            specs.push((
                                                AttRef::Direct(fl_ids[t][p]),
                                                ClassFormula {
                                                    clauses: vec![ClassClause::new(
                                                        arrivals,
                                                    )],
                                                },
                                            ));
                                        }
                                    }
                                }
                            }
                            // δ undefined: the machine halts; the cell's own
                            // fut spec (from cell_{t,p}) still forces a
                            // successor cell, unconstrained in content.
                        }

                        let _ = tag;
                    }
                }

                if dead {
                    // Unsatisfiable marker: V ⊑ ¬V.
                    isa = isa.and(ClassFormula::neg_class(id));
                }
                let mut cb = b.define_class(id).isa(isa);
                for (att, ty) in specs {
                    cb = cb.attr(att, Card::exactly(1), ty);
                }
                cb.finish();
            }
        }
    }

    // ---- The accepting classes ---------------------------------------
    let mut accept_classes = Vec::new();
    for row in &var_ids {
        for cell_vars in row {
            for &(v, id) in cell_vars {
                if matches!(v, Variant::Head(q, _, _) if q == machine.accept) {
                    accept_classes.push(id);
                }
            }
        }
    }

    let schema = b.build().expect("encoder produces a valid schema");
    TmEncoding { schema, accept_classes }
}

fn origin_literals(
    origins: &[(usize, usize)],
    t: usize,
    p: usize,
    var_ids: &Vec<Vec<Vec<(Variant, ClassId)>>>,
    find: &impl Fn(usize, usize, Variant, &Vec<Vec<Vec<(Variant, ClassId)>>>) -> ClassId,
) -> Vec<ClassLiteral> {
    let mut lits = Vec::new();
    for &(q, a) in origins {
        let tags: &[Tag] = if t == 0 {
            &[Tag::Initial]
        } else {
            &[Tag::Stayed, Tag::FromLeft, Tag::FromRight]
        };
        for &tag in tags {
            lits.push(ClassLiteral::pos(find(t, p, Variant::Head(q, a, tag), var_ids)));
        }
    }
    lits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turing::RunOutcome;
    use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};

    fn reduction_agrees(machine: &TuringMachine, input: &[usize], time: usize, tape: usize) {
        let outcome = machine.run(input, time, tape);
        let accepts = matches!(outcome, RunOutcome::Accept { .. });
        let enc = encode_tm(machine, input, time, tape);
        let reasoner = Reasoner::with_config(
            &enc.schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        assert_eq!(
            enc.accepts(&reasoner).unwrap(),
            accepts,
            "machine outcome {outcome:?} for input {input:?} (T={time}, S={tape})"
        );
    }

    #[test]
    fn accepting_run_makes_accept_satisfiable() {
        // Parity machine on the empty input: accepts at step 1.
        reduction_agrees(&TuringMachine::parity_machine(), &[], 2, 2);
    }

    #[test]
    fn accepting_run_with_movement() {
        // Input [1, 1]: walks right twice, accepts on the blank.
        reduction_agrees(&TuringMachine::parity_machine(), &[1, 1], 3, 3);
    }

    #[test]
    fn rejecting_run_makes_accept_unsatisfiable() {
        // Input [1]: halts in the odd state — rejects.
        reduction_agrees(&TuringMachine::parity_machine(), &[1], 3, 3);
    }

    #[test]
    fn time_bound_cuts_off_acceptance() {
        // Input [1, 1] needs 3 steps; with T = 2 the clocked reduction
        // must report unsatisfiable.
        reduction_agrees(&TuringMachine::parity_machine(), &[1, 1], 2, 3);
    }

    #[test]
    fn looping_machine_never_accepts() {
        reduction_agrees(&TuringMachine::looper(), &[], 3, 2);
    }

    #[test]
    fn schema_uses_only_01_bounds_and_no_relations() {
        let enc = encode_tm(&TuringMachine::parity_machine(), &[1], 2, 2);
        assert_eq!(enc.schema.num_rels(), 0);
        for (_, def) in enc.schema.classes() {
            for spec in &def.attrs {
                assert!(spec.card.min <= 1);
                assert_eq!(spec.card.max, Some(1));
            }
        }
    }

    #[test]
    fn schema_size_is_polynomial_in_bounds() {
        let m = TuringMachine::parity_machine();
        let small = encode_tm(&m, &[], 2, 2).schema.num_classes();
        let large = encode_tm(&m, &[], 4, 4).schema.num_classes();
        // Classes grow ~ linearly with T·S (grid), not exponentially.
        let cells_small = 3 * 2;
        let cells_large = 5 * 4;
        let per_cell_small = small as f64 / cells_small as f64;
        let per_cell_large = large as f64 / cells_large as f64;
        assert!((per_cell_small - per_cell_large).abs() < 4.0);
    }
}
