//! Quick deterministic bench telemetry.
//!
//! Runs scaled-down versions of the headline criterion benches
//! (`phase2_scaling`, `two_phase_vs_brute_force`, `incremental_edits`,
//! plus an AllSAT refutation workload) in a fixed, single-threaded
//! configuration and reports per-workload wall time together with the
//! *deterministic* work counters of each engine: simplex pivots, DPLL
//! propagations/decisions, compound-object counts, LP calls, cluster
//! cache activity.
//!
//! Wall times vary with the host; the counters must not. CI regenerates
//! the telemetry and fails when any counter differs from the committed
//! `BENCH_8.json`, which pins the engines' work profile — including the
//! column-generation pricing economy — without making the build judge
//! wall-clock noise (see `bin/bench_telemetry.rs`).

use car_core::clusters::clustered_ccs;
use car_core::disequations::DisequationSystem;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::incremental::{SchemaDelta, Workspace};
use car_core::preselection::Preselection;
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_core::satisfiability::SatAnalysis;
use car_core::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};
use car_core::Schema;
use car_reductions::generators::{random_schema, ratio_chain_schema, RandomSchemaParams};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// One workload's record: a wall time plus deterministic counters.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload name (matches the criterion bench it is derived from).
    pub name: String,
    /// Best-of-N wall time for the measured section.
    pub wall: Duration,
    /// Deterministic work counters (sorted by name for stable output).
    pub counters: BTreeMap<String, u64>,
}

/// Number of timed repetitions per workload (minimum is reported).
const RUNS: usize = 3;

fn min_time(mut f: impl FnMut()) -> Duration {
    (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// Phase-2 workload: exact simplex over the `ΨS` disequation system of
/// ratio chains (the arithmetic-bound path: every pivot is `Ratio` math).
fn phase2_scaling() -> BenchRecord {
    let mut counters = BTreeMap::new();
    let expansion_of = |schema: &Schema| -> Expansion {
        let pre = Preselection::compute(schema);
        let ccs = clustered_ccs(schema, &pre, usize::MAX).unwrap();
        Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap()
    };
    let schema = ratio_chain_schema(12, 2);
    let expansion = expansion_of(&schema);
    let sys = DisequationSystem::build(&expansion, &[]);
    let analysis = SatAnalysis::run(&expansion);
    counters.insert("unknowns".into(), sys.num_unknowns() as u64);
    counters.insert("disequations".into(), sys.num_disequations() as u64);
    counters.insert("lp_calls".into(), analysis.stats().lp_calls as u64);
    counters.insert("iterations".into(), analysis.stats().iterations as u64);
    counters.insert(
        "compound_classes".into(),
        analysis.stats().num_compound_classes as u64,
    );
    counters.insert("pivots".into(), pivots_of(|| {
        black_box(SatAnalysis::run(&expansion));
    }));

    let wall = min_time(|| {
        black_box(SatAnalysis::run(&expansion));
    });
    BenchRecord { name: "phase2_scaling".into(), wall, counters }
}

/// Two-phase reasoner over small random schemas (AllSAT + LP mix).
fn two_phase_vs_brute_force() -> BenchRecord {
    let params = RandomSchemaParams {
        classes: 3,
        attrs: 1,
        rels: 0,
        isa_density: 0.7,
        max_bound: 2,
    };
    let schemas: Vec<_> = (0..2).map(|seed| random_schema(&params, seed)).collect();
    let run = || {
        let mut unsat = 0u64;
        let mut compound = 0u64;
        for schema in &schemas {
            let r = Reasoner::with_config(
                schema,
                ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
            );
            unsat += r.try_unsatisfiable_classes().unwrap().len() as u64;
            compound += r.try_stats().unwrap().num_compound_classes as u64;
        }
        (unsat, compound)
    };
    let (unsat, compound) = run();
    let mut counters = BTreeMap::new();
    counters.insert("unsat_classes".into(), unsat);
    counters.insert("compound_classes".into(), compound);
    counters.insert("pivots".into(), pivots_of(|| {
        black_box(run());
    }));
    counters.insert("propagations".into(), propagations_of(|| {
        black_box(run());
    }));
    let wall = min_time(|| {
        black_box(run());
    });
    BenchRecord { name: "two_phase_vs_brute_force".into(), wall, counters }
}

/// Pigeonhole blocks per schema for the incremental workload.
const BLOCKS: usize = 10;
/// Holes per block (`HOLES + 1` pigeons; refutation grows factorially).
const HOLES: usize = 4;

fn php_blocks(blocks: usize, holes: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    for c in 0..blocks {
        let root = b.class(&format!("R{c}"));
        let h: Vec<Vec<_>> = (0..holes + 1)
            .map(|i| (0..holes).map(|j| b.class(&format!("H{c}_{i}_{j}"))).collect())
            .collect();
        let mut isa = ClassFormula::top();
        for row in &h {
            isa = isa.and(ClassFormula::union_of(row.iter().copied()));
        }
        b.define_class(root).isa(isa).finish();
        for i in 0..holes + 1 {
            for j in 0..holes {
                let mut f = ClassFormula::class(root);
                for (k, row) in h.iter().enumerate() {
                    if k != i {
                        f = f.and(ClassFormula::neg_class(row[j]));
                    }
                }
                b.define_class(h[i][j]).isa(f).finish();
            }
        }
    }
    b.build().unwrap()
}

/// The `i`-th unique localized edit of block 0 (see the
/// `incremental_edits` bench for why this shape never hits the
/// whole-bundle cache and never changes the cluster decomposition).
fn edit_for(schema: &Schema, i: u64) -> SchemaDelta {
    let mut isa = ClassFormula::top();
    for p in 0..HOLES + 1 {
        isa = isa.and(ClassFormula::union_of(
            (0..HOLES).map(|j| schema.class_id(&format!("H0_{p}_{j}")).unwrap()),
        ));
    }
    let nsub = 3 * HOLES;
    let mask = i % (1u64 << nsub);
    let mut clause: Vec<_> = (0..HOLES)
        .map(|j| schema.class_id(&format!("H0_0_{j}")).unwrap())
        .collect();
    for b in 0..nsub {
        if mask >> b & 1 == 1 {
            let (p, j) = (1 + b / HOLES, b % HOLES);
            clause.push(schema.class_id(&format!("H0_{p}_{j}")).unwrap());
        }
    }
    isa = isa.and(ClassFormula::union_of(clause));
    SchemaDelta::SetIsa { class: "R0".into(), isa }
}

/// Incremental workspace edits vs full rebuild on the DPLL-refutation
/// workload (the propagation-bound path).
fn incremental_edits() -> BenchRecord {
    let config = || ReasonerConfig {
        strategy: Strategy::Preselect,
        ..ReasonerConfig::default()
    };
    let base = php_blocks(BLOCKS, HOLES);
    let edited = {
        let mut ws = Workspace::new(base.clone(), config());
        ws.apply(&edit_for(&base, 0)).unwrap();
        ws.schema().clone()
    };

    let full = min_time(|| {
        let r = Reasoner::with_config(&edited, config());
        black_box(r.try_is_coherent().unwrap());
    });

    let mut ws = Workspace::new(base.clone(), config());
    ws.try_is_coherent().unwrap();
    let mut i = 0u64;
    let incremental = min_time(|| {
        i += 1;
        ws.apply(&edit_for(&base, i)).unwrap();
        black_box(ws.try_is_coherent().unwrap());
    });
    let stats = ws.stats();

    let mut counters = BTreeMap::new();
    counters.insert("clusters_reused".into(), stats.clusters_reused);
    counters.insert("clusters_rebuilt".into(), stats.clusters_rebuilt);
    counters.insert("classes".into(), base.num_classes() as u64);
    counters.insert("propagations".into(), propagations_of(|| {
        let r = Reasoner::with_config(&edited, config());
        black_box(r.try_is_coherent().unwrap());
    }));
    // The full-rebuild wall time is informational context for the
    // incremental wall time, not a counter: wall clocks may not gate CI.
    eprintln!(
        "incremental_edits: full rebuild {} us vs incremental {} us",
        full.as_micros(),
        incremental.as_micros()
    );
    BenchRecord { name: "incremental_edits".into(), wall: incremental, counters }
}

/// Pure AllSAT workload: refutation + enumeration through the solver
/// used by `Strategy::Sat` (counts total models over a constrained
/// alphabet; the propagation-heavy path in isolation).
fn allsat_enumeration() -> BenchRecord {
    // One pigeonhole block (pure refutation) plus a free-ish tail whose
    // models must all be enumerated in lexicographic order.
    let schema = php_blocks(1, HOLES);
    let run = || {
        let ccs = car_core::enumerate::sat_models(&schema, &[], usize::MAX).unwrap();
        ccs.len() as u64
    };
    let models = run();
    let mut counters = BTreeMap::new();
    counters.insert("models".into(), models);
    counters.insert("propagations".into(), propagations_of(|| {
        black_box(run());
    }));
    counters.insert("decisions".into(), decisions_of(|| {
        black_box(run());
    }));
    let wall = min_time(|| {
        black_box(run());
    });
    BenchRecord { name: "allsat_enumeration".into(), wall, counters }
}

/// Classes in the beyond-enumeration column-generation workload. One
/// §4.3 cluster: eager enumeration over it would materialize 2^50 − 1
/// compound classes, far past any enumeration ceiling.
const RING: usize = 50;

/// A ring of `RING` classes over one shared attribute `f`, each forced
/// to own an `f`-successor in the next class. Sharing the attribute
/// puts every class into a single co-occurrence cluster while leaving
/// the isa layer unconstrained, so the eager strategies face the full
/// 2^n subset lattice and only the lazy path can answer.
fn colgen_ring(n: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..n).map(|i| b.class(&format!("C{i}"))).collect();
    let f = b.attribute("f");
    for i in 0..n {
        let next = classes[(i + 1) % n];
        b.define_class(classes[i])
            .attr(AttRef::Direct(f), Card::new(1, 1), ClassFormula::class(next))
            .finish();
    }
    b.build().unwrap()
}

/// Lazy column generation on the single-cluster ring: answers class
/// satisfiability for all `RING` classes with a working set linear in
/// the class count. Gates the pricing-economy counters — columns
/// priced, pricing calls, admissions, master re-solves, simplex pivots
/// and guided DPLL solves — so a regression that silently re-inflates
/// the working set (or prices exponentially) fails CI.
fn column_generation() -> BenchRecord {
    let schema = colgen_ring(RING);
    let config = || ReasonerConfig {
        strategy: Strategy::ColumnGen,
        threads: NonZeroUsize::new(1).unwrap(),
        ..ReasonerConfig::default()
    };
    let run = || {
        let r = Reasoner::with_config(&schema, config());
        let sat = schema
            .symbols()
            .class_ids()
            .filter(|&c| r.try_is_satisfiable(c).unwrap())
            .count() as u64;
        (sat, r.try_stats().unwrap().num_compound_classes as u64)
    };
    let colgen_before = car_core::colgen::colgen_counters();
    let guided_before = car_logic::search_counters().guided_solves;
    let pivots_before = car_lp::pivot_count();
    let (sat, working_set) = run();
    let colgen = car_core::colgen::colgen_counters();
    let guided = car_logic::search_counters().guided_solves - guided_before;
    let pivots = car_lp::pivot_count() - pivots_before;

    let mut counters = BTreeMap::new();
    counters.insert("classes".into(), RING as u64);
    counters.insert("satisfiable_classes".into(), sat);
    counters.insert("working_set".into(), working_set);
    counters.insert("columns_priced".into(), colgen.columns_priced - colgen_before.columns_priced);
    counters.insert("pricing_calls".into(), colgen.pricing_calls - colgen_before.pricing_calls);
    counters.insert(
        "columns_admitted".into(),
        colgen.columns_admitted - colgen_before.columns_admitted,
    );
    counters.insert("master_solves".into(), colgen.master_solves - colgen_before.master_solves);
    counters.insert("guided_solves".into(), guided);
    counters.insert("pivots".into(), pivots);
    let wall = min_time(|| {
        black_box(run());
    });
    BenchRecord { name: "column_generation".into(), wall, counters }
}

/// Simplex pivots spent inside `f` (0 until the counter plumbing of this
/// PR's lp changes is in place on the measured build).
fn pivots_of(f: impl FnOnce()) -> u64 {
    let before = car_lp::pivot_count();
    f();
    car_lp::pivot_count() - before
}

/// DPLL propagations spent inside `f`.
fn propagations_of(f: impl FnOnce()) -> u64 {
    let before = car_logic::search_counters().propagations;
    f();
    car_logic::search_counters().propagations - before
}

/// DPLL decisions spent inside `f`.
fn decisions_of(f: impl FnOnce()) -> u64 {
    let before = car_logic::search_counters().decisions;
    f();
    car_logic::search_counters().decisions - before
}

/// Runs every workload in quick deterministic mode.
#[must_use]
pub fn run_all() -> Vec<BenchRecord> {
    vec![
        phase2_scaling(),
        two_phase_vs_brute_force(),
        incremental_edits(),
        allsat_enumeration(),
        column_generation(),
    ]
}

/// Renders records as the `BENCH_5.json` document.
#[must_use]
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"wall_us\": {},\n      \"counters\": {{",
            r.name,
            r.wall.as_micros()
        );
        for (j, (k, v)) in r.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n        \"{}\": {}",
                if j > 0 { "," } else { "" },
                k,
                v
            );
        }
        let _ = write!(
            out,
            "\n      }}\n    }}{}\n",
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the deterministic-counter lines of a `BENCH_5.json` document
/// (everything inside `"counters"` blocks), used to compare a fresh run
/// against the committed file while ignoring wall-clock fields.
#[must_use]
pub fn counter_lines(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_counters = false;
    let mut bench = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\": ") {
            bench = rest.trim_matches(|c| c == '"' || c == ',').to_string();
        }
        if t.starts_with("\"counters\"") {
            in_counters = true;
            continue;
        }
        if in_counters {
            if t.starts_with('}') {
                in_counters = false;
                continue;
            }
            out.push(format!("{bench}/{}", t.trim_end_matches(',')));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_counter_lines() {
        let records = vec![BenchRecord {
            name: "w".into(),
            wall: Duration::from_micros(42),
            counters: [("a".to_string(), 1u64), ("b".to_string(), 2u64)]
                .into_iter()
                .collect(),
        }];
        let json = to_json(&records);
        assert!(json.contains("\"wall_us\": 42"));
        let lines = counter_lines(&json);
        assert_eq!(lines, vec!["w/\"a\": 1".to_string(), "w/\"b\": 2".to_string()]);
    }
}
