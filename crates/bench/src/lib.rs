//! Benchmark harness crate; see `benches/` for the criterion suites and
//! [`telemetry`] for the quick deterministic mode behind `BENCH_5.json`.

pub mod telemetry;
