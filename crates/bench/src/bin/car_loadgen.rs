//! `car_loadgen` — load generator for the `car-server` protocol.
//!
//! Spawns an in-process [`car_server::Server`] on an ephemeral port and
//! replays mixed edit/query traffic from many concurrent TCP clients
//! (default 120), in three phases:
//!
//! 1. **mixed** — every client owns a private workspace and runs a
//!    seeded deterministic stream of applies, undos and query batches.
//!    Every answer is compared against an in-process
//!    [`car_core::Workspace`] replay of the same client's operations;
//!    the `replay_mismatches` counter must stay 0.
//! 2. **coalesce** — every client hammers one shared read-only
//!    workspace, exercising the leader/follower batched-query path;
//!    answers are compared against precomputed expected values.
//! 3. **pressure** — a separate server with a 1-step budget: every
//!    query must degrade to `unknown` with cause `budget`,
//!    deterministically, proving exhaustion never panics, poisons a
//!    workspace, or drops a response.
//!
//! With `--restart` the three phases above are replaced by the
//! crash-safety phases of `BENCH_7.json`:
//!
//! 1. **restart_crash** — durable clients edit journaled workspaces,
//!    record a final answer set, then the server is killed without
//!    draining; a second server over the same `--data-dir` must replay
//!    every acknowledged operation and answer bit-identically.
//! 2. **restart_graceful** — the same workload, but the first server
//!    drains and snapshots; recovery must replay *zero* journal ops.
//! 3. **warm_start_pigeonhole** — an in-process pigeonhole workload
//!    run cold (empty store) and then warm (reopened store): identical
//!    answers, every cluster recovered from disk, and far fewer DPLL
//!    propagations.
//!
//! With `--reactor` (Linux only) the phases become the
//! connection-density phases of `BENCH_10.json`:
//!
//! 1. **reactor_idle_dense** — a real `car-server --net-mode reactor`
//!    child process holds 10,000 idle connections while the standard
//!    120-client mixed workload runs against it, every answer
//!    shadow-verified; the child's thread count must stay O(workers),
//!    its epoll wakeups bounded by traffic, and a remote `shutdown`
//!    must drain it cleanly.
//! 2. **reactor_backpressure** — bounded-output discipline: a slow
//!    reader observes `backpressure_stalls` and still gets every
//!    response in order once it drains; a non-reading client pipelining
//!    past a small `--max-write-buffer` is disconnected exactly once
//!    while the server stays healthy for others.
//!
//! With `--fleet` the phases become the multi-writer safety phases of
//! `BENCH_9.json`:
//!
//! 1. **fleet_takeover** — a leader, a read-only follower and a
//!    standby leader share one data directory. The follower must
//!    answer every workspace bit-identically while refusing every edit
//!    with `read_only`; the standby must respect the live leader's
//!    workspace leases, adopt every workspace within a TTL of the
//!    leader's power cut, answer bit-identically, and accept edits
//!    again.
//! 2. **fleet_fencing** — a writer's lease dies while its in-memory
//!    handle (the zombie) lives on; a successor steals the claim and
//!    fences the directory at a higher epoch; the zombie then resumes
//!    appending. Recovery must reject every stale-epoch record and
//!    keep every acknowledged and successor edit.
//!
//! Output is the `BENCH_6.json` (or `BENCH_7.json` / `BENCH_9.json`)
//! document: per-phase deterministic counters (gated in CI via
//! `--check`, like `BENCH_5.json`) plus wall-clock observations —
//! total time, p50/p99 latency, throughput — which are recorded but
//! never gated.
//!
//! Usage:
//!   car_loadgen [--clients N] [--iters N]   print BENCH_6.json
//!   car_loadgen --check BENCH_6.json        compare counters, ignore walls
//!   car_loadgen --restart                   print BENCH_7.json
//!   car_loadgen --restart --check BENCH_7.json
//!   car_loadgen --fleet                     print BENCH_9.json
//!   car_loadgen --fleet --check BENCH_9.json
//!   car_loadgen --reactor                   print BENCH_10.json (Linux)
//!   car_loadgen --reactor --check BENCH_10.json

use car_bench::telemetry::counter_lines;
use car_core::persist::{Disk, DiskStore, SharedStore, StoreLimits};
use car_core::reasoner::Strategy;
use car_core::syntax::{Card, ClassFormula, SchemaBuilder};
use car_core::{
    Acquire, JournalOp, Lease, ReasonerConfig, Schema, SchemaDelta, Workspace,
    WorkspaceDir, WorkspaceLimits,
};
use car_server::json::{obj, parse, s, to_string, Json};
use car_server::protocol::{answer_json, unknown_answer, WireDelta, WireQuery};
use car_server::service::{ServerConfig, StoreMode};
use car_server::{Client, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SCHEMA: &str = "
    class Person endclass
    class Professor isa Person endclass
    class Student isa Person and not Professor endclass
    class Grad isa Student endclass
    class Course
      participates_in Teaches[taught] : (1, 1)
    endclass
    relation Teaches(teacher, taught)
      constraints (teacher : Professor); (taught : Course)
    endrelation
";

const POOL: &[&str] = &["Person", "Professor", "Student", "Grad", "Course", "Zed"];

/// One phase's results: deterministic counters plus wall observations.
struct PhaseReport {
    name: &'static str,
    counters: BTreeMap<String, u64>,
    wall: Duration,
    latencies_us: Vec<u64>,
    requests: u64,
}

/// Per-client tallies, merged across threads after the phase.
#[derive(Default)]
struct ClientTally {
    requests: u64,
    proved: u64,
    disproved: u64,
    unknown: u64,
    mismatches: u64,
    edits_applied: u64,
    latencies_us: Vec<u64>,
}

fn formula(rng: &mut SmallRng) -> Vec<Vec<(String, bool)>> {
    (0..rng.gen_range(0usize..2))
        .map(|_| {
            (0..rng.gen_range(1usize..3))
                .map(|_| (POOL[rng.gen_range(0..POOL.len())].to_owned(), rng.gen_bool(0.25)))
                .collect()
        })
        .collect()
}

fn deltas(rng: &mut SmallRng) -> Vec<WireDelta> {
    (0..rng.gen_range(1usize..3))
        .map(|_| match rng.gen_range(0u32..6) {
            0 => WireDelta::AddClass { name: format!("Zed{}", rng.gen_range(0u32..3)) },
            1 => WireDelta::SetAttribute {
                class: POOL[rng.gen_range(0..POOL.len())].to_owned(),
                attr: "a".to_owned(),
                inverse: false,
                spec: Some((
                    Card { min: rng.gen_range(0u64..2), max: Some(rng.gen_range(1u64..3)) },
                    formula(rng),
                )),
            },
            _ => WireDelta::SetIsa {
                class: POOL[rng.gen_range(0..POOL.len())].to_owned(),
                isa: formula(rng),
            },
        })
        .collect()
}

fn queries(rng: &mut SmallRng) -> Vec<WireQuery> {
    let name = |rng: &mut SmallRng| POOL[rng.gen_range(0..POOL.len())].to_owned();
    (0..rng.gen_range(1usize..4))
        .map(|_| match rng.gen_range(0u32..5) {
            0 => WireQuery::Coherent,
            1 => WireQuery::Subsumes { sup: name(rng), sub: name(rng) },
            2 => WireQuery::Disjoint(name(rng), name(rng)),
            3 => WireQuery::Equivalent(name(rng), name(rng)),
            _ => WireQuery::Satisfiable(name(rng)),
        })
        .collect()
}

fn delta_json(d: &WireDelta) -> Json {
    let formula_json = |f: &Vec<Vec<(String, bool)>>| {
        Json::Arr(
            f.iter()
                .map(|clause| {
                    Json::Arr(
                        clause
                            .iter()
                            .map(|(class, neg)| {
                                let mut fields = vec![("class", s(class))];
                                if *neg {
                                    fields.push(("neg", Json::Bool(true)));
                                }
                                obj(fields)
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    };
    match d {
        WireDelta::AddClass { name } => obj(vec![("kind", s("add_class")), ("name", s(name))]),
        WireDelta::SetIsa { class, isa } => {
            obj(vec![("kind", s("set_isa")), ("class", s(class)), ("isa", formula_json(isa))])
        }
        WireDelta::SetAttribute { class, attr, inverse, spec } => obj(vec![
            ("kind", s("set_attribute")),
            ("class", s(class)),
            ("attr", s(attr)),
            ("inverse", Json::Bool(*inverse)),
            (
                "spec",
                spec.as_ref().map_or(Json::Null, |(card, ty)| {
                    obj(vec![
                        (
                            "card",
                            Json::Arr(vec![
                                Json::UInt(card.min),
                                card.max.map_or(Json::Null, Json::UInt),
                            ]),
                        ),
                        ("type", formula_json(ty)),
                    ])
                }),
            ),
        ]),
        // The generators above produce only the three kinds handled
        // here; the full serialization lives in the server test suite.
        _ => unreachable!("loadgen generates add_class/set_isa/set_attribute only"),
    }
}

fn frame(tenant: &str, workspace: &str, id: u64, op: &str, extra: Vec<(&str, Json)>) -> String {
    let mut fields = vec![
        ("id", Json::UInt(id)),
        ("op", s(op)),
        ("tenant", s(tenant)),
        ("workspace", s(workspace)),
    ];
    fields.extend(extra);
    to_string(&obj(fields))
}

/// In-process replay of one client's operations on a raw [`Workspace`].
struct Shadow {
    ws: Workspace,
}

impl Shadow {
    fn new() -> Shadow {
        let schema = car_parser::parse_schema(SCHEMA).expect("loadgen schema parses");
        Shadow { ws: Workspace::new(schema, ReasonerConfig::default()) }
    }

    fn apply(&mut self, deltas: &[WireDelta]) -> u64 {
        let mut applied = 0;
        for delta in deltas {
            let Ok(resolved) = delta.resolve(self.ws.schema()) else { break };
            if self.ws.apply(&resolved).is_err() {
                break;
            }
            applied += 1;
        }
        applied
    }

    fn query(&mut self, queries: &[WireQuery]) -> Vec<Json> {
        let mut combined = Vec::new();
        let plan: Vec<Result<usize, String>> = queries
            .iter()
            .map(|q| {
                q.resolve(self.ws.schema()).map(|typed| {
                    let at = combined.len();
                    combined.push(typed);
                    at
                })
            })
            .collect();
        let results = self.ws.query_batch_results(&combined);
        plan.into_iter()
            .map(|entry| match entry {
                Ok(at) => answer_json(&results[at]),
                Err(name) => unknown_answer("unknown_class", &format!("unknown class '{name}'")),
            })
            .collect()
    }
}

fn tally_answers(tally: &mut ClientTally, answers: &[Json]) {
    for a in answers {
        match a.get("outcome").and_then(Json::as_str) {
            Some("proved") => tally.proved += 1,
            Some("disproved") => tally.disproved += 1,
            _ => tally.unknown += 1,
        }
    }
}

fn timed_roundtrip(client: &mut Client, frame: &str, tally: &mut ClientTally) -> Json {
    let start = Instant::now();
    let resp = client.roundtrip(frame).expect("server responds");
    tally.latencies_us.push(start.elapsed().as_micros() as u64);
    tally.requests += 1;
    parse(resp.trim_end()).expect("response is valid JSON")
}

/// Phase 1: private workspaces, mixed edits and queries, full replay
/// verification. `name` distinguishes the in-process run
/// (`loadgen_mixed`) from the reactor-child run (`reactor_idle_dense`
/// reuses this workload as its active-traffic half).
fn mixed_phase(name: &'static str, addr: SocketAddr, clients: u64, iters: u32) -> PhaseReport {
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut rng = SmallRng::seed_from_u64(0xB0A0 + c);
                    let tenant = format!("t{c}");
                    let mut client = Client::connect(addr).expect("connect");
                    let open = frame(&tenant, "w", 0, "open", vec![("schema", s(SCHEMA))]);
                    let v = timed_roundtrip(&mut client, &open, &mut tally);
                    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "open failed");
                    let mut shadow = Shadow::new();
                    for i in 1..=iters {
                        match rng.gen_range(0u32..10) {
                            0..=2 => {
                                let ds = deltas(&mut rng);
                                let f = frame(
                                    &tenant,
                                    "w",
                                    u64::from(i),
                                    "apply",
                                    vec![("deltas", Json::Arr(ds.iter().map(delta_json).collect()))],
                                );
                                let v = timed_roundtrip(&mut client, &f, &mut tally);
                                let applied =
                                    v.get("applied").and_then(Json::as_u64).unwrap_or(u64::MAX);
                                let want = shadow.apply(&ds);
                                tally.edits_applied += want;
                                if applied != want {
                                    tally.mismatches += 1;
                                }
                            }
                            3 => {
                                let f = frame(&tenant, "w", u64::from(i), "undo", vec![]);
                                let v = timed_roundtrip(&mut client, &f, &mut tally);
                                let moved = shadow.ws.undo();
                                if v.get("moved") != Some(&Json::Bool(moved)) {
                                    tally.mismatches += 1;
                                }
                            }
                            _ => {
                                let qs = queries(&mut rng);
                                let f = frame(
                                    &tenant,
                                    "w",
                                    u64::from(i),
                                    "query",
                                    vec![(
                                        "queries",
                                        Json::Arr(
                                            qs.iter()
                                                .map(|q| query_json(q))
                                                .collect(),
                                        ),
                                    )],
                                );
                                let v = timed_roundtrip(&mut client, &f, &mut tally);
                                let got = v.get("answers").and_then(Json::as_arr).unwrap_or(&[]);
                                let want = shadow.query(&qs);
                                tally_answers(&mut tally, got);
                                if got != &want[..] {
                                    tally.mismatches += 1;
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    merge(name, clients, tallies, start.elapsed())
}

fn query_json(q: &WireQuery) -> Json {
    match q {
        WireQuery::Satisfiable(c) => obj(vec![("kind", s("satisfiable")), ("class", s(c))]),
        WireQuery::Coherent => obj(vec![("kind", s("coherent"))]),
        WireQuery::Subsumes { sup, sub } => {
            obj(vec![("kind", s("subsumes")), ("sup", s(sup)), ("sub", s(sub))])
        }
        WireQuery::Disjoint(a, b) => {
            obj(vec![("kind", s("disjoint")), ("a", s(a)), ("b", s(b))])
        }
        WireQuery::Equivalent(a, b) => {
            obj(vec![("kind", s("equivalent")), ("a", s(a)), ("b", s(b))])
        }
    }
}

/// Phase 2: one shared read-only workspace; all clients' batches
/// coalesce through the leader/follower path.
fn coalesce_phase(addr: SocketAddr, clients: u64, iters: u32) -> PhaseReport {
    // Precompute expected answers once.
    let cases: Vec<(WireQuery, Json)> = {
        let mut shadow = Shadow::new();
        let qs = vec![
            WireQuery::Subsumes { sup: "Person".into(), sub: "Grad".into() },
            WireQuery::Subsumes { sup: "Grad".into(), sub: "Person".into() },
            WireQuery::Disjoint("Student".into(), "Professor".into()),
            WireQuery::Coherent,
            WireQuery::Satisfiable("Zed".into()),
        ];
        let answers = shadow.query(&qs);
        qs.into_iter().zip(answers).collect()
    };
    {
        let mut setup = Client::connect(addr).expect("connect");
        let open = frame("shared", "hot", 0, "open", vec![("schema", s(SCHEMA))]);
        let resp = setup.roundtrip(&open).expect("open shared");
        assert!(resp.contains("\"ok\":true"), "shared open failed: {resp}");
    }

    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let cases = &cases;
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut rng = SmallRng::seed_from_u64(0xC0A7 + c);
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..iters {
                        let picks: Vec<usize> = (0..rng.gen_range(1usize..4))
                            .map(|_| rng.gen_range(0..cases.len()))
                            .collect();
                        let qs: Vec<Json> =
                            picks.iter().map(|&k| query_json(&cases[k].0)).collect();
                        let f = frame(
                            "shared",
                            "hot",
                            c * 100_000 + u64::from(i),
                            "query",
                            vec![("queries", Json::Arr(qs))],
                        );
                        let v = timed_roundtrip(&mut client, &f, &mut tally);
                        let got = v.get("answers").and_then(Json::as_arr).unwrap_or(&[]);
                        tally_answers(&mut tally, got);
                        if got.len() != picks.len()
                            || got.iter().zip(&picks).any(|(a, &k)| a != &cases[k].1)
                        {
                            tally.mismatches += 1;
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    merge("loadgen_coalesce", clients, tallies, start.elapsed())
}

/// Phase 3: a 1-step budget server — every query must come back
/// `unknown` with cause `budget`, never a panic, never a lost response.
fn pressure_phase(clients: u64, iters: u32) -> PhaseReport {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_steps = Some(1);
    let mut server = Server::spawn("127.0.0.1:0", config).expect("bind pressure server");
    let addr = server.addr();

    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let tenant = format!("p{c}");
                    let mut client = Client::connect(addr).expect("connect");
                    let open = frame(&tenant, "w", 0, "open", vec![("schema", s(SCHEMA))]);
                    let v = timed_roundtrip(&mut client, &open, &mut tally);
                    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
                    for i in 0..iters {
                        let f = frame(
                            &tenant,
                            "w",
                            u64::from(i),
                            "query",
                            vec![(
                                "queries",
                                Json::Arr(vec![query_json(&WireQuery::Coherent)]),
                            )],
                        );
                        let v = timed_roundtrip(&mut client, &f, &mut tally);
                        let answers = v.get("answers").and_then(Json::as_arr).unwrap_or(&[]);
                        tally_answers(&mut tally, answers);
                        let budget_unknown = answers.len() == 1
                            && answers[0].get("outcome") == Some(&Json::Str("unknown".into()))
                            && answers[0].get("cause") == Some(&Json::Str("budget".into()));
                        if !budget_unknown {
                            tally.mismatches += 1;
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let report = merge("loadgen_pressure", clients, tallies, start.elapsed());
    server.stop();
    report
}

// -------------------------------------------------------------------
// Restart phases (BENCH_7.json)
// -------------------------------------------------------------------

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("car-loadgen-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(data_dir: &Path) -> ServerConfig {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    config.quota.max_pending = usize::MAX;
    config.data_dir = Some(data_dir.to_owned());
    config
}

/// The fixed answer-set batch every restart client runs before and
/// after the restart; equality of the two responses is the
/// bit-identical acceptance check.
fn restart_queries() -> Vec<WireQuery> {
    let mut qs = vec![WireQuery::Coherent];
    for name in POOL {
        qs.push(WireQuery::Satisfiable((*name).to_owned()));
        qs.push(WireQuery::Subsumes { sup: "Person".into(), sub: (*name).to_owned() });
    }
    qs.push(WireQuery::Disjoint("Student".into(), "Professor".into()));
    qs
}

/// Pre-restart load: every client opens a durable workspace, runs a
/// seeded stream of applies and undos (each acknowledged operation is
/// journaled server-side), and records the answer set. Returns the
/// tallies, the per-client acknowledged-op counts, and the answers.
fn restart_workload(
    addr: SocketAddr,
    clients: u64,
    iters: u32,
) -> (Vec<ClientTally>, Vec<u64>, Vec<Json>) {
    let results: Vec<(ClientTally, u64, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut rng = SmallRng::seed_from_u64(0xD07A + c);
                    let tenant = format!("t{c}");
                    let mut client = Client::connect(addr).expect("connect");
                    let open = frame(&tenant, "w", 0, "open", vec![("schema", s(SCHEMA))]);
                    let v = timed_roundtrip(&mut client, &open, &mut tally);
                    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "open failed");
                    let mut acked = 0u64;
                    for i in 1..=iters {
                        if rng.gen_bool(0.25) {
                            let f = frame(&tenant, "w", u64::from(i), "undo", vec![]);
                            let v = timed_roundtrip(&mut client, &f, &mut tally);
                            if v.get("moved") == Some(&Json::Bool(true)) {
                                acked += 1;
                            }
                        } else {
                            let ds = deltas(&mut rng);
                            let f = frame(
                                &tenant,
                                "w",
                                u64::from(i),
                                "apply",
                                vec![("deltas", Json::Arr(ds.iter().map(delta_json).collect()))],
                            );
                            let v = timed_roundtrip(&mut client, &f, &mut tally);
                            acked += v.get("applied").and_then(Json::as_u64).unwrap_or(0);
                            tally.edits_applied +=
                                v.get("applied").and_then(Json::as_u64).unwrap_or(0);
                        }
                    }
                    let qs = restart_queries();
                    let f = frame(
                        &tenant,
                        "w",
                        9_000,
                        "query",
                        vec![("queries", Json::Arr(qs.iter().map(query_json).collect()))],
                    );
                    let v = timed_roundtrip(&mut client, &f, &mut tally);
                    let answers = v.get("answers").cloned().unwrap_or(Json::Null);
                    tally_answers(
                        &mut tally,
                        v.get("answers").and_then(Json::as_arr).unwrap_or(&[]),
                    );
                    (tally, acked, answers)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut tallies = Vec::new();
    let mut acked = Vec::new();
    let mut answers = Vec::new();
    for (t, a, ans) in results {
        tallies.push(t);
        acked.push(a);
        answers.push(ans);
    }
    (tallies, acked, answers)
}

/// Post-restart verification: re-query every recovered workspace with
/// the same batch and collect the warm disk-hit counters.
fn requery_workspaces(addr: SocketAddr, clients: u64) -> (Vec<ClientTally>, Vec<Json>, u64) {
    let results: Vec<(ClientTally, Json, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let tenant = format!("t{c}");
                    let mut client = Client::connect(addr).expect("connect");
                    let qs = restart_queries();
                    let f = frame(
                        &tenant,
                        "w",
                        9_000,
                        "query",
                        vec![("queries", Json::Arr(qs.iter().map(query_json).collect()))],
                    );
                    let v = timed_roundtrip(&mut client, &f, &mut tally);
                    let answers = v.get("answers").cloned().unwrap_or(Json::Bool(false));
                    let stats = frame(&tenant, "w", 9_001, "stats", vec![]);
                    let v = timed_roundtrip(&mut client, &stats, &mut tally);
                    let hits = v.get("disk_cluster_hits").and_then(Json::as_u64).unwrap_or(0)
                        + v.get("disk_ccs_hits").and_then(Json::as_u64).unwrap_or(0);
                    (tally, answers, hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut tallies = Vec::new();
    let mut answers = Vec::new();
    let mut hits = 0;
    for (t, ans, h) in results {
        tallies.push(t);
        answers.push(ans);
        hits += h;
    }
    (tallies, answers, hits)
}

/// One restart phase: load a durable server, kill it (`graceful` =
/// false) or drain it (`graceful` = true), bring up a successor over
/// the same data directory, and verify answers survive bit-identically.
fn restart_phase(
    name: &'static str,
    graceful: bool,
    clients: u64,
    iters: u32,
) -> PhaseReport {
    let dir = scratch_dir(name);
    let start = Instant::now();

    let mut first = Server::spawn("127.0.0.1:0", durable_config(&dir)).expect("bind");
    let (mut tallies, acked, before) = restart_workload(first.addr(), clients, iters);
    let snapshots = if graceful { first.shutdown() } else { first.stop(); 0 };
    let durability_failures = first.service().durability_failures();
    drop(first);

    let mut second = Server::spawn("127.0.0.1:0", durable_config(&dir)).expect("rebind");
    let report = second.service().recovery_report();
    let (tallies2, after, warm_disk_hits) = requery_workspaces(second.addr(), clients);
    second.stop();
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    tallies.extend(tallies2);
    let mismatches =
        before.iter().zip(&after).filter(|(b, a)| b != a).count() as u64;
    let total_acked: u64 = acked.iter().sum();

    let mut merged = merge(name, clients, tallies, wall);
    merged.counters.insert("acked_ops".into(), total_acked);
    merged.counters.insert("workspaces_recovered".into(), report.workspaces_recovered);
    merged.counters.insert("ops_replayed".into(), report.ops_replayed);
    merged.counters.insert("replay_failures".into(), report.replay_failures);
    merged.counters.insert("truncated_tails".into(), report.truncated_tails);
    merged.counters.insert("dirs_skipped".into(), report.dirs_skipped);
    merged.counters.insert("durability_failures".into(), durability_failures);
    merged.counters.insert("post_restart_mismatches".into(), mismatches);
    merged.counters.insert("warm_disk_hits".into(), warm_disk_hits);
    if graceful {
        merged.counters.insert("snapshots_written".into(), snapshots);
    }
    merged
}

/// Pigeonhole blocks for the warm-start phase: each block's root
/// demands `HOLES + 1` pigeons fit into `HOLES` holes (a pure DPLL
/// refutation), so cold-start propagation cost is large and any warm
/// recomputation is visible in the counters.
const PHP_BLOCKS: usize = 6;
const PHP_HOLES: usize = 4;

fn pigeonhole_schema(blocks: usize, holes: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    for c in 0..blocks {
        let root = b.class(&format!("R{c}"));
        let h: Vec<Vec<_>> = (0..holes + 1)
            .map(|i| (0..holes).map(|j| b.class(&format!("H{c}_{i}_{j}"))).collect())
            .collect();
        let mut isa = ClassFormula::top();
        for row in &h {
            isa = isa.and(ClassFormula::union_of(row.iter().copied()));
        }
        b.define_class(root).isa(isa).finish();
        for i in 0..holes + 1 {
            for j in 0..holes {
                let mut f = ClassFormula::class(root);
                for (k, row) in h.iter().enumerate() {
                    if k != i {
                        f = f.and(ClassFormula::neg_class(row[j]));
                    }
                }
                b.define_class(h[i][j]).isa(f).finish();
            }
        }
    }
    b.build().unwrap()
}

/// Phase 3: the acceptance workload. A cold in-process run over an
/// empty durable store, then a warm run over the reopened store: the
/// answer vectors must be identical, every cluster must come back from
/// disk (zero rebuilds), and the warm run must spend fewer DPLL
/// propagations than the cold one.
fn warm_start_pigeonhole() -> PhaseReport {
    let dir = scratch_dir("php-store");
    let schema = pigeonhole_schema(PHP_BLOCKS, PHP_HOLES);
    let config =
        ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() };
    let open_store = || -> SharedStore {
        Arc::new(Mutex::new(DiskStore::open_real(&dir, StoreLimits::default()).unwrap()))
    };
    let satisfiability = |ws: &mut Workspace| -> Vec<bool> {
        let schema = ws.schema().clone();
        schema
            .symbols()
            .class_ids()
            .map(|c| ws.try_is_satisfiable(c).expect("unbudgeted"))
            .collect()
    };
    let propagations = car_logic::search_counters().propagations;
    let start = Instant::now();

    let mut cold = Workspace::new(schema.clone(), config.clone());
    cold.set_store(open_store());
    let cold_answers = satisfiability(&mut cold);
    let cold_stats = cold.stats();
    let cold_propagations = car_logic::search_counters().propagations - propagations;
    drop(cold);

    let warm_wall = Instant::now();
    let mut warm = Workspace::new(schema, config);
    warm.set_store(open_store());
    let warm_answers = satisfiability(&mut warm);
    let warm_stats = warm.stats();
    let warm_propagations =
        car_logic::search_counters().propagations - propagations - cold_propagations;
    let warm_wall = warm_wall.elapsed();
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    let mut counters = BTreeMap::new();
    counters.insert("classes".into(), cold_answers.len() as u64);
    counters.insert("answers_identical".into(), u64::from(cold_answers == warm_answers));
    counters.insert("cold_disk_writes".into(), cold_stats.disk_writes);
    counters.insert("cold_propagations".into(), cold_propagations);
    counters.insert("warm_propagations".into(), warm_propagations);
    counters.insert("warm_disk_cluster_hits".into(), warm_stats.disk_cluster_hits);
    counters.insert("warm_clusters_reused".into(), warm_stats.clusters_reused);
    counters.insert("warm_clusters_rebuilt".into(), warm_stats.clusters_rebuilt);
    counters.insert(
        "warm_saves_propagations".into(),
        u64::from(warm_propagations < cold_propagations),
    );
    PhaseReport {
        name: "warm_start_pigeonhole",
        counters,
        wall,
        // No network latencies in this phase; record the warm pass as
        // the single observation so p50/p99 show the restart cost.
        latencies_us: vec![warm_wall.as_micros() as u64],
        requests: 0,
    }
}

fn restart_run(clients: u64, iters: u32) -> Vec<PhaseReport> {
    vec![
        restart_phase("restart_crash", false, clients, iters),
        restart_phase("restart_graceful", true, clients, iters),
        warm_start_pigeonhole(),
    ]
}

// -------------------------------------------------------------------
// Fleet phases (BENCH_9.json)
// -------------------------------------------------------------------

fn fleet_config(data_dir: &Path, mode: StoreMode, ttl: Duration) -> ServerConfig {
    let mut config = durable_config(data_dir);
    config.store_mode = mode;
    config.lease_ttl = ttl;
    config
}

/// Fleet phase 1: three servers over ONE data directory. A leader
/// takes the seeded edit load; a read-only follower must answer every
/// workspace bit-identically while refusing every edit; a standby
/// leader must respect the live leader's workspace leases, then adopt
/// every workspace within a TTL of the leader's power cut — and keep
/// answering bit-identically, with edits flowing again.
fn fleet_takeover_phase(clients: u64, iters: u32) -> PhaseReport {
    let dir = scratch_dir("fleet");
    let ttl = Duration::from_millis(200);
    let start = Instant::now();

    let mut leader = Server::spawn("127.0.0.1:0", fleet_config(&dir, StoreMode::Leader, ttl))
        .expect("bind leader");
    let (mut tallies, acked, before) = restart_workload(leader.addr(), clients, iters);
    let total_acked: u64 = acked.iter().sum();

    let mut follower =
        Server::spawn("127.0.0.1:0", fleet_config(&dir, StoreMode::Follower, ttl))
            .expect("bind follower");
    let (tallies_f, follower_answers, _) = requery_workspaces(follower.addr(), clients);
    let follower_mismatches =
        before.iter().zip(&follower_answers).filter(|(b, a)| b != a).count() as u64;
    tallies.extend(tallies_f);
    // One refused edit per tenant: the read-only contract end to end.
    let mut refused = 0u64;
    for c in 0..clients {
        let tenant = format!("t{c}");
        let mut client = Client::connect(follower.addr()).expect("connect follower");
        let ds = vec![WireDelta::AddClass { name: "Refused".into() }];
        let f = frame(
            &tenant,
            "w",
            50_000,
            "apply",
            vec![("deltas", Json::Arr(ds.iter().map(delta_json).collect()))],
        );
        let v = parse(client.roundtrip(&f).expect("roundtrip").trim_end()).expect("json");
        let kind = v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
        if kind == Some("read_only") {
            refused += 1;
        }
    }
    let read_only_rejections = follower.service().read_only_rejections();
    assert_eq!(refused, read_only_rejections, "every refusal is counted");

    // The standby sees every workspace lease held by the live leader.
    let mut standby = Server::spawn("127.0.0.1:0", fleet_config(&dir, StoreMode::Leader, ttl))
        .expect("bind standby");
    let dirs_lease_held = standby.service().recovery_report().dirs_lease_held;

    // Power cut (stop, not shutdown): no final snapshot, no lease
    // release. The standby's keeper must adopt every workspace.
    leader.stop();
    drop(leader);
    let deadline = Instant::now() + Duration::from_secs(120);
    while standby.service().leases_taken_over() < clients {
        assert!(
            Instant::now() < deadline,
            "keeper adopted only {} of {clients} workspaces",
            standby.service().leases_taken_over()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let leases_taken_over = standby.service().leases_taken_over();
    let ops_replayed = standby.service().recovery_report().ops_replayed;

    let (tallies2, after, _) = requery_workspaces(standby.addr(), clients);
    let post_takeover_mismatches =
        before.iter().zip(&after).filter(|(b, a)| b != a).count() as u64;
    tallies.extend(tallies2);
    // Edits flow through the adopter without any client reopening.
    let mut post_takeover_applied = 0u64;
    for c in 0..clients {
        let tenant = format!("t{c}");
        let mut client = Client::connect(standby.addr()).expect("connect standby");
        let ds = vec![WireDelta::AddClass { name: "PostTakeover".into() }];
        let f = frame(
            &tenant,
            "w",
            60_000,
            "apply",
            vec![("deltas", Json::Arr(ds.iter().map(delta_json).collect()))],
        );
        let v = parse(client.roundtrip(&f).expect("roundtrip").trim_end()).expect("json");
        post_takeover_applied += v.get("applied").and_then(Json::as_u64).unwrap_or(0);
    }

    follower.stop();
    standby.stop();
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    let mut merged = merge("fleet_takeover", clients, tallies, wall);
    merged.counters.insert("acked_ops".into(), total_acked);
    merged.counters.insert("follower_mismatches".into(), follower_mismatches);
    merged.counters.insert("read_only_rejections".into(), read_only_rejections);
    merged.counters.insert("dirs_lease_held".into(), dirs_lease_held);
    merged.counters.insert("leases_taken_over".into(), leases_taken_over);
    merged.counters.insert("ops_replayed".into(), ops_replayed);
    merged.counters.insert("post_takeover_mismatches".into(), post_takeover_mismatches);
    merged.counters.insert("post_takeover_applied".into(), post_takeover_applied);
    merged
}

/// Fleet phase 2: the zombie-writer scenario at the persistence layer.
/// A writer journals acknowledged edits, its lease dies (power cut), a
/// successor steals the claim, fences the directory at a higher epoch
/// and writes its own edit — then the original writer's still-live
/// handle resumes appending at the stale epoch. Recovery must reject
/// every stale record and keep every acknowledged and successor edit.
fn fleet_fencing_phase() -> PhaseReport {
    let dir = scratch_dir("fleet-fencing");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let disk = Disk::real();
    let start = Instant::now();

    let mut zombie_lease = match Lease::acquire(&dir, "loadgen", &disk).expect("claim") {
        Acquire::Acquired(l) => l,
        Acquire::Held(info) => panic!("fresh dir already claimed: {info:?}"),
    };
    let mut zombie_wd = WorkspaceDir::create(&dir, disk.clone()).expect("create");
    zombie_wd.set_epoch(zombie_lease.epoch());
    let schema = SchemaBuilder::new().build().expect("empty schema");
    let mut ws = Workspace::new(schema, ReasonerConfig::default());
    zombie_wd.save_snapshot("fleet", "z", ws.schema(), &[], &[]).expect("first snapshot");
    let mut acked_ops = 0u64;
    for i in 0..3 {
        let delta = SchemaDelta::AddClass { name: format!("Z{i}") };
        ws.apply(&delta).expect("apply");
        zombie_wd.append_op(&JournalOp::Apply(delta)).expect("append");
        acked_ops += 1;
    }
    // Power cut: the claim dies but the writer's in-memory handle —
    // the zombie — lives on.
    zombie_lease.abandon();

    let mut successor_lease = match Lease::acquire(&dir, "loadgen", &disk).expect("steal") {
        Acquire::Acquired(l) => l,
        Acquire::Held(info) => panic!("abandoned claim not stolen: {info:?}"),
    };
    let rec = WorkspaceDir::recover(&dir, disk.clone()).expect("recover");
    let ops_replayed = rec.ops.len() as u64;
    successor_lease.ensure_epoch_above(rec.epoch).expect("dominate");
    let mut wd2 = rec.dir;
    wd2.set_epoch(successor_lease.epoch());
    let mut ws2 = Workspace::restore(
        rec.schema,
        rec.undo,
        rec.redo,
        ReasonerConfig::default(),
        WorkspaceLimits::default(),
    );
    for op in &rec.ops {
        if let JournalOp::Apply(d) = op {
            ws2.apply(d).expect("replay");
        }
    }
    wd2.save_snapshot("fleet", "z", ws2.schema(), ws2.undo_stack(), ws2.redo_stack())
        .expect("fencing snapshot");
    let successor = SchemaDelta::AddClass { name: "Successor".into() };
    ws2.apply(&successor).expect("successor apply");
    wd2.append_op(&JournalOp::Apply(successor)).expect("successor append");

    // The zombie wakes and keeps writing at its stale epoch; the
    // appends land on disk but must never survive replay.
    let mut stale_appends = 0u64;
    for i in 0..4 {
        let delta = SchemaDelta::AddClass { name: format!("Stale{i}") };
        if zombie_wd.append_op(&JournalOp::Apply(delta)).is_ok() {
            stale_appends += 1;
        }
    }

    let fin = WorkspaceDir::recover(&dir, disk).expect("final recover");
    let fenced_records_rejected = fin.fenced_records;
    let mut ws3 = Workspace::restore(
        fin.schema,
        fin.undo,
        fin.redo,
        ReasonerConfig::default(),
        WorkspaceLimits::default(),
    );
    for op in &fin.ops {
        if let JournalOp::Apply(d) = op {
            ws3.apply(d).expect("final replay");
        }
    }
    let names: Vec<String> = ws3
        .schema()
        .classes()
        .map(|(id, _)| ws3.schema().symbols().class_name(id).to_owned())
        .collect();
    let stale_classes_leaked = names.iter().filter(|n| n.starts_with("Stale")).count() as u64;
    let survivors_intact = u64::from(
        (0..3).all(|i| names.iter().any(|n| n == &format!("Z{i}")))
            && names.iter().any(|n| n == "Successor"),
    );
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    let mut counters = BTreeMap::new();
    counters.insert("acked_ops".into(), acked_ops);
    counters.insert("ops_replayed".into(), ops_replayed);
    counters.insert("stale_appends".into(), stale_appends);
    counters.insert("fenced_records_rejected".into(), fenced_records_rejected);
    counters.insert("stale_classes_leaked".into(), stale_classes_leaked);
    counters.insert("survivors_intact".into(), survivors_intact);
    PhaseReport {
        name: "fleet_fencing",
        counters,
        wall,
        latencies_us: vec![wall.as_micros() as u64],
        requests: 0,
    }
}

fn fleet_run(clients: u64, iters: u32) -> Vec<PhaseReport> {
    vec![fleet_takeover_phase(clients, iters), fleet_fencing_phase()]
}

// -------------------------------------------------------------------
// Reactor phases (BENCH_10.json, Linux only)
// -------------------------------------------------------------------

/// Idle connections the reactor child must hold alongside the active
/// mixed workload. The local hard fd cap is commonly 20,000+ and
/// `raise_fd_limit` lifts the soft cap, so 10k client sockets here plus
/// 10k server-side sockets in the child both fit.
#[cfg(target_os = "linux")]
const IDLE_CONNS: u64 = 10_000;

#[cfg(target_os = "linux")]
mod reactor_phases {
    use super::{
        frame, merge, mixed_phase, ClientTally, Json, PhaseReport, SCHEMA, IDLE_CONNS,
    };
    use car_server::json::{obj, parse, s, Json as J};
    use car_server::service::{NetMode, ServerConfig};
    use car_server::{Client, Server};
    use std::io::BufRead;
    use std::net::{SocketAddr, TcpStream};
    use std::process::{Child, Command, Stdio};
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    /// The sibling `car-server` binary (both land in the same cargo
    /// target directory).
    fn server_binary() -> std::path::PathBuf {
        let exe = std::env::current_exe().expect("current exe");
        let bin = exe.parent().expect("target dir").join("car-server");
        assert!(
            bin.exists(),
            "{} not found — build it first (cargo build --release -p car-server)",
            bin.display()
        );
        bin
    }

    /// Spawns the reactor child on an ephemeral port and parses the
    /// listen address off its stdout banner.
    fn spawn_reactor_child() -> (Child, SocketAddr) {
        let mut child = Command::new(server_binary())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--net-mode",
                "reactor",
                "--deadline-ms",
                "0",
                "--max-items",
                "0",
                "--max-pending",
                "1000000",
                "--allow-remote-shutdown",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn car-server child");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("child exited before announcing its address")
                .expect("child stdout");
            if let Some(rest) = line.split(" listening on ").nth(1) {
                break rest.trim().parse().expect("child listen address");
            }
        };
        // Keep the pipe drained so the child never blocks on stdout.
        std::thread::spawn(move || for _ in lines {});
        (child, addr)
    }

    fn health(control: &mut Client) -> J {
        let resp = control.roundtrip(r#"{"id":0,"op":"health"}"#).expect("health");
        parse(resp.trim_end()).expect("health is valid JSON")
    }

    fn net_field(health: &J, key: &str) -> u64 {
        health
            .get("net")
            .and_then(|n| n.get(key))
            .and_then(J::as_u64)
            .unwrap_or_else(|| panic!("health.net.{key} missing"))
    }

    /// `Threads:` from the child's `/proc/<pid>/status`.
    fn child_threads(child: &Child) -> u64 {
        let status = std::fs::read_to_string(format!("/proc/{}/status", child.id()))
            .unwrap_or_default();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Phase 1: the child holds [`IDLE_CONNS`] parked connections while
    /// the standard shadow-verified mixed workload runs. Everything
    /// gated is a deterministic count or a bounded-by-construction
    /// boolean — never wall clock.
    pub fn idle_dense_phase(clients: u64, iters: u32) -> PhaseReport {
        let (mut child, addr) = spawn_reactor_child();
        let start = Instant::now();

        // One long-lived control connection for health and shutdown, so
        // polling never perturbs the accepted-connection count.
        let mut control = Client::connect(addr).expect("control connect");

        let mut idle: Vec<TcpStream> = Vec::with_capacity(IDLE_CONNS as usize);
        for _ in 0..IDLE_CONNS {
            idle.push(TcpStream::connect(addr).expect("idle connect"));
        }
        // Wait until the event loop has registered every idle socket.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let v = health(&mut control);
            if net_field(&v, "conns_open") >= IDLE_CONNS + 1 {
                break;
            }
            assert!(Instant::now() < deadline, "reactor never registered 10k conns");
            std::thread::sleep(Duration::from_millis(20));
        }
        let threads_with_10k = child_threads(&child);

        let mut report = mixed_phase("reactor_idle_dense", addr, clients, iters);

        let v = health(&mut control);
        let conns_accepted = net_field(&v, "conns_accepted");
        let conns_open = net_field(&v, "conns_open");
        let frames_decoded = net_field(&v, "frames_decoded");
        let wakeups = net_field(&v, "wakeups");
        let workers = net_field(&v, "workers");
        let queue_depth = net_field(&v, "worker_queue_depth");

        // The idle sockets are all still parked and answering: poke one.
        use std::io::{Read as _, Write as _};
        let mut probe = idle.pop().expect("idle socket");
        probe.write_all(b"{\"id\":77,\"op\":\"ping\"}\n").expect("probe write");
        let mut buf = [0u8; 256];
        let n = probe.read(&mut buf).expect("probe read");
        let probe_ok =
            u64::from(String::from_utf8_lossy(&buf[..n]).contains("\"ok\":true"));

        // Remote shutdown drains the child; its exit status is the
        // graceful-drain acceptance bit.
        let resp = control.roundtrip(r#"{"id":1,"op":"shutdown"}"#).expect("shutdown");
        let shutdown_acked = u64::from(resp.contains("\"shutting_down\":true"));
        drop(idle);
        drop(probe);
        drop(control);
        let clean_exit = u64::from(child.wait().expect("child wait").success());

        report.wall = start.elapsed();
        let c = &mut report.counters;
        c.insert("idle_conns".into(), IDLE_CONNS);
        // Every accept is accounted for: the idle fleet, one mixed
        // client each, and the control connection. Nothing else dials
        // the child, so this is exact.
        c.insert("conns_accepted".into(), conns_accepted);
        c.insert("held_10k".into(), u64::from(conns_open >= IDLE_CONNS + 1));
        // Health polls share the control connection, so their frame
        // count varies with host speed; gate coverage, not the total.
        c.insert(
            "frames_decoded_covers_mixed".into(),
            u64::from(frames_decoded >= clients * (u64::from(iters) + 1)),
        );
        c.insert("net_workers".into(), workers);
        // O(workers) threads, not O(connections): the child runs a main
        // thread, the event loop, the worker pool, and a few runtime
        // extras — nowhere near one-per-connection.
        c.insert(
            "threads_bounded".into(),
            u64::from(threads_with_10k > 0 && threads_with_10k <= workers + 12),
        );
        // Wakeups scale with traffic (frames in, responses out,
        // accepts), never with idle time.
        c.insert(
            "wakeups_bounded".into(),
            u64::from(wakeups <= 6 * frames_decoded + 4 * conns_accepted + 4096),
        );
        c.insert("worker_queue_drained".into(), u64::from(queue_depth == 0));
        c.insert("idle_probe_ok".into(), probe_ok);
        c.insert("shutdown_acked".into(), shutdown_acked);
        c.insert("clean_child_exit".into(), clean_exit);
        report
    }

    /// One query frame whose response is ~1MB (10k unknown-class
    /// answers): larger than any default socket buffer pair, so an
    /// unread response must stall in the reactor's write buffer.
    fn bulky_frame(id: u64) -> String {
        let queries: Vec<J> = (0..10_000)
            .map(|i| obj(vec![("kind", s("satisfiable")), ("class", s(&format!("Nope{i}")))]))
            .collect();
        frame("bp", "w", id, "query", vec![("queries", Json::Arr(queries))])
    }

    fn reactor_config() -> ServerConfig {
        let mut config = ServerConfig::default();
        config.quota.deadline = None;
        config.quota.max_items = None;
        config.quota.max_pending = usize::MAX;
        config.net_mode = NetMode::Reactor;
        config
    }

    /// Phase 2: write-backpressure discipline, both sides of the cap.
    pub fn backpressure_phase() -> PhaseReport {
        let start = Instant::now();
        let mut tally = ClientTally::default();

        // Slow reader under the cap: responses must outgrow what the
        // kernel can absorb (tcp_wmem + tcp_rmem autotune maxima, tens
        // of MB on some hosts), stall in the reactor's buffer, then
        // drain in order once the client finally reads.
        const SLOW_FRAMES: u64 = 64;
        let mut config = reactor_config();
        config.max_write_buffer_bytes = 256 << 20; // never disconnect this leg
        let mut server = Server::spawn("127.0.0.1:0", config).expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let open = frame("bp", "w", 0, "open", vec![("schema", s(SCHEMA))]);
        let resp = client.roundtrip(&open).expect("open");
        assert!(resp.contains("\"ok\":true"), "open failed: {resp}");
        for id in 1..=SLOW_FRAMES {
            client.send(&bulky_frame(id)).expect("send");
        }
        let mut ordered = true;
        for id in 1..=SLOW_FRAMES {
            tally.requests += 1;
            let resp = client.read_response().expect("read");
            if !resp.contains(&format!("\"id\":{id},")) {
                ordered = false;
            }
        }
        let counters = server.service().net_counters();
        let stalls = counters.backpressure_stalls.load(Ordering::Relaxed);
        let under_cap_disconnects =
            counters.write_buffer_disconnects.load(Ordering::Relaxed);
        server.stop();

        // Over the cap: a non-reading client is disconnected exactly
        // once; the server stays healthy for a fresh client.
        let mut config = reactor_config();
        config.max_write_buffer_bytes = 64 * 1024;
        let mut server = Server::spawn("127.0.0.1:0", config).expect("bind capped");
        let mut hog = Client::connect(server.addr()).expect("connect hog");
        let open = frame("bp", "w", 0, "open", vec![("schema", s(SCHEMA))]);
        let resp = hog.roundtrip(&open).expect("open");
        assert!(resp.contains("\"ok\":true"), "open failed: {resp}");
        for id in 1..=24u64 {
            if hog.send(&bulky_frame(id)).is_err() {
                break; // already disconnected
            }
        }
        let counters = std::sync::Arc::clone(server.service().net_counters());
        let deadline = Instant::now() + Duration::from_secs(30);
        while counters.write_buffer_disconnects.load(Ordering::Relaxed) == 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let cap_disconnects = counters.write_buffer_disconnects.load(Ordering::Relaxed);
        let mut fresh = Client::connect(server.addr()).expect("connect fresh");
        tally.requests += 1;
        let resp = fresh.roundtrip(r#"{"id":9,"op":"ping"}"#).expect("ping");
        let healthy = u64::from(resp.contains("\"ok\":true"));
        server.stop();

        let wall = start.elapsed();
        let mut report = merge("reactor_backpressure", 2, vec![tally], wall);
        let c = &mut report.counters;
        c.insert("stall_observed".into(), u64::from(stalls >= 1));
        c.insert("ordered_drain".into(), u64::from(ordered));
        c.insert("under_cap_disconnects".into(), under_cap_disconnects);
        c.insert("cap_disconnects".into(), cap_disconnects);
        c.insert("healthy_after_disconnect".into(), healthy);
        report
    }
}

#[cfg(target_os = "linux")]
fn reactor_run(clients: u64, iters: u32) -> Vec<PhaseReport> {
    // The soft fd limit (often 1024) would cap the idle fleet; lift it
    // to the hard cap like the reactor server itself does.
    let _ = car_server::reactor::sys::raise_fd_limit();
    vec![
        reactor_phases::idle_dense_phase(clients, iters),
        reactor_phases::backpressure_phase(),
    ]
}

fn merge(
    name: &'static str,
    clients: u64,
    tallies: Vec<ClientTally>,
    wall: Duration,
) -> PhaseReport {
    let mut total = ClientTally::default();
    for t in tallies {
        total.requests += t.requests;
        total.proved += t.proved;
        total.disproved += t.disproved;
        total.unknown += t.unknown;
        total.mismatches += t.mismatches;
        total.edits_applied += t.edits_applied;
        total.latencies_us.extend(t.latencies_us);
    }
    let mut counters = BTreeMap::new();
    counters.insert("clients".into(), clients);
    counters.insert("requests".into(), total.requests);
    counters.insert("proved".into(), total.proved);
    counters.insert("disproved".into(), total.disproved);
    counters.insert("unknown".into(), total.unknown);
    counters.insert("replay_mismatches".into(), total.mismatches);
    if name == "loadgen_mixed" || name == "reactor_idle_dense" {
        counters.insert("edits_applied".into(), total.edits_applied);
    }
    total.latencies_us.sort_unstable();
    PhaseReport {
        name,
        counters,
        wall,
        latencies_us: total.latencies_us,
        requests: total.requests,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let at = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[at.min(sorted_us.len() - 1)]
}

/// Renders the `BENCH_6.json` document: same `"counters"` block shape
/// as `BENCH_5.json` (so [`counter_lines`] gates them), with the
/// wall-clock observations as separate, never-gated fields.
fn render(reports: &[PhaseReport]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"benches\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let throughput = if r.wall.as_secs_f64() > 0.0 {
            (r.requests as f64 / r.wall.as_secs_f64()).round() as u64
        } else {
            0
        };
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"wall_us\": {},\n      \
             \"p50_us\": {},\n      \"p99_us\": {},\n      \"throughput_rps\": {},\n      \
             \"counters\": {{",
            r.name,
            r.wall.as_micros(),
            percentile(&r.latencies_us, 0.50),
            percentile(&r.latencies_us, 0.99),
            throughput,
        );
        for (j, (k, v)) in r.counters.iter().enumerate() {
            let _ = write!(out, "{}\n        \"{}\": {}", if j > 0 { "," } else { "" }, k, v);
        }
        let _ = write!(out, "\n      }}\n    }}{}\n", if i + 1 < reports.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run(clients: u64, iters: u32) -> Vec<PhaseReport> {
    let mut config = ServerConfig::default();
    // No reasoning budget in the gated phases: answers must be
    // deterministic on arbitrarily slow hosts.
    config.quota.deadline = None;
    config.quota.max_items = None;
    // Deep enough that admission control never degrades the
    // deterministic phases (the pressure phase and the server test
    // suite cover degradation).
    config.quota.max_pending = usize::MAX;
    let mut server = Server::spawn("127.0.0.1:0", config).expect("bind loadgen server");
    let addr = server.addr();
    let reports = vec![
        mixed_phase("loadgen_mixed", addr, clients, iters),
        coalesce_phase(addr, clients, iters),
        pressure_phase(clients, iters.min(3)),
    ];
    server.stop();
    reports
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients: u64 = 120;
    let mut iters: u32 = 6;
    let mut check: Option<String> = None;
    let mut restart = false;
    let mut fleet = false;
    let mut reactor = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--restart" => restart = true,
            "--fleet" => fleet = true,
            "--reactor" => reactor = true,
            "--clients" => {
                i += 1;
                clients = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("car_loadgen: --clients needs a number");
                    std::process::exit(2)
                });
            }
            "--iters" => {
                i += 1;
                iters = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("car_loadgen: --iters needs a number");
                    std::process::exit(2)
                });
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("car_loadgen: --check needs a path");
                    std::process::exit(2)
                }));
            }
            other => {
                eprintln!(
                    "usage: car_loadgen [--restart | --fleet | --reactor] [--clients N] \
                     [--iters N] [--check BENCH.json]"
                );
                eprintln!("car_loadgen: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if u32::from(restart) + u32::from(fleet) + u32::from(reactor) > 1 {
        eprintln!("car_loadgen: --restart, --fleet and --reactor are mutually exclusive");
        return ExitCode::FAILURE;
    }
    #[cfg(not(target_os = "linux"))]
    if reactor {
        eprintln!("car_loadgen: --reactor requires Linux (epoll)");
        return ExitCode::FAILURE;
    }

    #[cfg(target_os = "linux")]
    let reports = if reactor {
        reactor_run(clients, iters)
    } else if fleet {
        fleet_run(clients, iters)
    } else if restart {
        restart_run(clients, iters)
    } else {
        run(clients, iters)
    };
    #[cfg(not(target_os = "linux"))]
    let reports = if fleet {
        fleet_run(clients, iters)
    } else if restart {
        restart_run(clients, iters)
    } else {
        run(clients, iters)
    };
    let fresh = render(&reports);
    match check {
        None => {
            print!("{fresh}");
            ExitCode::SUCCESS
        }
        Some(path) => {
            let committed = match std::fs::read_to_string(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("car_loadgen: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let want = counter_lines(&committed);
            let got = counter_lines(&fresh);
            if want == got {
                println!("car_loadgen: all {} counters match {path}", got.len());
                ExitCode::SUCCESS
            } else {
                eprintln!("car_loadgen: counter drift against {path}:");
                for line in &want {
                    if !got.contains(line) {
                        eprintln!("  - {line}");
                    }
                }
                for line in &got {
                    if !want.contains(line) {
                        eprintln!("  + {line}");
                    }
                }
                ExitCode::FAILURE
            }
        }
    }
}
