//! Quick deterministic bench telemetry driver.
//!
//! Two modes:
//!
//! - `bench_telemetry` — run every workload and print the `BENCH_8.json`
//!   document on stdout (redirect to regenerate the committed file).
//! - `bench_telemetry --check <path>` — run every workload and compare
//!   the deterministic counters against the committed document at
//!   `<path>`, ignoring all `wall_us` fields. Exits nonzero on any
//!   counter drift, listing each mismatched line.
//!
//! CI runs the `--check` mode so engine-work regressions (extra pivots,
//! extra propagations, changed model counts) fail the build while
//! wall-clock noise never does.

use car_bench::telemetry::{counter_lines, run_all, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            print!("{}", to_json(&run_all()));
            ExitCode::SUCCESS
        }
        [flag, path] if flag == "--check" => {
            let committed = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_telemetry: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let fresh = to_json(&run_all());
            let want = counter_lines(&committed);
            let got = counter_lines(&fresh);
            if want == got {
                println!(
                    "bench_telemetry: all {} counters match {path}",
                    got.len()
                );
                return ExitCode::SUCCESS;
            }
            eprintln!("bench_telemetry: counter drift against {path}:");
            for line in &want {
                if !got.contains(line) {
                    eprintln!("  - {line}");
                }
            }
            for line in &got {
                if !want.contains(line) {
                    eprintln!("  + {line}");
                }
            }
            ExitCode::FAILURE
        }
        _ => {
            eprintln!("usage: bench_telemetry [--check BENCH_8.json]");
            ExitCode::FAILURE
        }
    }
}
