//! Cold vs warm start through the durable store (ungated; wall-clock
//! observations only — the deterministic counters of the same workload
//! are gated through `car_loadgen --restart` / `BENCH_7.json`).
//!
//! Workload: the pigeonhole-block schema of `incremental_edits` —
//! every cluster is a pure DPLL refutation, so enumeration dominates
//! and the durable store's value is maximal. Three measured paths:
//!
//! * `cold_start` — a fresh workspace over an *empty* store answers
//!   coherence: full enumeration plus write-through.
//! * `warm_start` — a fresh workspace over the *populated* store: the
//!   enumerations come back from disk, only decode + expansion run.
//!   This is the restart path a recovering server takes per workspace.
//! * `memory_hit` — the same workspace asked again (whole-bundle
//!   cache): the in-memory floor the disk tier is bounded below by.
//!
//! A `[persistence]` summary line prints the one-shot cold/warm ratio
//! together with the workspace counters proving the warm run
//! re-enumerated nothing.

use car_core::incremental::Workspace;
use car_core::persist::{DiskStore, SharedStore, StoreLimits};
use car_core::reasoner::{ReasonerConfig, Strategy};
use car_core::syntax::{ClassFormula, SchemaBuilder};
use car_core::Schema;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pigeonhole blocks (= independent clusters recovered from disk).
const BLOCKS: usize = 8;
/// Holes per block; the refutation grows factorially in `HOLES`.
const HOLES: usize = 4;

fn php_blocks(blocks: usize, holes: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    for c in 0..blocks {
        let root = b.class(&format!("R{c}"));
        let h: Vec<Vec<_>> = (0..holes + 1)
            .map(|i| (0..holes).map(|j| b.class(&format!("H{c}_{i}_{j}"))).collect())
            .collect();
        let mut isa = ClassFormula::top();
        for row in &h {
            isa = isa.and(ClassFormula::union_of(row.iter().copied()));
        }
        b.define_class(root).isa(isa).finish();
        for i in 0..holes + 1 {
            for j in 0..holes {
                let mut f = ClassFormula::class(root);
                for (k, row) in h.iter().enumerate() {
                    if k != i {
                        f = f.and(ClassFormula::neg_class(row[j]));
                    }
                }
                b.define_class(h[i][j]).isa(f).finish();
            }
        }
    }
    b.build().unwrap()
}

fn config() -> ReasonerConfig {
    ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("car-bench-persistence-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path) -> SharedStore {
    Arc::new(Mutex::new(DiskStore::open_real(dir, StoreLimits::default()).unwrap()))
}

fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let base = php_blocks(BLOCKS, HOLES);
    let mut group = c.benchmark_group("persistence_restart");

    // Cold: every iteration starts from an empty store directory.
    let cold_dir = scratch("cold");
    group.bench_function("cold_start", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&cold_dir);
            let mut ws = Workspace::new(base.clone(), config());
            ws.set_store(open_store(&cold_dir));
            black_box(ws.try_is_coherent().unwrap())
        })
    });

    // Populate once; warm iterations restart over the full store.
    let warm_dir = scratch("warm");
    {
        let mut ws = Workspace::new(base.clone(), config());
        ws.set_store(open_store(&warm_dir));
        ws.try_is_coherent().unwrap();
    }
    group.bench_function("warm_start", |b| {
        b.iter(|| {
            let mut ws = Workspace::new(base.clone(), config());
            ws.set_store(open_store(&warm_dir));
            black_box(ws.try_is_coherent().unwrap())
        })
    });

    // Floor: the whole-bundle memory cache on a long-lived workspace.
    let mut hot = Workspace::new(base.clone(), config());
    hot.set_store(open_store(&warm_dir));
    hot.try_is_coherent().unwrap();
    group.bench_function("memory_hit", |b| {
        b.iter(|| black_box(hot.try_is_coherent().unwrap()))
    });
    group.finish();

    // One-shot summary with the counters that prove the warm path.
    let runs = 5;
    let cold = min_time(runs, || {
        let _ = std::fs::remove_dir_all(&cold_dir);
        let mut ws = Workspace::new(base.clone(), config());
        ws.set_store(open_store(&cold_dir));
        black_box(ws.try_is_coherent().unwrap());
    });
    let mut last_stats = None;
    let warm = min_time(runs, || {
        let mut ws = Workspace::new(base.clone(), config());
        ws.set_store(open_store(&warm_dir));
        black_box(ws.try_is_coherent().unwrap());
        last_stats = Some(ws.stats());
    });
    let stats = last_stats.unwrap();
    eprintln!(
        "[persistence] {BLOCKS} pigeonhole blocks ({} classes): cold start {cold:?}, \
         warm restart {warm:?} — {:.1}x; warm run: {} disk cluster hits, \
         {} rebuilt (must be 0)",
        base.num_classes(),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-12),
        stats.disk_cluster_hits,
        stats.clusters_rebuilt,
    );
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
