//! Incremental engine vs full rebuild on localized edits.
//!
//! Workload: `BLOCKS` independent pigeonhole blocks. Block `c` has a
//! root `Rc` whose isa demands each of `HOLES + 1` pigeons sit in one
//! of `HOLES` holes, while the hole classes exclude one another per
//! hole — so every block is one §4.4 cluster whose enumeration is a
//! full DPLL *refutation* (zero compound classes, exponential search).
//! That puts the entire cost in the stage the cluster cache can skip:
//! expansion and the acceptability fixpoint see no compound classes and
//! cost microseconds.
//!
//! A single-class edit rewrites `R0`'s isa inside block 0 and dirties
//! exactly that cluster; the [`Workspace`] splices the other
//! `BLOCKS − 1` refutations from its cluster cache, while a fresh
//! [`Reasoner`] re-searches all of them. The added clause is always a
//! *superset* of an existing pigeon clause, so it changes the cluster's
//! content key without enabling new unit propagation (the cluster
//! decomposition itself is untouched).
//!
//! Every measured edit is *unique* (the widened clause cycles through
//! `2^(3·HOLES)` subsets), so the workspace's whole-bundle cache never
//! hits — the measurement is the honest cluster-splice path, not a
//! lookup. The `[incremental]` line prints the one-shot speedup; the
//! workload is refutation-bound and single-threaded, so the number is
//! meaningful on 1-CPU runners too.

use car_core::incremental::{SchemaDelta, Workspace};
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_core::syntax::{ClassFormula, SchemaBuilder};
use car_core::Schema;
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::{Cell, RefCell};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Pigeonhole blocks per schema (clusters the incremental path skips).
const BLOCKS: usize = 10;
/// Holes per block: `HOLES + 1` pigeons, `(HOLES + 1) · HOLES + 1`
/// classes, and a DPLL refutation that grows factorially in `HOLES`.
const HOLES: usize = 4;

fn php_blocks(blocks: usize, holes: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    for c in 0..blocks {
        let root = b.class(&format!("R{c}"));
        let h: Vec<Vec<_>> = (0..holes + 1)
            .map(|i| (0..holes).map(|j| b.class(&format!("H{c}_{i}_{j}"))).collect())
            .collect();
        // Root: every pigeon is in some hole.
        let mut isa = ClassFormula::top();
        for row in &h {
            isa = isa.and(ClassFormula::union_of(row.iter().copied()));
        }
        b.define_class(root).isa(isa).finish();
        // Hole classes: tied to the root, exclusive per hole.
        for i in 0..holes + 1 {
            for j in 0..holes {
                let mut f = ClassFormula::class(root);
                for (k, row) in h.iter().enumerate() {
                    if k != i {
                        f = f.and(ClassFormula::neg_class(row[j]));
                    }
                }
                b.define_class(h[i][j]).isa(f).finish();
            }
        }
    }
    b.build().unwrap()
}

fn config() -> ReasonerConfig {
    ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() }
}

/// The `i`-th edit: append to `R0`'s isa a clause that widens pigeon
/// row 0's clause by the subset of rows 1..=3 selected by the bits of
/// `i`. A superset of an existing clause is logically redundant and
/// never becomes unit under a single-class closure, so block 0 keeps
/// its cluster shape but changes its content key — and consecutive
/// edits never repeat a schema version (no whole-bundle cache hits).
fn edit_for(schema: &Schema, i: u64) -> SchemaDelta {
    let mut isa = ClassFormula::top();
    for p in 0..HOLES + 1 {
        isa = isa.and(ClassFormula::union_of(
            (0..HOLES).map(|j| schema.class_id(&format!("H0_{p}_{j}")).unwrap()),
        ));
    }
    let nsub = 3 * HOLES;
    let mask = i % (1u64 << nsub);
    let mut clause: Vec<_> = (0..HOLES)
        .map(|j| schema.class_id(&format!("H0_0_{j}")).unwrap())
        .collect();
    for b in 0..nsub {
        if mask >> b & 1 == 1 {
            let (p, j) = (1 + b / HOLES, b % HOLES);
            clause.push(schema.class_id(&format!("H0_{p}_{j}")).unwrap());
        }
    }
    isa = isa.and(ClassFormula::union_of(clause));
    SchemaDelta::SetIsa { class: "R0".into(), isa }
}

fn min_time(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let base = php_blocks(BLOCKS, HOLES);

    let mut group = c.benchmark_group("incremental_edits");
    group.sample_size(10);

    // Reference: a fresh reasoner re-refutes every cluster after the edit.
    let edited = {
        let mut ws = Workspace::new(base.clone(), config());
        ws.apply(&edit_for(&base, 0)).unwrap();
        ws.schema().clone()
    };
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let r = Reasoner::with_config(&edited, config());
            black_box(r.try_is_coherent().unwrap())
        })
    });

    // Incremental: one warmed workspace, a unique edit per iteration.
    let ws = RefCell::new(Workspace::new(base.clone(), config()));
    ws.borrow_mut().try_is_coherent().unwrap(); // warm the cluster cache
    let counter = Cell::new(1u64);
    group.bench_function("workspace_edit", |b| {
        b.iter(|| {
            let mut ws = ws.borrow_mut();
            let i = counter.get();
            counter.set(i + 1);
            let delta = edit_for(&base, i);
            ws.apply(&delta).unwrap();
            black_box(ws.try_is_coherent().unwrap())
        })
    });
    group.finish();

    // One-shot summary (the acceptance number): min-of-n of each path.
    let runs = 5;
    let full = min_time(runs, || {
        let r = Reasoner::with_config(&edited, config());
        black_box(r.try_is_coherent().unwrap());
    });
    let mut ws = Workspace::new(base.clone(), config());
    ws.try_is_coherent().unwrap();
    let counter = Cell::new(1u64);
    let incremental = min_time(runs, || {
        let i = counter.get();
        counter.set(i + 1);
        ws.apply(&edit_for(&base, i)).unwrap();
        black_box(ws.try_is_coherent().unwrap());
    });
    let stats = ws.stats();
    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    eprintln!(
        "[incremental] single-class edit on {BLOCKS} pigeonhole blocks ({} classes): \
         full rebuild {full:?}, workspace {incremental:?} — {speedup:.1}x speedup \
         (target >= 5x); clusters reused {}, rebuilt {}",
        base.num_classes(),
        stats.clusters_reused,
        stats.clusters_rebuilt,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
