//! Experiment E2 — the two-phase algorithm against exhaustive
//! finite-model search. The oracle explodes with the universe bound and
//! the number of attributes/relations; the two-phase algorithm scales
//! with the (here, small) expansion instead. The crossover arrives
//! almost immediately.

use car_baseline::{search_model, BruteForceBudget};
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::generators::{random_schema, RandomSchemaParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Opt-in (`CAR_PAR_CHECK=1`) cross-check: the parallel reasoner must
/// return the very same answers and statistics as the serial one on the
/// benchmark schemas.
fn check_parallel_agreement(schemas: &[car_core::Schema]) {
    if std::env::var_os("CAR_PAR_CHECK").is_none() {
        return;
    }
    for (i, schema) in schemas.iter().enumerate() {
        let serial = Reasoner::with_config(
            schema,
            ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
        );
        let parallel = Reasoner::with_config(
            schema,
            ReasonerConfig {
                strategy: Strategy::Sat,
                threads: std::num::NonZeroUsize::new(4).unwrap(),
                ..Default::default()
            },
        );
        assert_eq!(
            serial.try_unsatisfiable_classes().unwrap(),
            parallel.try_unsatisfiable_classes().unwrap(),
            "schema #{i}"
        );
        assert_eq!(
            serial.try_stats().unwrap(),
            parallel.try_stats().unwrap(),
            "schema #{i}"
        );
    }
    eprintln!(
        "[par-check] serial and 4-thread reasoners agree on {} schemas",
        schemas.len()
    );
}

fn bench(c: &mut Criterion) {
    let params = RandomSchemaParams {
        classes: 3,
        attrs: 1,
        rels: 0,
        isa_density: 0.7,
        max_bound: 2,
    };
    let schemas: Vec<_> = (0..2).map(|seed| random_schema(&params, seed)).collect();
    check_parallel_agreement(&schemas);

    let mut group = c.benchmark_group("two_phase_vs_brute_force");
    group.sample_size(10);

    group.bench_function("two_phase/all_classes", |b| {
        b.iter(|| {
            for schema in &schemas {
                let r = Reasoner::with_config(
                    schema,
                    ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
                );
                black_box(r.try_unsatisfiable_classes().unwrap());
            }
        })
    });

    for max_universe in [2u32, 3] {
        group.bench_with_input(
            BenchmarkId::new("brute_force/all_classes", max_universe),
            &max_universe,
            |b, &max_universe| {
                let budget =
                    BruteForceBudget { max_universe, max_candidates: 5_000_000 };
                b.iter(|| {
                    for schema in &schemas {
                        for class in schema.symbols().class_ids() {
                            black_box(search_model(schema, class, &budget));
                        }
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
