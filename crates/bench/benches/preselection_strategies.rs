//! Experiment E7 — Theorem 4.6 + §4.3 preselection against the §4.2
//! naive sweep, on the two instance categories §4.3 distinguishes:
//!
//! * category β (clustered): the number of compound classes is polynomial
//!   once Theorem 4.6 disjointness is imposed — preselection should turn
//!   exponential into polynomial;
//! * category α (dense): the expansion is *necessarily* exponential, so
//!   every strategy pays — the heuristics must not help here, only not
//!   hurt.

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::generators::{clustered_schema, dense_schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn coherent(schema: &car_core::Schema, strategy: Strategy) -> bool {
    let r = Reasoner::with_config(
        schema,
        ReasonerConfig { strategy, ..Default::default() },
    );
    r.try_is_coherent().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("preselection/beta_clustered");
    group.sample_size(10);
    // k clusters of 4 classes each: n = 4k total classes. Naive is
    // 2^(4k); preselect is k · 2^4.
    for clusters in [2usize, 3, 4] {
        let schema = clustered_schema(clusters, 4);
        if schema.num_classes() <= 16 {
            group.bench_with_input(
                BenchmarkId::new("naive", clusters * 4),
                &schema,
                |b, s| b.iter(|| black_box(coherent(s, Strategy::Naive))),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("preselect", clusters * 4),
            &schema,
            |b, s| b.iter(|| black_box(coherent(s, Strategy::Preselect))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("preselection/alpha_dense");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let schema = dense_schema(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &schema, |b, s| {
            b.iter(|| black_box(coherent(s, Strategy::Naive)))
        });
        group.bench_with_input(BenchmarkId::new("preselect", n), &schema, |b, s| {
            b.iter(|| black_box(coherent(s, Strategy::Preselect)))
        });
    }
    group.finish();

    // Shape report: compound-class counts per strategy and category.
    eprintln!("[E7] compound classes (category beta, clusters of 4):");
    for clusters in [2usize, 3, 4, 8, 16] {
        let schema = clustered_schema(clusters, 4);
        let r = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        let preselect_ccs = r.try_stats().unwrap().num_compound_classes;
        let naive_ccs: String = if schema.num_classes() <= 20 {
            let r = Reasoner::with_config(
                &schema,
                ReasonerConfig { strategy: Strategy::Naive, ..Default::default() },
            );
            r.try_stats().unwrap().num_compound_classes.to_string()
        } else {
            format!("(2^{} - …)", schema.num_classes())
        };
        eprintln!(
            "  n={:3}  naive={naive_ccs:>12}  preselect={preselect_ccs}",
            clusters * 4
        );
    }
    eprintln!("[E7] compound classes (category alpha, dense):");
    for n in [6usize, 8, 10, 12] {
        let schema = dense_schema(n);
        let r = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        eprintln!(
            "  n={n:3}  preselect={} (necessarily ~2^n)",
            r.try_stats().unwrap().num_compound_classes
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
