//! Experiment E3 — Theorem 4.1: the Turing-machine reduction. Encoding
//! is polynomial (schema size series below); deciding the encoded
//! schemas is the provably-hard part, and the solve series shows the
//! steep growth with the clock bound.

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::{encode_tm, TuringMachine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = TuringMachine::parity_machine();

    let mut group = c.benchmark_group("exptime_reduction/encode");
    group.sample_size(20);
    for (t, s) in [(2usize, 2usize), (4, 4), (8, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("T{t}xS{s}")),
            &(t, s),
            |b, &(t, s)| b.iter(|| black_box(encode_tm(&machine, &[1, 1], t, s))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("exptime_reduction/solve");
    group.sample_size(10);
    {
        let (t, s) = (2usize, 2usize);
        let enc = encode_tm(&machine, &[1, 1], t, s);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("T{t}xS{s}")),
            &enc,
            |b, enc| {
                b.iter(|| {
                    let r = Reasoner::with_config(
                        &enc.schema,
                        ReasonerConfig {
                            strategy: Strategy::Preselect,
                            ..Default::default()
                        },
                    );
                    black_box(enc.accepts(&r).unwrap())
                })
            },
        );
    }
    group.finish();

    // One-shot solve timing for the larger grid (too slow for a
    // criterion loop).
    {
        let enc = encode_tm(&machine, &[1, 1], 3, 3);
        let r = Reasoner::with_config(
            &enc.schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        let t0 = std::time::Instant::now();
        let accepts = enc.accepts(&r).unwrap();
        eprintln!("[E3] solve T=3 S=3: accepts={accepts} [{:?}]", t0.elapsed());
    }

    eprintln!("[E3] encoded schema sizes (parity machine, input [1,1]):");
    for (t, s) in [(2usize, 2usize), (3, 3), (4, 4), (6, 6), (8, 8)] {
        let enc = encode_tm(&machine, &[1, 1], t, s);
        eprintln!(
            "  T={t:2} S={s:2}  classes={:5}  attrs={:4}  (grid cells: {})",
            enc.schema.num_classes(),
            enc.schema.num_attrs(),
            (t + 1) * s
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
