//! Cost of the resource-governance layer. Every potentially exponential
//! loop in the pipeline now polls a `Budget` checkpoint; this bench
//! measures what that costs on the phase2_scaling shapes, in the two
//! regimes that matter:
//!
//! * **inactive** (the default `Budget::unbounded()`): a checkpoint is
//!   one relaxed atomic load and a branch — this is the price every
//!   ungoverned caller pays, and it should be noise (< 2% end to end);
//! * **active** (deadline/step/memory limits set): checkpoints also
//!   `fetch_add` a shared step counter — the price of actually being
//!   able to interrupt the run.
//!
//! Criterion reports both per shape; the `[budget]` lines print a
//! one-shot summary of active-over-inactive overhead for the record.

use car_core::clusters::clustered_ccs;
use car_core::enumerate;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::preselection::Preselection;
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_core::satisfiability::{AnalysisOptions, SatAnalysis};
use car_core::syntax::{ClassFormula, SchemaBuilder};
use car_core::Budget;
use car_reductions::generators::ratio_chain_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

fn expansion_of(schema: &car_core::Schema) -> Expansion {
    let pre = Preselection::compute(schema);
    let ccs = clustered_ccs(schema, &pre, usize::MAX).unwrap();
    Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap()
}

/// Same enumeration-bound shape as `phase2_scaling/parallel_sweep`:
/// `n` pairwise-disjoint classes make the naive `2^n` candidate sweep
/// (checkpointed once per candidate) dominate the runtime.
fn disjoint_classes_schema(n: usize) -> car_core::Schema {
    let mut b = SchemaBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.class(&format!("D{i}"))).collect();
    for (i, &di) in ids.iter().enumerate().skip(1) {
        let mut formula = ClassFormula::neg_class(ids[0]);
        for &dj in &ids[1..i] {
            formula = formula.and(ClassFormula::neg_class(dj));
        }
        b.define_class(di).isa(formula).finish();
    }
    b.build().unwrap()
}

/// An active budget that never trips: all checkpoint bookkeeping, no
/// interruption.
fn active_budget() -> Budget {
    Budget::counting()
}

/// Minimum of `n` timed runs of `f` — the usual noise-robust one-shot
/// estimate for the printed summary.
fn min_time(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn overhead_pct(base: Duration, governed: Duration) -> f64 {
    (governed.as_secs_f64() / base.as_secs_f64().max(1e-12) - 1.0) * 100.0
}

fn bench(c: &mut Criterion) {
    // Fixpoint-bound shapes: the ratio chains of phase2_scaling.
    let mut group = c.benchmark_group("budget_overhead/fixpoint");
    group.sample_size(10);
    for len in [4usize, 8, 12] {
        let schema = ratio_chain_schema(len, 2);
        let expansion = expansion_of(&schema);
        let opts = AnalysisOptions::default();
        group.bench_with_input(BenchmarkId::new("inactive", len), &expansion, |b, exp| {
            b.iter(|| black_box(SatAnalysis::run(exp)))
        });
        let budget = active_budget();
        group.bench_with_input(BenchmarkId::new("active", len), &expansion, |b, exp| {
            b.iter(|| black_box(SatAnalysis::try_run_with_budget(exp, &opts, &budget).unwrap()))
        });
    }
    group.finish();

    // Enumeration-bound shape: the 2^18 candidate sweep.
    let sweep_schema = disjoint_classes_schema(18);
    let mut group = c.benchmark_group("budget_overhead/enumeration");
    group.sample_size(10);
    group.bench_function("inactive", |b| {
        b.iter(|| black_box(enumerate::naive(&sweep_schema, usize::MAX).unwrap()))
    });
    let budget = active_budget();
    group.bench_function("active", |b| {
        b.iter(|| {
            black_box(
                enumerate::naive_governed(&sweep_schema, usize::MAX, &budget).unwrap(),
            )
        })
    });
    group.finish();

    // One-shot end-to-end summary through the reasoner facade.
    let runs = 5;
    let end_to_end = |budget: Budget| {
        let schema = &sweep_schema;
        min_time(runs, move || {
            let r = Reasoner::with_config(
                schema,
                ReasonerConfig {
                    strategy: Strategy::Naive,
                    budget: budget.clone(),
                    ..Default::default()
                },
            );
            black_box(r.try_is_coherent().unwrap());
        })
    };
    let inactive = end_to_end(Budget::unbounded());
    let active = end_to_end(active_budget());
    eprintln!(
        "[budget] end-to-end coherence over 2^18 candidates: \
         inactive {inactive:?}, active {active:?} ({:+.2}% for live accounting); \
         target: inactive checkpoints < 2% over ungoverned code",
        overhead_pct(inactive, active),
    );

    let expansion = expansion_of(&ratio_chain_schema(12, 2));
    let opts = AnalysisOptions::default();
    let fix_inactive = min_time(runs, || {
        black_box(SatAnalysis::run(&expansion));
    });
    let budget = active_budget();
    let fix_active = min_time(runs, || {
        black_box(SatAnalysis::try_run_with_budget(&expansion, &opts, &budget).unwrap());
    });
    eprintln!(
        "[budget] fixpoint on ratio chain len=12: inactive {fix_inactive:?}, \
         active {fix_active:?} ({:+.2}%); {} checkpoints consumed",
        overhead_pct(fix_inactive, fix_active),
        budget.checkpoints_used(),
    );
    let threads = NonZeroUsize::new(4).unwrap();
    let par_opts = AnalysisOptions { threads, ..Default::default() };
    let par_budget = active_budget();
    let fix_par = min_time(runs, || {
        black_box(
            SatAnalysis::try_run_with_budget(&expansion, &par_opts, &par_budget).unwrap(),
        );
    });
    eprintln!(
        "[budget] same fixpoint, 4 threads sharing one active budget: {fix_par:?} \
         (shared step counter contention check)",
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
