//! Experiment E5 — Theorem 4.2: the Intersection Pattern reduction on
//! union-free, negation-free schemas. Encoding is linear in the matrix;
//! solving grows with the number of sets.

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::encode_pattern;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A realizable pattern over `n` sets: pairwise intersections of size 1
/// through one shared element, diagonals 2.
fn shared_element_pattern(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { 2 } else { 1 }).collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("np_reduction");
    group.sample_size(10);

    for n in [2usize, 3] {
        let matrix = shared_element_pattern(n);
        group.bench_with_input(BenchmarkId::new("encode", n), &matrix, |b, m| {
            b.iter(|| black_box(encode_pattern(m)))
        });
        let enc = encode_pattern(&matrix);
        group.bench_with_input(BenchmarkId::new("solve", n), &enc, |b, enc| {
            b.iter(|| {
                let r = Reasoner::with_config(
                    &enc.schema,
                    ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
                );
                black_box(r.try_is_satisfiable(enc.anchor).unwrap())
            })
        });
    }
    group.finish();

    {
        let enc = encode_pattern(&shared_element_pattern(4));
        let r = Reasoner::with_config(
            &enc.schema,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        let t0 = std::time::Instant::now();
        let sat = r.try_is_satisfiable(enc.anchor).unwrap();
        eprintln!("[E5] solve n=4: satisfiable={sat} [{:?}]", t0.elapsed());
    }

    eprintln!("[E5] pattern-encoding sizes (shared-element pattern):");
    for n in [2usize, 3, 4, 6, 8] {
        let enc = encode_pattern(&shared_element_pattern(n));
        eprintln!(
            "  sets={n:2}  classes={:4}  attrs={:4}  union-free={} negation-free={}",
            enc.schema.num_classes(),
            enc.schema.num_attrs(),
            enc.schema.is_union_free(),
            enc.schema.is_negation_free(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
