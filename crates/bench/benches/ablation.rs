//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * the LP-free structural-death pre-pass before the acceptability
//!   fixpoint (vs. letting LP support calls do all the killing);
//! * the Theorem 4.6 disjointness assumption inside the Preselect
//!   strategy (vs. SAT enumeration with only the sound criterion-(a)
//!   clauses).
//!
//! Verdicts are identical in every configuration (asserted below);
//! only the work distribution changes.

use car_core::enumerate;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_core::satisfiability::{AnalysisOptions, SatAnalysis};
use car_reductions::generators::clustered_schema;
use car_reductions::{encode_tm, TuringMachine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Workload 1: a Theorem 4.1 grid — rich in structurally-dead
    // variants (unjustifiable arrivals), the pre-pass's best case.
    let enc = encode_tm(&TuringMachine::parity_machine(), &[1], 2, 2);
    let pre = car_core::preselection::Preselection::compute(&enc.schema);
    let ccs = car_core::clusters::clustered_ccs(&enc.schema, &pre, usize::MAX).unwrap();
    let tm_expansion = Expansion::build(&enc.schema, ccs, &ExpansionLimits::default()).unwrap();

    // Sanity: identical verdicts with and without the pre-pass.
    let with = SatAnalysis::run_with_options(
        &tm_expansion,
        &AnalysisOptions { structural_propagation: true, ..Default::default() },
    );
    let without = SatAnalysis::run_with_options(
        &tm_expansion,
        &AnalysisOptions { structural_propagation: false, ..Default::default() },
    );
    assert_eq!(with.realizable(), without.realizable());
    eprintln!(
        "[ablation] structural pre-pass on TM grid: lp_calls {} -> {}",
        without.stats().lp_calls,
        with.stats().lp_calls
    );

    let mut group = c.benchmark_group("ablation/structural_prepass");
    group.sample_size(10);
    group.bench_function("on", |b| {
        b.iter(|| {
            black_box(SatAnalysis::run_with_options(
                &tm_expansion,
                &AnalysisOptions { structural_propagation: true, ..Default::default() },
            ))
        })
    });
    group.bench_function("off", |b| {
        b.iter(|| {
            black_box(SatAnalysis::run_with_options(
                &tm_expansion,
                &AnalysisOptions { structural_propagation: false, ..Default::default() },
            ))
        })
    });
    group.finish();

    // Workload 2: clustered schema — Theorem 4.6 clustering vs plain SAT
    // enumeration (criterion-(a) clauses only).
    let schema = clustered_schema(3, 4);
    let mut group = c.benchmark_group("ablation/theorem_4_6");
    group.sample_size(10);
    group.bench_function("preselect_clusters", |b| {
        b.iter(|| {
            let r = Reasoner::with_config(
                &schema,
                ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
            );
            black_box(r.try_is_coherent().unwrap())
        })
    });
    group.bench_function("sat_no_clusters", |b| {
        b.iter(|| {
            let r = Reasoner::with_config(
                &schema,
                ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
            );
            black_box(r.try_is_coherent().unwrap())
        })
    });
    group.finish();

    let sat_ccs = enumerate::sat_models(&schema, &[], usize::MAX).unwrap().len();
    let pre = car_core::preselection::Preselection::compute(&schema);
    let clustered = car_core::clusters::clustered_ccs(&schema, &pre, usize::MAX)
        .unwrap()
        .len();
    eprintln!(
        "[ablation] Theorem 4.6 on clustered(3,4): compound classes {sat_ccs} -> {clustered}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
