//! Experiment E8 — generalization hierarchies (§4.4): with the fast
//! path, compound classes equal classes and the whole method is
//! polynomial; the series below should grow near-linearly while the
//! naive strategy explodes.

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::generators::hierarchy_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_scaling");
    group.sample_size(10);

    // Balanced binary trees: depth d has 2^(d+1) - 1 classes.
    for depth in [3usize, 5, 7] {
        let schema = hierarchy_schema(depth, 2);
        let n = schema.num_classes();
        group.bench_with_input(BenchmarkId::new("auto_fast_path", n), &schema, |b, s| {
            b.iter(|| {
                let r = Reasoner::with_config(
                    s,
                    ReasonerConfig { strategy: Strategy::Auto, ..Default::default() },
                );
                black_box(r.try_is_coherent().unwrap())
            })
        });
        if n <= 15 {
            group.bench_with_input(BenchmarkId::new("naive", n), &schema, |b, s| {
                b.iter(|| {
                    let r = Reasoner::with_config(
                        s,
                        ReasonerConfig { strategy: Strategy::Naive, ..Default::default() },
                    );
                    black_box(r.try_is_coherent().unwrap())
                })
            });
        }
    }
    group.finish();

    // Shape report: #compound classes must equal #classes (§4.4).
    eprintln!("[E8] generalization hierarchies (binary, by depth):");
    for depth in [3usize, 5, 7, 9] {
        let schema = hierarchy_schema(depth, 2);
        let r = Reasoner::with_config(
            &schema,
            ReasonerConfig { strategy: Strategy::Auto, ..Default::default() },
        );
        let stats = r.try_stats().unwrap();
        eprintln!(
            "  classes={:5}  compound classes={:5}  (equal: {})",
            schema.num_classes(),
            stats.num_compound_classes,
            schema.num_classes() == stats.num_compound_classes
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
