//! Experiment E4 — Theorem 4.3: phase 2 (deciding acceptable integer
//! solutions of `ΨS`) is polynomial in the size of the system. The
//! ratio-chain family grows the system linearly with a trivial phase 1,
//! isolating phase-2 cost; the reported times should scale polynomially
//! (compare successive ratios — no doubling-per-step blow-up).

use car_core::clusters::clustered_ccs;
use car_core::disequations::DisequationSystem;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::preselection::Preselection;
use car_core::satisfiability::SatAnalysis;
use car_reductions::generators::ratio_chain_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn expansion_of(schema: &car_core::Schema) -> Expansion {
    // Preselection keeps phase 1 linear in the chain length, isolating
    // phase-2 cost (the point of this experiment).
    let pre = Preselection::compute(schema);
    let ccs = clustered_ccs(schema, &pre, usize::MAX).unwrap();
    Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2_scaling");
    group.sample_size(10);

    for len in [2usize, 4, 8, 12] {
        let schema = ratio_chain_schema(len, 2);
        let expansion = expansion_of(&schema);
        let sys = DisequationSystem::build(&expansion, &[]);
        let unknowns = sys.num_unknowns();
        group.bench_with_input(
            BenchmarkId::new("acceptable_solution", unknowns),
            &expansion,
            |b, exp| b.iter(|| black_box(SatAnalysis::run(exp))),
        );
    }
    group.finish();

    eprintln!("[E4] phase-2 system sizes and LP work (ratio chains, grow=2):");
    for len in [2usize, 4, 8, 12, 16] {
        let schema = ratio_chain_schema(len, 2);
        let expansion = expansion_of(&schema);
        let sys = DisequationSystem::build(&expansion, &[]);
        let analysis = SatAnalysis::run(&expansion);
        eprintln!(
            "  chain={len:3}  unknowns={:4}  disequations={:4}  lp_calls={:3}  iterations={}",
            sys.num_unknowns(),
            sys.num_disequations(),
            analysis.stats().lp_calls,
            analysis.stats().iterations,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
