//! Experiment E4 — Theorem 4.3: phase 2 (deciding acceptable integer
//! solutions of `ΨS`) is polynomial in the size of the system. The
//! ratio-chain family grows the system linearly with a trivial phase 1,
//! isolating phase-2 cost; the reported times should scale polynomially
//! (compare successive ratios — no doubling-per-step blow-up).

use car_core::clusters::clustered_ccs;
use car_core::disequations::DisequationSystem;
use car_core::enumerate;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::preselection::Preselection;
use car_core::satisfiability::{AnalysisOptions, SatAnalysis};
use car_core::syntax::{ClassFormula, SchemaBuilder};
use car_reductions::generators::ratio_chain_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Instant;

fn expansion_of(schema: &car_core::Schema) -> Expansion {
    // Preselection keeps phase 1 linear in the chain length, isolating
    // phase-2 cost (the point of this experiment).
    let pre = Preselection::compute(schema);
    let ccs = clustered_ccs(schema, &pre, usize::MAX).unwrap();
    Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap()
}

/// `n` pairwise-disjoint classes: every candidate subset except the
/// singletons is inconsistent, so the naive `2^n` sweep dominates the
/// runtime while the surviving expansion (and its LP) stays tiny — the
/// enumeration-bound workload the parallel layer targets.
fn disjoint_classes_schema(n: usize) -> car_core::Schema {
    let mut b = SchemaBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.class(&format!("D{i}"))).collect();
    for (i, &di) in ids.iter().enumerate().skip(1) {
        let mut formula = ClassFormula::neg_class(ids[0]);
        for &dj in &ids[1..i] {
            formula = formula.and(ClassFormula::neg_class(dj));
        }
        b.define_class(di).isa(formula).finish();
    }
    b.build().unwrap()
}

/// Opt-in (`CAR_PAR_CHECK=1`) cross-check: every thread count must
/// produce the same analysis on the benchmark expansions.
fn check_parallel_agreement(expansions: &[Expansion]) {
    if std::env::var_os("CAR_PAR_CHECK").is_none() {
        return;
    }
    for (i, exp) in expansions.iter().enumerate() {
        let serial = SatAnalysis::run(exp);
        let parallel = SatAnalysis::run_with_options(
            exp,
            &AnalysisOptions {
                threads: NonZeroUsize::new(4).unwrap(),
                ..Default::default()
            },
        );
        assert_eq!(serial.realizable(), parallel.realizable(), "expansion #{i}");
        assert_eq!(serial.witness(), parallel.witness(), "expansion #{i}");
        assert_eq!(serial.stats(), parallel.stats(), "expansion #{i}");
    }
    eprintln!(
        "[par-check] serial and 4-thread analyses agree on {} expansions",
        expansions.len()
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2_scaling");
    group.sample_size(10);

    let mut expansions = Vec::new();
    for len in [2usize, 4, 8, 12] {
        let schema = ratio_chain_schema(len, 2);
        let expansion = expansion_of(&schema);
        let sys = DisequationSystem::build(&expansion, &[]);
        let unknowns = sys.num_unknowns();
        group.bench_with_input(
            BenchmarkId::new("acceptable_solution", unknowns),
            &expansion,
            |b, exp| b.iter(|| black_box(SatAnalysis::run(exp))),
        );
        expansions.push(expansion);
    }
    group.finish();
    check_parallel_agreement(&expansions);

    // Parallel enumeration sweep: the 2^20-candidate consistency sweep
    // sharded over the workers. On a multi-core host the 4-thread run
    // should be >= 1.5x faster; the result vector is identical (asserted)
    // for every thread count.
    let sweep_schema = disjoint_classes_schema(20);
    let serial_ccs = enumerate::naive(&sweep_schema, usize::MAX).unwrap();
    let mut group = c.benchmark_group("phase2_scaling/parallel_sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let t = NonZeroUsize::new(threads).unwrap();
        assert_eq!(
            enumerate::naive_par(&sweep_schema, usize::MAX, t).unwrap(),
            serial_ccs
        );
        group.bench_with_input(
            BenchmarkId::new("naive_enumeration_20_classes", threads),
            &t,
            |b, &t| {
                b.iter(|| black_box(enumerate::naive_par(&sweep_schema, usize::MAX, t).unwrap()))
            },
        );
    }
    group.finish();

    // One-shot wall-clock comparison, printed for the record (criterion
    // already reports per-thread-count timings above).
    let mut elapsed = Vec::new();
    for threads in [1usize, 4] {
        let t = NonZeroUsize::new(threads).unwrap();
        let start = Instant::now();
        black_box(enumerate::naive_par(&sweep_schema, usize::MAX, t).unwrap());
        elapsed.push(start.elapsed());
    }
    eprintln!(
        "[par] naive sweep over 2^20 candidates: 1 thread {:?}, 4 threads {:?} ({:.2}x); \
         host has {} cpu(s)",
        elapsed[0],
        elapsed[1],
        elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9),
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    );

    eprintln!("[E4] phase-2 system sizes and LP work (ratio chains, grow=2):");
    for len in [2usize, 4, 8, 12, 16] {
        let schema = ratio_chain_schema(len, 2);
        let expansion = expansion_of(&schema);
        let sys = DisequationSystem::build(&expansion, &[]);
        let analysis = SatAnalysis::run(&expansion);
        eprintln!(
            "  chain={len:3}  unknowns={:4}  disequations={:4}  lp_calls={:3}  iterations={}",
            sys.num_unknowns(),
            sys.num_disequations(),
            analysis.stats().lp_calls,
            analysis.stats().iterations,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
