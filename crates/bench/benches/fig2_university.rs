//! Experiment E1 — the paper's Figure 2 schema as a benchmark workload:
//! parse, full satisfiability analysis, implication queries, and model
//! extraction.

use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_parser::parse_schema;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const FIGURE_2: &str = include_str!("../../../tests/data/figure2.car");

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_university");
    group.sample_size(20);

    group.bench_function("parse", |b| {
        b.iter(|| parse_schema(black_box(FIGURE_2)).unwrap());
    });

    let schema = parse_schema(FIGURE_2).unwrap();

    for (name, strategy) in [
        ("satisfiability/naive", Strategy::Naive),
        ("satisfiability/sat", Strategy::Sat),
        ("satisfiability/preselect", Strategy::Preselect),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = Reasoner::with_config(
                    &schema,
                    ReasonerConfig { strategy, arity_reduction: true, ..Default::default() },
                );
                let unsat = r.try_unsatisfiable_classes().unwrap();
                black_box(unsat)
            });
        });
    }

    group.finish();

    // Classification and model extraction build the complete (Sat)
    // expansion — tens of seconds each, so they are timed once for the
    // shape report instead of inside a criterion loop.
    {
        let r = Reasoner::new(&schema);
        let t0 = std::time::Instant::now();
        let pairs = r.classification();
        eprintln!("[fig2] classification: {} pairs [{:?}]", pairs.len(), t0.elapsed());
        let t0 = std::time::Instant::now();
        let model = r.extract_model().unwrap();
        eprintln!(
            "[fig2] extract_model: {} objects [{:?}] (cached full analysis)",
            model.universe_size(),
            t0.elapsed()
        );
    }

    // One-shot shape report for EXPERIMENTS.md.
    let r = Reasoner::with_config(
        &schema,
        ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
    );
    let stats = r.try_stats().unwrap();
    eprintln!("[fig2] expansion: {stats:?}");
    eprintln!(
        "[fig2] coherent: {}, subsumptions: {}",
        r.try_is_coherent().unwrap(),
        r.classification().len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
