//! Experiment E6 — Theorem 4.5: reifying wide relations. Without the
//! transform the number of compound relations grows as `|C̄|^K` with the
//! arity `K`; with it, each reified relation contributes one compound
//! class and `K` binary relations — the series below shows the crossover.

use car_core::arity::reduce_arities;
use car_core::enumerate;
use car_core::expansion::{Expansion, ExpansionLimits};
use car_core::reasoner::{Reasoner, ReasonerConfig, Strategy};
use car_reductions::generators::kary_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn compound_rels(schema: &car_core::Schema) -> usize {
    let ccs = enumerate::sat_models(schema, &[], usize::MAX).unwrap();
    let exp = Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap();
    exp.compound_rels().len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("arity_reduction");
    group.sample_size(10);

    for arity in [3usize, 4] {
        let schema = kary_schema(arity, 2);
        group.bench_with_input(
            BenchmarkId::new("direct", arity),
            &schema,
            |b, s| {
                b.iter(|| {
                    let r = Reasoner::with_config(
                        s,
                        ReasonerConfig {
                            strategy: Strategy::Preselect,
                            arity_reduction: false,
                            ..Default::default()
                        },
                    );
                    black_box(r.try_is_coherent().unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reified", arity),
            &schema,
            |b, s| {
                b.iter(|| {
                    let r = Reasoner::with_config(
                        s,
                        ReasonerConfig {
                            strategy: Strategy::Preselect,
                            arity_reduction: true,
                            ..Default::default()
                        },
                    );
                    black_box(r.try_is_coherent().unwrap())
                })
            },
        );
    }
    group.finish();

    eprintln!("[E6] compound relations, direct vs reified (k-ary family):");
    for arity in [2usize, 3, 4, 5, 6] {
        let schema = kary_schema(arity, 2);
        let direct = compound_rels(&schema);
        let reified = compound_rels(&reduce_arities(&schema).unwrap().schema);
        eprintln!("  K={arity}  direct={direct:6}  reified={reified:6}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
