//! Workspace durability: snapshot files plus an append-only op journal.
//!
//! Each persisted workspace owns one directory holding
//!
//! * `snapshot.car` — the full state (schema, undo and redo stacks) at
//!   some instant, checksummed and atomically replaced; and
//! * `journal.log` — checksummed, sequence-numbered records of every
//!   state-changing operation since, replayed on top of the snapshot
//!   at recovery.
//!
//! **Replay rules.** Every record carries a monotonically increasing
//! sequence number, and the snapshot records the last sequence number
//! it covers. Recovery replays exactly the records that (a) verify
//! (frame intact, checksum matches), (b) are newer than the snapshot,
//! and (c) form a contiguous run starting right after it. The first
//! record that fails any check ends replay: a torn or corrupt tail
//! costs the operations in it, never correctness — the recovered state
//! is always some *prefix* of the true history. Records older than the
//! snapshot are skipped, which makes the snapshot-then-truncate
//! compaction sequence crash-safe at every instant (a crash between
//! the two steps leaves stale records that replay provably ignores).
//!
//! **Torn-tail repair.** The writer tracks the last known-good journal
//! length; after a failed append the file is truncated back to it
//! before the next record goes out, so one bad write cannot corrupt
//! later ones.
//!
//! **Epoch fencing.** Every journal record and snapshot additionally
//! carries the writer's fencing *epoch* (granted by
//! [`crate::persist::lease::Lease`]; 0 for lease-less use). A new
//! leaseholder snapshots at its higher epoch before serving, so replay
//! can enforce: a record whose epoch is *below* the snapshot's came
//! from a deposed writer and is skipped (counted in
//! [`Recovered::fenced_records`]) without breaking the successor's
//! sequence chain; a record *above* the snapshot's cannot exist in a
//! clean history and ends replay as a damaged tail. This is what makes
//! a paused zombie leader harmless: whatever it appends after takeover
//! is fenced at the next recovery instead of interleaving with the
//! successor's records.
//!
//! **Generation seqlock.** Lease-less readers (followers) need to know
//! when the snapshot/journal pair is mid-compaction. The `gen` file is
//! bumped to an odd value before the snapshot is replaced and back to
//! even after the journal is truncated; a follower re-reads it around
//! recovery and retries while it is odd or changed.

use super::codec::{self, fnv64};
use super::disk::Disk;
use crate::incremental::SchemaDelta;
use crate::syntax::Schema;
use std::io;
use std::path::{Path, PathBuf};

/// Magic tag of a snapshot file.
pub const SNAP_MAGIC: &str = "CARSNAP1";

/// One state-changing workspace operation, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A schema edit.
    Apply(SchemaDelta),
    /// One undo step.
    Undo,
    /// One redo step.
    Redo,
}

impl JournalOp {
    fn encode(&self) -> String {
        match self {
            JournalOp::Apply(delta) => format!("apply {}", codec::encode_delta(delta)),
            JournalOp::Undo => "undo".to_owned(),
            JournalOp::Redo => "redo".to_owned(),
        }
    }

    fn decode(line: &str) -> Option<JournalOp> {
        match line {
            "undo" => Some(JournalOp::Undo),
            "redo" => Some(JournalOp::Redo),
            _ => Some(JournalOp::Apply(codec::decode_delta(line.strip_prefix("apply ")?)?)),
        }
    }
}

/// A workspace state recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Tenant name recorded in the snapshot.
    pub tenant: String,
    /// Workspace name recorded in the snapshot.
    pub workspace: String,
    /// Schema at snapshot time.
    pub schema: Schema,
    /// Undo stack at snapshot time, oldest first.
    pub undo: Vec<Schema>,
    /// Redo stack at snapshot time, oldest first.
    pub redo: Vec<Schema>,
    /// Verified post-snapshot operations, in order, to replay.
    pub ops: Vec<JournalOp>,
    /// `true` when a torn or corrupt journal tail cut replay short.
    pub truncated_tail: bool,
    /// Fencing epoch recorded in the snapshot.
    pub epoch: u64,
    /// Intact records skipped because their epoch predates the
    /// snapshot's — appends by a deposed writer, rejected by fencing.
    pub fenced_records: u64,
    /// The primed writer for continued journaling.
    pub dir: WorkspaceDir,
}

/// Writer side of one workspace's durability directory.
#[derive(Debug)]
pub struct WorkspaceDir {
    dir: PathBuf,
    disk: Disk,
    /// Sequence number of the last appended (or recovered) record.
    seq: u64,
    /// Fencing epoch stamped into every record and snapshot this writer
    /// produces (0 for lease-less use).
    epoch: u64,
    /// Byte length of the verified journal prefix.
    good_len: u64,
    /// A failed append may have left a torn tail past `good_len`.
    dirty_tail: bool,
    ops_since_snapshot: u64,
    /// A detached writer no-ops every write: the directory has been
    /// handed to a successor (workspace replaced or closed) and this
    /// handle must never touch the files again.
    detached: bool,
}

impl WorkspaceDir {
    /// Creates (or attaches to) a workspace directory for *fresh* use —
    /// prior contents are ignored and the journal restarts from zero.
    /// Use [`WorkspaceDir::recover`] to resume existing state instead.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn create(dir: &Path, disk: Disk) -> io::Result<WorkspaceDir> {
        disk.create_dir_all(dir)?;
        // A replaced workspace reuses its directory, so continue the
        // sequence past any records already in the journal: this
        // writer's snapshots then cover every stale record by sequence
        // number, and recovery can never replay a leftover on top of
        // the new state — even if a compaction truncation fails.
        let mut seq = 0;
        let mut epoch = 0;
        if let Ok(journal) = disk.read(&dir.join("journal.log")) {
            let mut pos = 0usize;
            while let Some((e, s, _, end)) = parse_record(&journal, pos) {
                seq = seq.max(s);
                epoch = epoch.max(e);
                pos = end;
            }
        }
        Ok(WorkspaceDir {
            dir: dir.to_owned(),
            disk,
            seq,
            epoch,
            good_len: 0,
            dirty_tail: true, // unknown prior journal: truncate before first append
            ops_since_snapshot: 0,
            detached: false,
        })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.car")
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }

    /// The fencing epoch this writer stamps into records and snapshots.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the fencing epoch, normally to the holding lease's. Must
    /// never go backwards: records below the last snapshot's epoch are
    /// fenced at recovery.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// The directory this workspace persists into.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Permanently detaches this writer from its files: every later
    /// [`WorkspaceDir::save_snapshot`] and [`WorkspaceDir::append_op`]
    /// becomes a silent no-op. Called when the directory is handed to a
    /// successor (the workspace was replaced or closed), so an in-flight
    /// request still holding this handle cannot interleave its records
    /// — or its torn-tail truncations — with the successor's journal.
    pub fn detach(&mut self) {
        self.detached = true;
    }

    /// Operations journaled since the last successful snapshot — the
    /// compaction trigger.
    #[must_use]
    pub fn ops_since_snapshot(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// Writes a full-state snapshot (atomically), then truncates the
    /// journal. A crash or failure between the two steps is safe: the
    /// stale journal records are older than the snapshot's sequence
    /// number and recovery skips them.
    ///
    /// # Errors
    /// Injected faults and filesystem errors; on error the previous
    /// snapshot (if any) is still intact.
    pub fn save_snapshot(
        &mut self,
        tenant: &str,
        workspace: &str,
        schema: &Schema,
        undo: &[Schema],
        redo: &[Schema],
    ) -> io::Result<()> {
        if self.detached {
            return Ok(()); // the directory belongs to a successor now
        }
        let mut body = Vec::new();
        body.extend_from_slice(
            format!(
                "tenant {}\nworkspace {}\nseq {}\nepoch {}\nundo {} redo {}\n",
                codec::esc(tenant),
                codec::esc(workspace),
                self.seq,
                self.epoch,
                undo.len(),
                redo.len()
            )
            .as_bytes(),
        );
        for schema in std::iter::once(schema).chain(undo).chain(redo) {
            let bytes = codec::encode_schema(schema);
            body.extend_from_slice(format!("schema {}\n", bytes.len()).as_bytes());
            body.extend_from_slice(&bytes);
        }
        let mut file = format!("{SNAP_MAGIC} {} {:016x}\n", body.len(), fnv64(&body)).into_bytes();
        file.extend_from_slice(&body);
        // Generation seqlock for lease-less readers: odd while the
        // snapshot/journal pair may be mid-replace, even once settled.
        // Both bumps are advisory (best-effort): a reader that cannot
        // trust the generation falls back on the replay rules, which
        // are safe against every compaction crash window.
        let gen = read_generation(&self.dir, &self.disk).unwrap_or(0);
        let odd = if gen.is_multiple_of(2) { gen + 1 } else { gen + 2 };
        let _ = write_generation(&self.dir, &self.disk, odd);
        let published = self.disk.write_atomic(&self.snapshot_path(), &file);
        if published.is_ok() {
            self.ops_since_snapshot = 0;
            // Compaction. Failure is harmless (stale records are skipped
            // by sequence number and epoch), so only advance our
            // bookkeeping on success.
            if self.disk.set_len(&self.journal_path(), 0).is_ok() {
                self.good_len = 0;
                self.dirty_tail = false;
            }
        }
        let _ = write_generation(&self.dir, &self.disk, odd + 1);
        published
    }

    /// Appends one operation record to the journal, repairing any torn
    /// tail from an earlier failed append first.
    ///
    /// # Errors
    /// Injected faults and filesystem errors; on error the operation is
    /// NOT durable (the caller's in-memory state is still correct, and
    /// the next snapshot will capture it).
    pub fn append_op(&mut self, op: &JournalOp) -> io::Result<()> {
        if self.detached {
            return Ok(()); // the directory belongs to a successor now
        }
        if self.dirty_tail {
            self.disk.set_len(&self.journal_path(), self.good_len)?;
            self.dirty_tail = false;
        }
        let payload = format!("{} {} {}", self.epoch, self.seq + 1, op.encode());
        let frame = format!(
            "J {} {:016x}\n{payload}\n",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        match self.disk.append(&self.journal_path(), frame.as_bytes()) {
            Ok(()) => {
                self.seq += 1;
                self.good_len += frame.len() as u64;
                self.ops_since_snapshot += 1;
                Ok(())
            }
            Err(e) => {
                self.dirty_tail = true;
                Err(e)
            }
        }
    }

    /// Recovers a workspace from `dir`: verifies the snapshot, replays
    /// the journal's verified contiguous prefix, and returns the state
    /// plus a primed writer. `None` when there is no usable snapshot
    /// (missing, torn, or corrupt) — the workspace starts fresh; a
    /// damaged *journal* only shortens `ops`.
    #[must_use]
    pub fn recover(dir: &Path, disk: Disk) -> Option<Recovered> {
        let me = WorkspaceDir {
            dir: dir.to_owned(),
            disk,
            seq: 0,
            epoch: 0,
            good_len: 0,
            dirty_tail: true,
            ops_since_snapshot: 0,
            detached: false,
        };
        let snap = me.disk.read(&me.snapshot_path()).ok()?;
        let (tenant, workspace, snap_seq, snap_epoch, schema, undo, redo) = parse_snapshot(&snap)?;

        let mut ops = Vec::new();
        let mut truncated_tail = false;
        let mut fenced_records = 0u64;
        let mut good_len = 0u64;
        let mut last_seq = snap_seq;
        if let Ok(journal) = me.disk.read(&me.journal_path()) {
            let mut pos = 0usize;
            let mut prev_seq: Option<u64> = None;
            while pos < journal.len() {
                let Some((epoch, seq, op, end)) = parse_record(&journal, pos) else {
                    truncated_tail = true;
                    break;
                };
                if epoch > snap_epoch {
                    // Every takeover snapshots at its new epoch before
                    // appending, so a record above the snapshot's epoch
                    // cannot exist in a clean history. Stop as a damaged
                    // tail, leaving `good_len` before it so the primed
                    // writer truncates it.
                    truncated_tail = true;
                    break;
                }
                if epoch < snap_epoch {
                    // A deposed writer's append: fenced. Skip it without
                    // breaking the successor's sequence chain — this is
                    // exactly how a zombie's post-takeover records are
                    // kept out of the history.
                    fenced_records += 1;
                    pos = end;
                    good_len = end as u64;
                    continue;
                }
                // Records must be consecutive — with each other, and
                // (for the first post-snapshot record) with the
                // snapshot's sequence number. A gap means the file is
                // not a history prefix and nothing from the gap on is
                // safe: stop as a damaged tail, leaving `good_len`
                // *before* the gap so the primed writer truncates the
                // stale records instead of appending after them.
                if prev_seq.is_some_and(|p| seq != p + 1)
                    || (prev_seq.is_none() && seq > last_seq + 1)
                {
                    truncated_tail = true;
                    break;
                }
                prev_seq = Some(seq);
                pos = end;
                good_len = end as u64;
                if seq == last_seq + 1 {
                    // The next operation after everything known.
                    ops.push(op);
                    last_seq = seq;
                }
                // seq <= snap_seq: pre-snapshot record, skip (stale
                // compaction leftovers).
            }
        }
        Some(Recovered {
            tenant,
            workspace,
            schema,
            undo,
            redo,
            ops,
            truncated_tail,
            epoch: snap_epoch,
            fenced_records,
            dir: WorkspaceDir {
                seq: last_seq,
                epoch: snap_epoch,
                good_len,
                dirty_tail: true, // anything past good_len is suspect
                ops_since_snapshot: 0,
                ..me
            },
        })
    }
}

/// Reads the compaction generation of a workspace directory. `None`
/// when the file is missing or unreadable — a reader must then fall
/// back on the replay rules alone.
#[must_use]
pub fn read_generation(dir: &Path, disk: &Disk) -> Option<u64> {
    let bytes = disk.read(&dir.join("gen")).ok()?;
    std::str::from_utf8(&bytes).ok()?.strip_prefix("gen ")?.trim_end().parse().ok()
}

fn write_generation(dir: &Path, disk: &Disk, gen: u64) -> io::Result<()> {
    disk.write_atomic(&dir.join("gen"), format!("gen {gen}\n").as_bytes())
}

/// Parses and verifies a snapshot file. `None` on any damage.
#[allow(clippy::type_complexity)]
fn parse_snapshot(
    bytes: &[u8],
) -> Option<(String, String, u64, u64, Schema, Vec<Schema>, Vec<Schema>)> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let [magic, len, sum] = header.split(' ').collect::<Vec<_>>()[..] else {
        return None;
    };
    if magic != SNAP_MAGIC {
        return None;
    }
    let len: usize = len.parse().ok()?;
    let body = bytes.get(nl + 1..)?;
    if body.len() != len || fnv64(body) != u64::from_str_radix(sum, 16).ok()? {
        return None;
    }

    let mut pos = 0usize;
    let line = |pos: &mut usize| -> Option<&str> {
        let rest = &body[*pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        *pos += nl + 1;
        std::str::from_utf8(&rest[..nl]).ok()
    };
    let tenant = codec::unesc(line(&mut pos)?.strip_prefix("tenant ")?)?;
    let workspace = codec::unesc(line(&mut pos)?.strip_prefix("workspace ")?)?;
    let seq: u64 = line(&mut pos)?.strip_prefix("seq ")?.parse().ok()?;
    let epoch: u64 = line(&mut pos)?.strip_prefix("epoch ")?.parse().ok()?;
    let counts = line(&mut pos)?;
    let (undo_n, redo_n) = counts.strip_prefix("undo ")?.split_once(" redo ")?;
    let undo_n: usize = undo_n.parse().ok()?;
    let redo_n: usize = redo_n.parse().ok()?;
    if undo_n.max(redo_n) > 1_000_000 {
        return None;
    }

    let mut schemas = Vec::with_capacity(1 + undo_n + redo_n);
    for _ in 0..1 + undo_n + redo_n {
        let n: usize = line(&mut pos)?.strip_prefix("schema ")?.parse().ok()?;
        let block = body.get(pos..pos + n)?;
        pos += n;
        schemas.push(codec::decode_schema(block)?);
    }
    if pos != body.len() {
        return None;
    }
    let mut it = schemas.into_iter();
    let schema = it.next()?;
    let undo: Vec<Schema> = it.by_ref().take(undo_n).collect();
    let redo: Vec<Schema> = it.collect();
    Some((tenant, workspace, seq, epoch, schema, undo, redo))
}

/// Parses and verifies one journal record at `pos`; returns the
/// fencing epoch, the sequence number, the operation, and the offset
/// just past the record. `None` on any damage.
fn parse_record(journal: &[u8], pos: usize) -> Option<(u64, u64, JournalOp, usize)> {
    let rest = &journal[pos..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&rest[..nl]).ok()?;
    let [tag, len, sum] = header.split(' ').collect::<Vec<_>>()[..] else {
        return None;
    };
    if tag != "J" {
        return None;
    }
    let len: usize = len.parse().ok()?;
    let payload = rest.get(nl + 1..nl + 1 + len)?;
    if rest.get(nl + 1 + len).copied() != Some(b'\n') {
        return None;
    }
    if fnv64(payload) != u64::from_str_radix(sum, 16).ok()? {
        return None;
    }
    let payload = std::str::from_utf8(payload).ok()?;
    let (epoch, rest) = payload.split_once(' ')?;
    let epoch: u64 = epoch.parse().ok()?;
    let (seq, op) = rest.split_once(' ')?;
    let seq: u64 = seq.parse().ok()?;
    Some((epoch, seq, JournalOp::decode(op)?, pos + nl + 1 + len + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fault::{self, DiskFaults};
    use crate::syntax::{ClassFormula, SchemaBuilder};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("car-journal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema(extra: &str) -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let x = b.class(extra);
        b.define_class(x).isa(ClassFormula::class(person)).finish();
        b.build().unwrap()
    }

    fn ops3() -> Vec<JournalOp> {
        vec![
            JournalOp::Apply(SchemaDelta::AddClass { name: "Fresh".into() }),
            JournalOp::Undo,
            JournalOp::Redo,
        ]
    }

    #[test]
    fn snapshot_and_journal_roundtrip() {
        let dir = scratch("roundtrip");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        let (s, u1, u2) = (schema("Current"), schema("OldA"), schema("OldB"));
        wd.save_snapshot("acme corp", "main ws", &s, &[u1.clone(), u2.clone()], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        assert_eq!(wd.ops_since_snapshot(), 3);

        let r = WorkspaceDir::recover(&dir, Disk::real()).expect("recovers");
        assert_eq!(r.tenant, "acme corp");
        assert_eq!(r.workspace, "main ws");
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&s));
        assert_eq!(r.undo.len(), 2);
        assert_eq!(codec::encode_schema(&r.undo[1]), codec::encode_schema(&u2));
        assert!(r.redo.is_empty());
        assert_eq!(r.ops, ops3());
        assert!(!r.truncated_tail);

        // The recovered writer continues the sequence seamlessly.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_journal_tail_replays_the_intact_prefix() {
        let dir = scratch("tail");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        let journal = dir.join("journal.log");
        let full = std::fs::read(&journal).unwrap();

        // Sweep every truncation point: replay always yields a prefix
        // of the op list, never an error or a reordering.
        for cut in 0..=full.len() {
            std::fs::write(&journal, &full[..cut]).unwrap();
            let r = WorkspaceDir::recover(&dir, Disk::real()).expect("snapshot intact");
            assert!(r.ops.len() <= 3);
            assert_eq!(r.ops[..], ops3()[..r.ops.len()], "prefix at cut {cut}");
            assert_eq!(r.truncated_tail, !is_record_boundary(&full, cut), "cut {cut}");
        }

        // Sweep bit flips: same prefix property.
        for off in 0..full.len() {
            std::fs::write(&journal, &full).unwrap();
            fault::flip_bit(&journal, off as u64, (off % 8) as u8).unwrap();
            let r = WorkspaceDir::recover(&dir, Disk::real()).expect("snapshot intact");
            assert_eq!(r.ops[..], ops3()[..r.ops.len()], "prefix at flip {off}");
        }

        // Garbage appended after valid records: prefix still replays.
        std::fs::write(&journal, &full).unwrap();
        fault::append_garbage(&journal, b"J 999 nonsense\n\x00\x01").unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.ops, ops3());
        assert!(r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn is_record_boundary(full: &[u8], cut: usize) -> bool {
        let mut pos = 0;
        while pos < cut {
            match parse_record(full, pos) {
                Some((_, _, _, end)) => pos = end,
                None => return false,
            }
        }
        pos == cut
    }

    #[test]
    fn corrupt_snapshot_means_unrecoverable_not_wrong() {
        let dir = scratch("snapcorrupt");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[schema("U")], &[schema("R")]).unwrap();
        let snap = dir.join("snapshot.car");
        let full = std::fs::read(&snap).unwrap();
        for cut in (0..full.len()).step_by(11) {
            std::fs::write(&snap, &full[..cut]).unwrap();
            assert!(WorkspaceDir::recover(&dir, Disk::real()).is_none(), "cut {cut}");
        }
        for off in (0..full.len()).step_by(5) {
            std::fs::write(&snap, &full).unwrap();
            fault::flip_bit(&snap, off as u64, 2).unwrap();
            assert!(WorkspaceDir::recover(&dir, Disk::real()).is_none(), "flip {off}");
        }
        std::fs::write(&snap, &full).unwrap();
        assert!(WorkspaceDir::recover(&dir, Disk::real()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_repairs_tail_before_next_record() {
        let dir = scratch("repair");
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        wd.append_op(&ops3()[0]).unwrap();
        faults.trip_after(0); // this append tears
        assert!(wd.append_op(&ops3()[1]).is_err());
        faults.disarm();
        // Next append truncates the torn bytes first.
        wd.append_op(&ops3()[2]).unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.ops, vec![ops3()[0].clone(), ops3()[2].clone()]);
        assert!(!r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_after_interrupted_compaction_is_skipped() {
        let dir = scratch("stalecompact");
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        // Snapshot again, but the journal truncation step fails — the
        // crash window between "snapshot published" and "journal
        // compacted". The generation read + pre-bump cost 3 ops, the
        // snapshot write+rename 2 more, then the set_len trips.
        faults.trip_after(5);
        wd.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        faults.disarm();
        assert!(std::fs::metadata(dir.join("journal.log")).unwrap().len() > 0);

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("S2")));
        assert!(r.ops.is_empty(), "pre-snapshot records are skipped");
        assert!(!r.truncated_tail);

        // And the recovered writer journals on without colliding.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops, vec![JournalOp::Undo]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_gap_after_snapshot_is_a_damaged_tail_not_a_silent_skip() {
        let dir = scratch("seqgap");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        // Splice out the first record: the journal now starts at seq 2
        // while the snapshot covers seq 0 — a gap, not a prefix.
        let journal = dir.join("journal.log");
        let full = std::fs::read(&journal).unwrap();
        let (_, _, _, first_end) = parse_record(&full, 0).unwrap();
        std::fs::write(&journal, &full[first_end..]).unwrap();

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert!(r.ops.is_empty(), "nothing past a gap may replay");
        assert!(r.truncated_tail, "the gap must be reported");

        // The primed writer truncates the stale records before its next
        // append, so the *following* recovery loses nothing.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops, vec![JournalOp::Undo]);
        assert!(!r2.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detached_writer_never_touches_the_files_again() {
        let dir = scratch("detach");
        let mut old = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        old.save_snapshot("t", "w", &schema("Old"), &[], &[]).unwrap();
        old.detach();

        // The successor takes over the directory.
        let mut new = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        new.save_snapshot("t", "w", &schema("New"), &[], &[]).unwrap();
        new.append_op(&JournalOp::Undo).unwrap();

        // Stale writes through the old handle are silent no-ops: they
        // report success (the entry is unreachable; nobody consumes the
        // result) but leave the successor's files byte-identical.
        let before_snap = std::fs::read(dir.join("snapshot.car")).unwrap();
        let before_journal = std::fs::read(dir.join("journal.log")).unwrap();
        old.save_snapshot("t", "w", &schema("Stale"), &[], &[]).unwrap();
        old.append_op(&JournalOp::Apply(SchemaDelta::AddClass { name: "Stale".into() }))
            .unwrap();
        assert_eq!(std::fs::read(dir.join("snapshot.car")).unwrap(), before_snap);
        assert_eq!(std::fs::read(dir.join("journal.log")).unwrap(), before_journal);

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("New")));
        assert_eq!(r.ops, vec![JournalOp::Undo]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zombie_appends_below_snapshot_epoch_are_fenced_at_recovery() {
        let dir = scratch("fence");
        let mut zombie = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        zombie.set_epoch(2);
        zombie.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        zombie.append_op(&ops3()[0]).unwrap();

        // Takeover: the successor recovers, raises its epoch, and
        // snapshots at the new epoch before appending — the fencing
        // snapshot.
        let rec = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.ops.len(), 1);
        let mut successor = rec.dir;
        successor.set_epoch(3);
        successor.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        successor.append_op(&ops3()[1]).unwrap();

        // The paused zombie resumes and appends at its stale epoch,
        // interleaving with the successor's live journal.
        zombie.append_op(&ops3()[2]).unwrap();
        successor.append_op(&ops3()[0]).unwrap();

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(
            r.ops,
            vec![ops3()[1].clone(), ops3()[0].clone()],
            "only the successor's records replay"
        );
        assert_eq!(r.fenced_records, 1, "the zombie's append is counted as fenced");
        assert!(!r.truncated_tail, "fencing is a skip, not damage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_above_snapshot_epoch_is_a_damaged_tail() {
        let dir = scratch("aboveepoch");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.set_epoch(2);
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        // An epoch-4 record with no epoch-4 snapshot covering it cannot
        // occur in a clean history: replay must stop, not guess.
        wd.set_epoch(4);
        wd.append_op(&ops3()[0]).unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert!(r.ops.is_empty());
        assert!(r.truncated_tail);
        assert_eq!(r.fenced_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_goes_odd_during_compaction_and_even_after() {
        let dir = scratch("gen");
        let disk = Disk::real();
        assert_eq!(read_generation(&dir, &disk), None, "fresh dir has no generation");
        let mut wd = WorkspaceDir::create(&dir, disk.clone()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        let g1 = read_generation(&dir, &disk).unwrap();
        assert!(g1.is_multiple_of(2), "settled generation is even");
        wd.append_op(&ops3()[0]).unwrap();
        wd.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        let g2 = read_generation(&dir, &disk).unwrap();
        assert!(g2 > g1 && g2.is_multiple_of(2), "compaction bumps the settled generation: {g1} -> {g2}");

        // Dying mid-compaction (truncate and the post-bump both fail)
        // leaves the generation odd — the marker a reader retries on.
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        faults.trip_after(5);
        wd.save_snapshot("t", "w", &schema("S3"), &[], &[]).unwrap();
        faults.disarm();
        let g3 = read_generation(&dir, &disk).unwrap();
        assert!(g3 > g2 && !g3.is_multiple_of(2), "a stranded compaction reads odd: {g2} -> {g3}");

        // The next healthy snapshot settles it even again.
        wd.save_snapshot("t", "w", &schema("S3"), &[], &[]).unwrap();
        let g4 = read_generation(&dir, &disk).unwrap();
        assert!(g4 > g3 && g4.is_multiple_of(2), "recovery settles the generation: {g3} -> {g4}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replacement_writer_continues_seq_so_stale_records_cannot_replay() {
        let dir = scratch("replaceseq");
        let mut old = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        old.save_snapshot("t", "w", &schema("Old"), &[], &[]).unwrap();
        for op in &ops3() {
            old.append_op(op).unwrap(); // journal holds seq 1..=3
        }
        old.detach();

        // Replace the workspace, but fail the compaction truncation —
        // the crash window where the new snapshot coexists with the old
        // records. save_snapshot costs the generation read + pre-bump
        // (3 ops) plus the snapshot write+rename, then the set_len trips.
        let faults = DiskFaults::new();
        let mut new = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        faults.trip_after(5);
        new.save_snapshot("t", "w", &schema("New"), &[], &[]).unwrap();
        faults.disarm();
        assert!(std::fs::metadata(dir.join("journal.log")).unwrap().len() > 0);

        // The new snapshot's sequence number covers the stale records:
        // recovery skips them instead of replaying them on the new state.
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("New")));
        assert!(r.ops.is_empty(), "old records must not replay on the new snapshot");
        assert!(!r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
