//! Workspace durability: snapshot files plus an append-only op journal.
//!
//! Each persisted workspace owns one directory holding
//!
//! * a snapshot — the full state (schema, undo and redo stacks) at
//!   some instant, checksummed and atomically replaced; and
//! * a journal — checksummed, sequence-numbered records of every
//!   state-changing operation since, replayed on top of the snapshot
//!   at recovery.
//!
//! Both files are *named by the writer's fencing epoch*:
//! `snapshot.<epoch>.car` and `journal.<epoch>.log` for epoch ≥ 1,
//! with the bare legacy names `snapshot.car` / `journal.log` standing
//! in for epoch 0 (lease-less use, and directories written before
//! epochs existed). Epochs are never reused (the lease ratchet is
//! durable before a claim is visible), so each pair has exactly one
//! writer, ever — see **Epoch fencing** below for why that matters.
//!
//! **Replay rules.** Every record carries a monotonically increasing
//! sequence number, and the snapshot records the last sequence number
//! it covers. Recovery replays exactly the records that (a) verify
//! (frame intact, checksum matches), (b) are newer than the snapshot,
//! and (c) form a contiguous run starting right after it. The first
//! record that fails any check ends replay: a torn or corrupt tail
//! costs the operations in it, never correctness — the recovered state
//! is always some *prefix* of the true history. Records older than the
//! snapshot are skipped, which makes the snapshot-then-truncate
//! compaction sequence crash-safe at every instant (a crash between
//! the two steps leaves stale records that replay provably ignores).
//!
//! **Torn-tail repair.** The writer tracks the last known-good journal
//! length; after a failed append the file is truncated back to it
//! before the next record goes out, so one bad write cannot corrupt
//! later ones.
//!
//! **Epoch fencing.** Every journal record and snapshot additionally
//! carries the writer's fencing *epoch* (granted by
//! [`crate::persist::lease::Lease`]; 0 for lease-less use), and every
//! mutable file a writer touches — snapshot, journal — embeds that
//! epoch in its *name*. A new leaseholder snapshots at its higher
//! epoch before serving, and recovery selects the highest-epoch intact
//! snapshot plus that epoch's journal. This is what makes a paused
//! zombie leader harmless end to end: after a takeover, *every* write
//! it can still issue — an append, a snapshot replace, a compaction
//! truncation, a torn-tail repair — lands in its own stale-epoch
//! files, which recovery never replays (intact stale records beyond
//! the chosen snapshot's coverage are counted in
//! [`Recovered::fenced_records`]). Only strictly-lower-epoch files are
//! ever deleted, and only after a snapshot at the deleting writer's
//! own epoch is durable, so the cleanup sweep is zombie-safe too.
//! Within a single (legacy, shared) journal file the per-record epoch
//! is enforced as defense in depth: a record below the snapshot's
//! epoch is skipped and counted fenced; one above it cannot exist in a
//! clean history and ends replay as a damaged tail.
//!
//! **Generation seqlock.** Lease-less readers (followers) need to know
//! when the snapshot/journal pair is mid-compaction. The `gen` file is
//! bumped to an odd value before the snapshot is replaced and back to
//! even after the journal is truncated; a follower re-reads it around
//! recovery and retries while it is odd or changed.

use super::codec::{self, fnv64};
use super::disk::Disk;
use crate::incremental::SchemaDelta;
use crate::syntax::Schema;
use std::io;
use std::path::{Path, PathBuf};

/// Magic tag of a snapshot file.
pub const SNAP_MAGIC: &str = "CARSNAP1";

/// Snapshot file name for a writer epoch. Epoch 0 keeps the legacy
/// bare name so lease-less directories stay byte-compatible.
fn snapshot_name(epoch: u64) -> String {
    if epoch == 0 { "snapshot.car".to_owned() } else { format!("snapshot.{epoch}.car") }
}

/// Journal file name for a writer epoch (same naming rule).
fn journal_name(epoch: u64) -> String {
    if epoch == 0 { "journal.log".to_owned() } else { format!("journal.{epoch}.log") }
}

/// The epoch encoded in a snapshot file name, `None` for other files
/// (temp files, leases, the generation file).
fn snapshot_file_epoch(name: &str) -> Option<u64> {
    if name == "snapshot.car" {
        return Some(0);
    }
    name.strip_prefix("snapshot.")?.strip_suffix(".car")?.parse().ok()
}

/// The epoch encoded in a journal file name.
fn journal_file_epoch(name: &str) -> Option<u64> {
    if name == "journal.log" {
        return Some(0);
    }
    name.strip_prefix("journal.")?.strip_suffix(".log")?.parse().ok()
}

/// One state-changing workspace operation, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A schema edit.
    Apply(SchemaDelta),
    /// One undo step.
    Undo,
    /// One redo step.
    Redo,
}

impl JournalOp {
    fn encode(&self) -> String {
        match self {
            JournalOp::Apply(delta) => format!("apply {}", codec::encode_delta(delta)),
            JournalOp::Undo => "undo".to_owned(),
            JournalOp::Redo => "redo".to_owned(),
        }
    }

    fn decode(line: &str) -> Option<JournalOp> {
        match line {
            "undo" => Some(JournalOp::Undo),
            "redo" => Some(JournalOp::Redo),
            _ => Some(JournalOp::Apply(codec::decode_delta(line.strip_prefix("apply ")?)?)),
        }
    }
}

/// A workspace state recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Tenant name recorded in the snapshot.
    pub tenant: String,
    /// Workspace name recorded in the snapshot.
    pub workspace: String,
    /// Schema at snapshot time.
    pub schema: Schema,
    /// Undo stack at snapshot time, oldest first.
    pub undo: Vec<Schema>,
    /// Redo stack at snapshot time, oldest first.
    pub redo: Vec<Schema>,
    /// Verified post-snapshot operations, in order, to replay.
    pub ops: Vec<JournalOp>,
    /// `true` when a torn or corrupt journal tail cut replay short.
    pub truncated_tail: bool,
    /// Fencing epoch recorded in the snapshot.
    pub epoch: u64,
    /// Intact records rejected by fencing: appends by a deposed writer,
    /// found either in a lower-epoch journal file beyond the chosen
    /// snapshot's sequence coverage, or (legacy shared-file layout)
    /// in the replayed journal with an epoch below the snapshot's.
    pub fenced_records: u64,
    /// The primed writer for continued journaling.
    pub dir: WorkspaceDir,
}

/// Writer side of one workspace's durability directory.
#[derive(Debug)]
pub struct WorkspaceDir {
    dir: PathBuf,
    disk: Disk,
    /// Sequence number of the last appended (or recovered) record.
    seq: u64,
    /// Fencing epoch stamped into every record and snapshot this writer
    /// produces (0 for lease-less use).
    epoch: u64,
    /// The journal file this writer appends to. Normally the epoch's
    /// named file; recovery of a pre-epoch-naming directory keeps the
    /// legacy shared file until the next epoch raise.
    journal: PathBuf,
    /// Byte length of the verified journal prefix.
    good_len: u64,
    /// A failed append may have left a torn tail past `good_len`.
    dirty_tail: bool,
    ops_since_snapshot: u64,
    /// A detached writer no-ops every write: the directory has been
    /// handed to a successor (workspace replaced or closed) and this
    /// handle must never touch the files again.
    detached: bool,
}

impl WorkspaceDir {
    /// Creates (or attaches to) a workspace directory for *fresh* use —
    /// prior contents are ignored and the journal restarts from zero.
    /// Use [`WorkspaceDir::recover`] to resume existing state instead.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn create(dir: &Path, disk: Disk) -> io::Result<WorkspaceDir> {
        disk.create_dir_all(dir)?;
        // A replaced workspace reuses its directory, so continue the
        // sequence past any records already journaled — in *any*
        // epoch's file — and the epoch past any leftover artifact:
        // this writer's snapshots then cover every stale record by
        // sequence number and dominate every stale snapshot by epoch,
        // so recovery can never resurrect a leftover on top of the new
        // state — even if a compaction truncation fails.
        let mut seq = 0;
        let mut epoch = 0;
        if let Ok(paths) = disk.read_dir(dir) {
            for path in paths {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                if let Some(e) = snapshot_file_epoch(name) {
                    epoch = epoch.max(e);
                    if let Ok(bytes) = disk.read(&path) {
                        if let Some((_, _, _, header_epoch, ..)) = parse_snapshot(&bytes) {
                            epoch = epoch.max(header_epoch);
                        }
                    }
                    continue;
                }
                let Some(e) = journal_file_epoch(name) else { continue };
                epoch = epoch.max(e);
                if let Ok(journal) = disk.read(&path) {
                    let mut pos = 0usize;
                    while let Some((e, s, _, end)) = parse_record(&journal, pos) {
                        seq = seq.max(s);
                        epoch = epoch.max(e);
                        pos = end;
                    }
                }
            }
        }
        Ok(WorkspaceDir {
            dir: dir.to_owned(),
            journal: dir.join(journal_name(epoch)),
            disk,
            seq,
            epoch,
            good_len: 0,
            dirty_tail: true, // unknown prior journal: truncate before first append
            ops_since_snapshot: 0,
            detached: false,
        })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(snapshot_name(self.epoch))
    }

    fn journal_path(&self) -> PathBuf {
        self.journal.clone()
    }

    /// The fencing epoch this writer stamps into records and snapshots.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the fencing epoch, normally to the holding lease's. Must
    /// never go backwards: records below the last snapshot's epoch are
    /// fenced at recovery. Raising the epoch switches the writer to the
    /// new epoch's own snapshot/journal files — from here on, nothing
    /// this writer does can land in (or truncate) a file any
    /// other-epoch writer touches.
    pub fn set_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.journal = self.dir.join(journal_name(epoch));
            // The new journal file's tail state is unknown (it should
            // not exist, but a hostile leftover must not be appended
            // after): truncate before the first append.
            self.good_len = 0;
            self.dirty_tail = true;
        }
    }

    /// The directory this workspace persists into.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Permanently detaches this writer from its files: every later
    /// [`WorkspaceDir::save_snapshot`] and [`WorkspaceDir::append_op`]
    /// becomes a silent no-op. Called when the directory is handed to a
    /// successor (the workspace was replaced or closed), so an in-flight
    /// request still holding this handle cannot interleave its records
    /// — or its torn-tail truncations — with the successor's journal.
    pub fn detach(&mut self) {
        self.detached = true;
    }

    /// Operations journaled since the last successful snapshot — the
    /// compaction trigger.
    #[must_use]
    pub fn ops_since_snapshot(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// Writes a full-state snapshot (atomically), then truncates the
    /// journal. A crash or failure between the two steps is safe: the
    /// stale journal records are older than the snapshot's sequence
    /// number and recovery skips them.
    ///
    /// # Errors
    /// Injected faults and filesystem errors; on error the previous
    /// snapshot (if any) is still intact.
    pub fn save_snapshot(
        &mut self,
        tenant: &str,
        workspace: &str,
        schema: &Schema,
        undo: &[Schema],
        redo: &[Schema],
    ) -> io::Result<()> {
        if self.detached {
            return Ok(()); // the directory belongs to a successor now
        }
        let mut body = Vec::new();
        body.extend_from_slice(
            format!(
                "tenant {}\nworkspace {}\nseq {}\nepoch {}\nundo {} redo {}\n",
                codec::esc(tenant),
                codec::esc(workspace),
                self.seq,
                self.epoch,
                undo.len(),
                redo.len()
            )
            .as_bytes(),
        );
        for schema in std::iter::once(schema).chain(undo).chain(redo) {
            let bytes = codec::encode_schema(schema);
            body.extend_from_slice(format!("schema {}\n", bytes.len()).as_bytes());
            body.extend_from_slice(&bytes);
        }
        let mut file = format!("{SNAP_MAGIC} {} {:016x}\n", body.len(), fnv64(&body)).into_bytes();
        file.extend_from_slice(&body);
        // Generation seqlock for lease-less readers: odd while the
        // snapshot/journal pair may be mid-replace, even once settled.
        // Both bumps are advisory (best-effort): a reader that cannot
        // trust the generation falls back on the replay rules, which
        // are safe against every compaction crash window.
        let gen = read_generation(&self.dir, &self.disk).unwrap_or(0);
        let odd = if gen.is_multiple_of(2) { gen + 1 } else { gen + 2 };
        let _ = write_generation(&self.dir, &self.disk, odd);
        let published = self.disk.write_atomic(&self.snapshot_path(), &file);
        if published.is_ok() {
            self.ops_since_snapshot = 0;
            // Compaction. Failure is harmless (stale records are skipped
            // by sequence number and epoch), so only advance our
            // bookkeeping on success. The truncation only ever touches
            // this epoch's own journal file — a deposed writer running
            // this line cannot shorten a successor's journal.
            if self.disk.set_len(&self.journal_path(), 0).is_ok() {
                self.good_len = 0;
                self.dirty_tail = false;
            }
        }
        let _ = write_generation(&self.dir, &self.disk, odd + 1);
        if published.is_ok() {
            self.sweep_stale_epochs();
        }
        published
    }

    /// Best-effort removal of snapshot/journal files from epochs
    /// strictly below this writer's, called only after a snapshot at
    /// *this* epoch is durable (which covers their whole history by
    /// sequence number and dominates them by epoch). The strict
    /// inequality is what makes the sweep zombie-safe: a deposed writer
    /// can only remove files that were already stale while it held the
    /// lease, never a successor's higher-epoch files.
    fn sweep_stale_epochs(&self) {
        if self.epoch == 0 {
            return; // nothing can be below epoch 0
        }
        let Ok(paths) = self.disk.read_dir(&self.dir) else { return };
        for path in paths {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let stale = snapshot_file_epoch(name)
                .or_else(|| journal_file_epoch(name))
                .is_some_and(|e| e < self.epoch);
            if stale {
                let _ = self.disk.remove(&path);
            }
        }
    }

    /// Appends one operation record to the journal, repairing any torn
    /// tail from an earlier failed append first.
    ///
    /// # Errors
    /// Injected faults and filesystem errors; on error the operation is
    /// NOT durable (the caller's in-memory state is still correct, and
    /// the next snapshot will capture it).
    pub fn append_op(&mut self, op: &JournalOp) -> io::Result<()> {
        if self.detached {
            return Ok(()); // the directory belongs to a successor now
        }
        if self.dirty_tail {
            self.disk.set_len(&self.journal_path(), self.good_len)?;
            self.dirty_tail = false;
        }
        let payload = format!("{} {} {}", self.epoch, self.seq + 1, op.encode());
        let frame = format!(
            "J {} {:016x}\n{payload}\n",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        match self.disk.append(&self.journal_path(), frame.as_bytes()) {
            Ok(()) => {
                self.seq += 1;
                self.good_len += frame.len() as u64;
                self.ops_since_snapshot += 1;
                Ok(())
            }
            Err(e) => {
                self.dirty_tail = true;
                Err(e)
            }
        }
    }

    /// Recovers a workspace from `dir`: selects the highest-epoch
    /// intact snapshot, replays that epoch's journal's verified
    /// contiguous prefix, and returns the state plus a primed writer.
    /// `None` when there is no usable snapshot anywhere (missing, torn,
    /// or corrupt) — the workspace starts fresh; a damaged *journal*
    /// only shortens `ops`.
    ///
    /// Picking the highest intact epoch is the arbiter that makes a
    /// zombie's stale *snapshot publication* harmless: whatever a
    /// deposed writer republishes lands under its lower epoch's name
    /// and can never outrank the successor's snapshot. Should the
    /// highest epoch's snapshot itself be damaged (bit rot, torn
    /// fencing snapshot), recovery falls back to the next intact epoch
    /// — a consistent earlier state — instead of nothing.
    #[must_use]
    pub fn recover(dir: &Path, disk: Disk) -> Option<Recovered> {
        let entries = disk.read_dir(dir).ok()?;
        let mut best: Option<SnapshotContents> = None;
        for path in &entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if snapshot_file_epoch(name).is_none() {
                continue;
            }
            let Ok(bytes) = disk.read(path) else { continue };
            let Some(parsed) = parse_snapshot(&bytes) else { continue };
            // The checksummed header epoch is authoritative; the file
            // name only nominates candidates.
            if best.as_ref().is_none_or(|b| parsed.3 > b.3) {
                best = Some(parsed);
            }
        }
        let (tenant, workspace, snap_seq, snap_epoch, schema, undo, redo) = best?;

        // The chosen epoch's journal. A directory written before epoch
        // naming keeps everything in the legacy shared file, so fall
        // back to it when the named journal does not exist yet.
        let named = dir.join(journal_name(snap_epoch));
        let (journal_path, journal_bytes) = match disk.read(&named) {
            Ok(bytes) => (named, Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound && snap_epoch > 0 => {
                let legacy = dir.join("journal.log");
                match disk.read(&legacy) {
                    Ok(bytes) => (legacy, Some(bytes)),
                    Err(_) => (named, None),
                }
            }
            Err(_) => (named, None),
        };

        let mut ops = Vec::new();
        let mut truncated_tail = false;
        let mut fenced_records = 0u64;
        let mut good_len = 0u64;
        let mut last_seq = snap_seq;
        if let Some(journal) = &journal_bytes {
            let mut pos = 0usize;
            let mut prev_seq: Option<u64> = None;
            while pos < journal.len() {
                let Some((epoch, seq, op, end)) = parse_record(journal, pos) else {
                    truncated_tail = true;
                    break;
                };
                if epoch > snap_epoch {
                    // Every takeover snapshots at its new epoch before
                    // appending, so a record above the snapshot's epoch
                    // cannot exist in a clean history. Stop as a damaged
                    // tail, leaving `good_len` before it so the primed
                    // writer truncates it.
                    truncated_tail = true;
                    break;
                }
                if epoch < snap_epoch {
                    // A deposed writer's append: fenced. Skip it without
                    // breaking the successor's sequence chain — this is
                    // exactly how a zombie's post-takeover records are
                    // kept out of the history.
                    fenced_records += 1;
                    pos = end;
                    good_len = end as u64;
                    continue;
                }
                // Records must be consecutive — with each other, and
                // (for the first post-snapshot record) with the
                // snapshot's sequence number. A gap means the file is
                // not a history prefix and nothing from the gap on is
                // safe: stop as a damaged tail, leaving `good_len`
                // *before* the gap so the primed writer truncates the
                // stale records instead of appending after them.
                if prev_seq.is_some_and(|p| seq != p + 1)
                    || (prev_seq.is_none() && seq > last_seq + 1)
                {
                    truncated_tail = true;
                    break;
                }
                prev_seq = Some(seq);
                pos = end;
                good_len = end as u64;
                if seq == last_seq + 1 {
                    // The next operation after everything known.
                    ops.push(op);
                    last_seq = seq;
                }
                // seq <= snap_seq: pre-snapshot record, skip (stale
                // compaction leftovers).
            }
        }

        // Fence scan over lower-epoch journals: a zombie's post-
        // takeover writes land in its own stale-epoch file, so they
        // never interleave with the chosen journal — but they are still
        // fenced records, and callers count them. An intact record in a
        // stale journal whose sequence number exceeds the chosen
        // snapshot's coverage was, provably, never incorporated into
        // the surviving history (every takeover snapshot covers all the
        // records it replayed).
        for path in &entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(file_epoch) = journal_file_epoch(name) else { continue };
            if file_epoch >= snap_epoch || *path == journal_path {
                continue;
            }
            let Ok(bytes) = disk.read(path) else { continue };
            let mut pos = 0usize;
            while let Some((_, seq, _, end)) = parse_record(&bytes, pos) {
                fenced_records += u64::from(seq > snap_seq);
                pos = end;
            }
        }

        Some(Recovered {
            tenant,
            workspace,
            schema,
            undo,
            redo,
            ops,
            truncated_tail,
            epoch: snap_epoch,
            fenced_records,
            dir: WorkspaceDir {
                dir: dir.to_owned(),
                journal: journal_path,
                disk,
                seq: last_seq,
                epoch: snap_epoch,
                good_len,
                dirty_tail: true, // anything past good_len is suspect
                ops_since_snapshot: 0,
                detached: false,
            },
        })
    }
}

/// Reads the compaction generation of a workspace directory. `None`
/// when the file is missing or unreadable — a reader must then fall
/// back on the replay rules alone.
#[must_use]
pub fn read_generation(dir: &Path, disk: &Disk) -> Option<u64> {
    let bytes = disk.read(&dir.join("gen")).ok()?;
    std::str::from_utf8(&bytes).ok()?.strip_prefix("gen ")?.trim_end().parse().ok()
}

fn write_generation(dir: &Path, disk: &Disk, gen: u64) -> io::Result<()> {
    disk.write_atomic(&dir.join("gen"), format!("gen {gen}\n").as_bytes())
}

/// A verified snapshot's contents: tenant, workspace, sequence number,
/// epoch, schema, undo stack, redo stack.
type SnapshotContents = (String, String, u64, u64, Schema, Vec<Schema>, Vec<Schema>);

/// Parses and verifies a snapshot file. `None` on any damage.
fn parse_snapshot(bytes: &[u8]) -> Option<SnapshotContents> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let [magic, len, sum] = header.split(' ').collect::<Vec<_>>()[..] else {
        return None;
    };
    if magic != SNAP_MAGIC {
        return None;
    }
    let len: usize = len.parse().ok()?;
    let body = bytes.get(nl + 1..)?;
    if body.len() != len || fnv64(body) != u64::from_str_radix(sum, 16).ok()? {
        return None;
    }

    let mut pos = 0usize;
    let line = |pos: &mut usize| -> Option<&str> {
        let rest = &body[*pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        *pos += nl + 1;
        std::str::from_utf8(&rest[..nl]).ok()
    };
    let tenant = codec::unesc(line(&mut pos)?.strip_prefix("tenant ")?)?;
    let workspace = codec::unesc(line(&mut pos)?.strip_prefix("workspace ")?)?;
    let seq: u64 = line(&mut pos)?.strip_prefix("seq ")?.parse().ok()?;
    // The epoch line is optional: snapshots written before epoch
    // fencing existed lack it and mean epoch 0. Refusing them would
    // turn an upgrade into silent data loss (the dir gets skipped and
    // later overwritten by a fresh open).
    let mut counts = line(&mut pos)?;
    let epoch: u64 = match counts.strip_prefix("epoch ") {
        Some(e) => {
            let e = e.parse().ok()?;
            counts = line(&mut pos)?;
            e
        }
        None => 0,
    };
    let (undo_n, redo_n) = counts.strip_prefix("undo ")?.split_once(" redo ")?;
    let undo_n: usize = undo_n.parse().ok()?;
    let redo_n: usize = redo_n.parse().ok()?;
    if undo_n.max(redo_n) > 1_000_000 {
        return None;
    }

    let mut schemas = Vec::with_capacity(1 + undo_n + redo_n);
    for _ in 0..1 + undo_n + redo_n {
        let n: usize = line(&mut pos)?.strip_prefix("schema ")?.parse().ok()?;
        let block = body.get(pos..pos + n)?;
        pos += n;
        schemas.push(codec::decode_schema(block)?);
    }
    if pos != body.len() {
        return None;
    }
    let mut it = schemas.into_iter();
    let schema = it.next()?;
    let undo: Vec<Schema> = it.by_ref().take(undo_n).collect();
    let redo: Vec<Schema> = it.collect();
    Some((tenant, workspace, seq, epoch, schema, undo, redo))
}

/// Parses and verifies one journal record at `pos`; returns the
/// fencing epoch, the sequence number, the operation, and the offset
/// just past the record. `None` on any damage.
fn parse_record(journal: &[u8], pos: usize) -> Option<(u64, u64, JournalOp, usize)> {
    let rest = &journal[pos..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&rest[..nl]).ok()?;
    let [tag, len, sum] = header.split(' ').collect::<Vec<_>>()[..] else {
        return None;
    };
    if tag != "J" {
        return None;
    }
    let len: usize = len.parse().ok()?;
    let payload = rest.get(nl + 1..nl + 1 + len)?;
    if rest.get(nl + 1 + len).copied() != Some(b'\n') {
        return None;
    }
    if fnv64(payload) != u64::from_str_radix(sum, 16).ok()? {
        return None;
    }
    let payload = std::str::from_utf8(payload).ok()?;
    let (first, rest) = payload.split_once(' ')?;
    let first: u64 = first.parse().ok()?;
    // Current payloads are `<epoch> <seq> <op>`; records written before
    // epoch fencing are `<seq> <op>` and mean epoch 0. The formats are
    // unambiguous: an op never starts with an integer token (`undo`,
    // `redo`, `apply ...`), so the second token parses as a number
    // exactly when an epoch field is present.
    let (epoch, seq, op) = match rest.split_once(' ') {
        Some((second, tail)) if second.parse::<u64>().is_ok() => {
            (first, second.parse().ok()?, tail)
        }
        _ => (0, first, rest),
    };
    Some((epoch, seq, JournalOp::decode(op)?, pos + nl + 1 + len + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fault::{self, DiskFaults};
    use crate::syntax::{ClassFormula, SchemaBuilder};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("car-journal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema(extra: &str) -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let x = b.class(extra);
        b.define_class(x).isa(ClassFormula::class(person)).finish();
        b.build().unwrap()
    }

    fn ops3() -> Vec<JournalOp> {
        vec![
            JournalOp::Apply(SchemaDelta::AddClass { name: "Fresh".into() }),
            JournalOp::Undo,
            JournalOp::Redo,
        ]
    }

    #[test]
    fn snapshot_and_journal_roundtrip() {
        let dir = scratch("roundtrip");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        let (s, u1, u2) = (schema("Current"), schema("OldA"), schema("OldB"));
        wd.save_snapshot("acme corp", "main ws", &s, &[u1.clone(), u2.clone()], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        assert_eq!(wd.ops_since_snapshot(), 3);

        let r = WorkspaceDir::recover(&dir, Disk::real()).expect("recovers");
        assert_eq!(r.tenant, "acme corp");
        assert_eq!(r.workspace, "main ws");
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&s));
        assert_eq!(r.undo.len(), 2);
        assert_eq!(codec::encode_schema(&r.undo[1]), codec::encode_schema(&u2));
        assert!(r.redo.is_empty());
        assert_eq!(r.ops, ops3());
        assert!(!r.truncated_tail);

        // The recovered writer continues the sequence seamlessly.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_journal_tail_replays_the_intact_prefix() {
        let dir = scratch("tail");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        let journal = dir.join("journal.log");
        let full = std::fs::read(&journal).unwrap();

        // Sweep every truncation point: replay always yields a prefix
        // of the op list, never an error or a reordering.
        for cut in 0..=full.len() {
            std::fs::write(&journal, &full[..cut]).unwrap();
            let r = WorkspaceDir::recover(&dir, Disk::real()).expect("snapshot intact");
            assert!(r.ops.len() <= 3);
            assert_eq!(r.ops[..], ops3()[..r.ops.len()], "prefix at cut {cut}");
            assert_eq!(r.truncated_tail, !is_record_boundary(&full, cut), "cut {cut}");
        }

        // Sweep bit flips: same prefix property.
        for off in 0..full.len() {
            std::fs::write(&journal, &full).unwrap();
            fault::flip_bit(&journal, off as u64, (off % 8) as u8).unwrap();
            let r = WorkspaceDir::recover(&dir, Disk::real()).expect("snapshot intact");
            assert_eq!(r.ops[..], ops3()[..r.ops.len()], "prefix at flip {off}");
        }

        // Garbage appended after valid records: prefix still replays.
        std::fs::write(&journal, &full).unwrap();
        fault::append_garbage(&journal, b"J 999 nonsense\n\x00\x01").unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.ops, ops3());
        assert!(r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn is_record_boundary(full: &[u8], cut: usize) -> bool {
        let mut pos = 0;
        while pos < cut {
            match parse_record(full, pos) {
                Some((_, _, _, end)) => pos = end,
                None => return false,
            }
        }
        pos == cut
    }

    #[test]
    fn corrupt_snapshot_means_unrecoverable_not_wrong() {
        let dir = scratch("snapcorrupt");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[schema("U")], &[schema("R")]).unwrap();
        let snap = dir.join("snapshot.car");
        let full = std::fs::read(&snap).unwrap();
        for cut in (0..full.len()).step_by(11) {
            std::fs::write(&snap, &full[..cut]).unwrap();
            assert!(WorkspaceDir::recover(&dir, Disk::real()).is_none(), "cut {cut}");
        }
        for off in (0..full.len()).step_by(5) {
            std::fs::write(&snap, &full).unwrap();
            fault::flip_bit(&snap, off as u64, 2).unwrap();
            assert!(WorkspaceDir::recover(&dir, Disk::real()).is_none(), "flip {off}");
        }
        std::fs::write(&snap, &full).unwrap();
        assert!(WorkspaceDir::recover(&dir, Disk::real()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_repairs_tail_before_next_record() {
        let dir = scratch("repair");
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        wd.append_op(&ops3()[0]).unwrap();
        faults.trip_after(0); // this append tears
        assert!(wd.append_op(&ops3()[1]).is_err());
        faults.disarm();
        // Next append truncates the torn bytes first.
        wd.append_op(&ops3()[2]).unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.ops, vec![ops3()[0].clone(), ops3()[2].clone()]);
        assert!(!r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_after_interrupted_compaction_is_skipped() {
        let dir = scratch("stalecompact");
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        // Snapshot again, but the journal truncation step fails — the
        // crash window between "snapshot published" and "journal
        // compacted". The generation read + pre-bump cost 3 ops, the
        // snapshot write+rename 2 more, then the set_len trips.
        faults.trip_after(5);
        wd.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        faults.disarm();
        assert!(std::fs::metadata(dir.join("journal.log")).unwrap().len() > 0);

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("S2")));
        assert!(r.ops.is_empty(), "pre-snapshot records are skipped");
        assert!(!r.truncated_tail);

        // And the recovered writer journals on without colliding.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops, vec![JournalOp::Undo]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_gap_after_snapshot_is_a_damaged_tail_not_a_silent_skip() {
        let dir = scratch("seqgap");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        for op in &ops3() {
            wd.append_op(op).unwrap();
        }
        // Splice out the first record: the journal now starts at seq 2
        // while the snapshot covers seq 0 — a gap, not a prefix.
        let journal = dir.join("journal.log");
        let full = std::fs::read(&journal).unwrap();
        let (_, _, _, first_end) = parse_record(&full, 0).unwrap();
        std::fs::write(&journal, &full[first_end..]).unwrap();

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert!(r.ops.is_empty(), "nothing past a gap may replay");
        assert!(r.truncated_tail, "the gap must be reported");

        // The primed writer truncates the stale records before its next
        // append, so the *following* recovery loses nothing.
        let mut wd2 = r.dir;
        wd2.append_op(&JournalOp::Undo).unwrap();
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.ops, vec![JournalOp::Undo]);
        assert!(!r2.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detached_writer_never_touches_the_files_again() {
        let dir = scratch("detach");
        let mut old = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        old.save_snapshot("t", "w", &schema("Old"), &[], &[]).unwrap();
        old.detach();

        // The successor takes over the directory.
        let mut new = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        new.save_snapshot("t", "w", &schema("New"), &[], &[]).unwrap();
        new.append_op(&JournalOp::Undo).unwrap();

        // Stale writes through the old handle are silent no-ops: they
        // report success (the entry is unreachable; nobody consumes the
        // result) but leave the successor's files byte-identical.
        let before_snap = std::fs::read(dir.join("snapshot.car")).unwrap();
        let before_journal = std::fs::read(dir.join("journal.log")).unwrap();
        old.save_snapshot("t", "w", &schema("Stale"), &[], &[]).unwrap();
        old.append_op(&JournalOp::Apply(SchemaDelta::AddClass { name: "Stale".into() }))
            .unwrap();
        assert_eq!(std::fs::read(dir.join("snapshot.car")).unwrap(), before_snap);
        assert_eq!(std::fs::read(dir.join("journal.log")).unwrap(), before_journal);

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("New")));
        assert_eq!(r.ops, vec![JournalOp::Undo]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zombie_appends_below_snapshot_epoch_are_fenced_at_recovery() {
        let dir = scratch("fence");
        let mut zombie = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        zombie.set_epoch(2);
        zombie.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        zombie.append_op(&ops3()[0]).unwrap();

        // Takeover: the successor recovers, raises its epoch, and
        // snapshots at the new epoch before appending — the fencing
        // snapshot.
        let rec = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.ops.len(), 1);
        let mut successor = rec.dir;
        successor.set_epoch(3);
        successor.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        successor.append_op(&ops3()[1]).unwrap();

        // The paused zombie resumes and appends at its stale epoch,
        // interleaving with the successor's live journal.
        zombie.append_op(&ops3()[2]).unwrap();
        successor.append_op(&ops3()[0]).unwrap();

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(
            r.ops,
            vec![ops3()[1].clone(), ops3()[0].clone()],
            "only the successor's records replay"
        );
        assert_eq!(r.fenced_records, 1, "the zombie's append is counted as fenced");
        assert!(!r.truncated_tail, "fencing is a skip, not damage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_above_snapshot_epoch_is_a_damaged_tail() {
        let dir = scratch("aboveepoch");
        let mut wd = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        wd.set_epoch(2);
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        // An epoch-4 record with no epoch-4 snapshot covering it cannot
        // occur in a clean history (writers switch files when raised),
        // so finding one *inside* the chosen journal — hand-forged here
        // — must stop replay, not guess.
        let payload = format!("4 1 {}", ops3()[0].encode());
        let frame = format!(
            "J {} {:016x}\n{payload}\n",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        std::fs::write(dir.join("journal.2.log"), frame).unwrap();
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.epoch, 2);
        assert!(r.ops.is_empty());
        assert!(r.truncated_tail);
        assert_eq!(r.fenced_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_layout_without_epochs_recovers_and_upgrades() {
        // A directory written before epoch fencing existed: bare file
        // names, no `epoch` line in the snapshot, no epoch field in the
        // journal payloads. It must recover losslessly as epoch 0.
        let dir = scratch("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let s = schema("S");
        let mut body = Vec::new();
        body.extend_from_slice(b"tenant t\nworkspace w\nseq 0\nundo 0 redo 0\n");
        let bytes = codec::encode_schema(&s);
        body.extend_from_slice(format!("schema {}\n", bytes.len()).as_bytes());
        body.extend_from_slice(&bytes);
        let mut file =
            format!("{SNAP_MAGIC} {} {:016x}\n", body.len(), fnv64(&body)).into_bytes();
        file.extend_from_slice(&body);
        std::fs::write(dir.join("snapshot.car"), file).unwrap();
        let mut journal = Vec::new();
        for (i, op) in ops3().iter().enumerate() {
            let payload = format!("{} {}", i + 1, op.encode());
            journal.extend_from_slice(
                format!("J {} {:016x}\n{payload}\n", payload.len(), fnv64(payload.as_bytes()))
                    .as_bytes(),
            );
        }
        std::fs::write(dir.join("journal.log"), journal).unwrap();

        let r = WorkspaceDir::recover(&dir, Disk::real()).expect("legacy dir recovers");
        assert_eq!(r.epoch, 0);
        assert_eq!((r.tenant.as_str(), r.workspace.as_str()), ("t", "w"));
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&s));
        assert_eq!(r.ops, ops3());
        assert!(!r.truncated_tail);
        assert_eq!(r.fenced_records, 0);

        // Adoption upgrades the directory in place: the fencing
        // snapshot moves to the epoch-named files and sweeps the legacy
        // pair, and nothing is lost across the migration.
        let mut wd = r.dir;
        wd.set_epoch(1);
        wd.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        wd.append_op(&JournalOp::Undo).unwrap();
        assert!(!dir.join("snapshot.car").exists(), "legacy snapshot swept");
        assert!(!dir.join("journal.log").exists(), "legacy journal swept");
        let r2 = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r2.epoch, 1);
        assert_eq!(codec::encode_schema(&r2.schema), codec::encode_schema(&schema("S2")));
        assert_eq!(r2.ops, vec![JournalOp::Undo]);
        assert_eq!(r2.fenced_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zombie_snapshot_and_truncation_cannot_clobber_successor() {
        // The full zombie write cycle — snapshot publication,
        // compaction truncation, appends — after a takeover. All of it
        // must land in the zombie's own stale-epoch files, leaving the
        // successor's byte-identical.
        let dir = scratch("zombiesnap");
        let mut zombie = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        zombie.set_epoch(2);
        zombie.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        zombie.append_op(&ops3()[0]).unwrap();

        let rec = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        let mut successor = rec.dir;
        successor.set_epoch(3);
        successor.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        successor.append_op(&ops3()[1]).unwrap();
        let snap = std::fs::read(dir.join("snapshot.3.car")).unwrap();
        let journal = std::fs::read(dir.join("journal.3.log")).unwrap();

        // The paused zombie resumes between a (passed) lease check and
        // its writes: a stale snapshot replace + journal truncation,
        // then a stale append.
        zombie.save_snapshot("t", "w", &schema("Stale"), &[], &[]).unwrap();
        zombie.append_op(&ops3()[2]).unwrap();
        assert_eq!(
            std::fs::read(dir.join("snapshot.3.car")).unwrap(),
            snap,
            "zombie snapshot publication must not replace the successor's"
        );
        assert_eq!(
            std::fs::read(dir.join("journal.3.log")).unwrap(),
            journal,
            "zombie truncation/repair must not touch the successor's journal"
        );

        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("S2")));
        assert_eq!(r.ops, vec![ops3()[1].clone()], "only the successor's append replays");
        assert_eq!(r.fenced_records, 1, "the zombie's post-takeover append is fenced");
        assert!(!r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_goes_odd_during_compaction_and_even_after() {
        let dir = scratch("gen");
        let disk = Disk::real();
        assert_eq!(read_generation(&dir, &disk), None, "fresh dir has no generation");
        let mut wd = WorkspaceDir::create(&dir, disk.clone()).unwrap();
        wd.save_snapshot("t", "w", &schema("S"), &[], &[]).unwrap();
        let g1 = read_generation(&dir, &disk).unwrap();
        assert!(g1.is_multiple_of(2), "settled generation is even");
        wd.append_op(&ops3()[0]).unwrap();
        wd.save_snapshot("t", "w", &schema("S2"), &[], &[]).unwrap();
        let g2 = read_generation(&dir, &disk).unwrap();
        assert!(g2 > g1 && g2.is_multiple_of(2), "compaction bumps the settled generation: {g1} -> {g2}");

        // Dying mid-compaction (truncate and the post-bump both fail)
        // leaves the generation odd — the marker a reader retries on.
        let faults = DiskFaults::new();
        let mut wd = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        faults.trip_after(5);
        wd.save_snapshot("t", "w", &schema("S3"), &[], &[]).unwrap();
        faults.disarm();
        let g3 = read_generation(&dir, &disk).unwrap();
        assert!(g3 > g2 && !g3.is_multiple_of(2), "a stranded compaction reads odd: {g2} -> {g3}");

        // The next healthy snapshot settles it even again.
        wd.save_snapshot("t", "w", &schema("S3"), &[], &[]).unwrap();
        let g4 = read_generation(&dir, &disk).unwrap();
        assert!(g4 > g3 && g4.is_multiple_of(2), "recovery settles the generation: {g3} -> {g4}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replacement_writer_continues_seq_so_stale_records_cannot_replay() {
        let dir = scratch("replaceseq");
        let mut old = WorkspaceDir::create(&dir, Disk::real()).unwrap();
        old.save_snapshot("t", "w", &schema("Old"), &[], &[]).unwrap();
        for op in &ops3() {
            old.append_op(op).unwrap(); // journal holds seq 1..=3
        }
        old.detach();

        // Replace the workspace, but fail the compaction truncation —
        // the crash window where the new snapshot coexists with the old
        // records. save_snapshot costs the generation read + pre-bump
        // (3 ops) plus the snapshot write+rename, then the set_len trips.
        let faults = DiskFaults::new();
        let mut new = WorkspaceDir::create(&dir, Disk::faulty(faults.clone())).unwrap();
        faults.trip_after(5);
        new.save_snapshot("t", "w", &schema("New"), &[], &[]).unwrap();
        faults.disarm();
        assert!(std::fs::metadata(dir.join("journal.log")).unwrap().len() > 0);

        // The new snapshot's sequence number covers the stale records:
        // recovery skips them instead of replaying them on the new state.
        let r = WorkspaceDir::recover(&dir, Disk::real()).unwrap();
        assert_eq!(codec::encode_schema(&r.schema), codec::encode_schema(&schema("New")));
        assert!(r.ops.is_empty(), "old records must not replay on the new snapshot");
        assert!(!r.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
