//! Crash-safe persistence: a durable content-addressed store for
//! reasoning results, workspace snapshot/journal files, and a
//! disk-fault injection layer (std `fs` only — no external crates).
//!
//! The subsystem follows one discipline end to end, mirroring the
//! answer-preserving rules of the in-memory caches:
//!
//! * **Every durable artifact is self-verifying.** Store entries,
//!   snapshots and journal records all carry a magic tag, explicit
//!   lengths and an FNV-1a checksum; a reader validates all three
//!   before trusting a single byte.
//! * **A bad artifact is a miss, never an answer.** Corrupt or
//!   half-written store entries are deleted and reported as cache
//!   misses; a corrupt snapshot makes the workspace unrecoverable
//!   (fresh start); a corrupt journal tail truncates replay to the
//!   last intact prefix. No code path panics on hostile bytes and no
//!   code path returns data that failed validation.
//! * **Writes are atomic or harmless.** Store entries and snapshots
//!   are written to a temp file and published with `rename`; journal
//!   appends track the last known-good length and truncate a dirty
//!   tail before the next append. A crash at any instant leaves
//!   either the old artifact, the new artifact, or garbage that
//!   validation rejects.
//!
//! Fault injection ([`fault::DiskFaults`]) wraps every filesystem
//! primitive ([`disk::Disk`]) so tests can trip the k-th I/O
//! operation, tear a write in half, or corrupt files directly, and
//! assert the discipline above actually holds.
//!
//! A fourth rule extends the discipline across *process* boundaries:
//!
//! * **Writers are fenced, not trusted.** Each workspace directory is
//!   guarded by an advisory lease ([`lease::Lease`]) whose epoch is
//!   stamped into every durable artifact: snapshot and journal files
//!   are *named* by epoch (`snapshot.<epoch>.car`,
//!   `journal.<epoch>.log`), and the epoch is also burned into every
//!   journal frame and snapshot header. Epochs are never reused, so a
//!   deposed writer that resumes after takeover writes only to its own
//!   stale-epoch files — it can neither smuggle records into the
//!   history nor clobber the successor's snapshot or journal; recovery
//!   adopts the highest intact epoch and counts the zombie's leftovers
//!   as fenced. Followers read the same files without any lease, using
//!   the generation file as a seqlock around snapshot compaction.

pub mod codec;
pub mod disk;
pub mod fault;
pub mod journal;
pub mod lease;
pub mod store;

pub use disk::Disk;
pub use fault::DiskFaults;
pub use journal::{read_generation, JournalOp, Recovered, WorkspaceDir};
pub use lease::{Acquire, Lease, LeaseInfo, LeaseWatch};
pub use store::{DiskStore, SharedStore, StoreLimits, StoreStats};
