//! Disk-fault injection: the persistence twin of
//! [`crate::budget::Budget::trip_after`].
//!
//! A [`DiskFaults`] handle is shared (cheaply cloned) into every
//! [`crate::persist::Disk`] whose I/O should be breakable. Tests arm it
//! with [`DiskFaults::trip_after`] to make the k-th and every later
//! filesystem operation fail, optionally tearing the failing write so a
//! partial entry lands on the final path — the worst case the
//! validation layer must treat as a miss. The module also exposes
//! direct corruption helpers (truncate, bit-flip, append garbage) for
//! sweeping over damage that no syscall failure produces.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    /// Filesystem operations observed so far.
    ops: AtomicU64,
    /// Fail every operation after this many have succeeded; `u64::MAX`
    /// disarms.
    allow: AtomicU64,
    /// Tear the failing `write_atomic` (partial bytes reach the final
    /// path) instead of failing cleanly.
    torn: AtomicBool,
    /// Abort the whole process at the first tripped operation instead of
    /// returning an error — the cross-process equivalent of SIGKILL,
    /// used by multi-process fleet sweeps to die at an exact trip point.
    abort: AtomicBool,
    /// Faults injected so far.
    injected: AtomicU64,
}

/// A shared, thread-safe fault plan for disk I/O.
///
/// Cloning shares the same counters, so one handle can arm faults while
/// clones embedded in [`crate::persist::Disk`] wrappers enforce them.
#[derive(Debug, Clone, Default)]
pub struct DiskFaults {
    inner: Arc<Inner>,
}

impl DiskFaults {
    /// A disarmed fault plan (all I/O succeeds until armed).
    #[must_use]
    pub fn new() -> DiskFaults {
        let f = DiskFaults::default();
        f.inner.allow.store(u64::MAX, Ordering::SeqCst);
        f
    }

    /// Arms the plan: the next `k` operations succeed, every later one
    /// fails. `trip_after(0)` fails everything from now on. Resets the
    /// operation counter.
    pub fn trip_after(&self, k: u64) {
        self.inner.ops.store(0, Ordering::SeqCst);
        self.inner.allow.store(k, Ordering::SeqCst);
    }

    /// Disarms the plan without clearing the injected-fault count.
    pub fn disarm(&self) {
        self.inner.allow.store(u64::MAX, Ordering::SeqCst);
    }

    /// Makes the *failing* atomic write tear: a prefix of the content is
    /// written to the destination path before the error is returned,
    /// simulating a crash after a partially flushed rename.
    pub fn set_torn_writes(&self, torn: bool) {
        self.inner.torn.store(torn, Ordering::SeqCst);
    }

    /// Makes the trip point fatal: instead of returning an injected
    /// error, [`DiskFaults::check`] calls [`std::process::abort`]. A
    /// child process armed this way dies exactly at the k-th disk
    /// operation with no destructors, no flushes and no cleanup — the
    /// deterministic stand-in for SIGKILL in fleet fault sweeps.
    pub fn set_abort_on_trip(&self, abort: bool) {
        self.inner.abort.store(abort, Ordering::SeqCst);
    }

    /// Number of faults injected since construction.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::SeqCst)
    }

    /// Counts one filesystem operation; returns the injected error when
    /// the plan says this operation fails.
    ///
    /// # Errors
    /// [`io::ErrorKind::Other`] tagged "injected disk fault" when armed
    /// and past the allowance.
    pub fn check(&self, op: &str) -> io::Result<()> {
        let n = self.inner.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.inner.allow.load(Ordering::SeqCst) {
            if self.inner.abort.load(Ordering::SeqCst) {
                std::process::abort();
            }
            self.inner.injected.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::other(format!("injected disk fault at {op}")));
        }
        Ok(())
    }

    /// `true` when the failing write should also tear.
    #[must_use]
    pub fn torn_writes(&self) -> bool {
        self.inner.torn.load(Ordering::SeqCst)
    }
}

/// Truncates `path` to `len` bytes (direct corruption, bypassing any
/// fault plan).
///
/// # Errors
/// Propagates filesystem errors.
pub fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

/// Flips one bit of the byte at `offset` in `path`.
///
/// # Errors
/// Propagates filesystem errors; fails if `offset` is past the end.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8];
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

/// Appends `bytes` of garbage to `path` (a torn trailing record).
///
/// # Errors
/// Propagates filesystem errors.
pub fn append_garbage(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().append(true).open(path)?;
    f.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_allowance_and_stays_tripped() {
        let f = DiskFaults::new();
        assert!(f.check("a").is_ok());
        f.trip_after(2);
        assert!(f.check("b").is_ok());
        assert!(f.check("c").is_ok());
        assert!(f.check("d").is_err());
        assert!(f.check("e").is_err(), "faults are sticky");
        assert_eq!(f.injected(), 2);
        f.disarm();
        assert!(f.check("f").is_ok());
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn clones_share_the_plan() {
        let f = DiskFaults::new();
        let g = f.clone();
        f.trip_after(0);
        assert!(g.check("x").is_err());
        assert_eq!(f.injected(), 1);
    }
}
