//! Filesystem primitives with a fault-injection seam.
//!
//! Every persistence component does its I/O through a [`Disk`] so that
//! tests can make any operation fail (or tear) via
//! [`crate::persist::DiskFaults`]. Production wiring uses
//! [`Disk::real`], which compiles down to plain `std::fs` calls.

use super::fault::DiskFaults;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A handle to the filesystem, optionally wrapped with fault injection.
#[derive(Debug, Clone, Default)]
pub struct Disk {
    faults: Option<DiskFaults>,
}

impl Disk {
    /// A disk whose operations always hit the real filesystem.
    #[must_use]
    pub fn real() -> Disk {
        Disk { faults: None }
    }

    /// A disk whose operations consult `faults` first.
    #[must_use]
    pub fn faulty(faults: DiskFaults) -> Disk {
        Disk { faults: Some(faults) }
    }

    /// The fault plan, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&DiskFaults> {
        self.faults.as_ref()
    }

    fn gate(&self, op: &str) -> io::Result<()> {
        match &self.faults {
            Some(f) => f.check(op),
            None => Ok(()),
        }
    }

    /// Reads a whole file.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate("read")?;
        fs::read(path)
    }

    /// Writes a file atomically: content goes to a sibling `.tmp` file
    /// which is then renamed over `path`. Readers see the old content,
    /// the new content, or (under an injected torn write) a partial
    /// file that checksum validation rejects — never interleaving.
    ///
    /// # Errors
    /// Injected faults and filesystem errors. On error the temp file is
    /// removed best-effort; a torn-write fault leaves a deliberately
    /// partial file at `path`.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Err(e) = self.gate("write") {
            if self.faults.as_ref().is_some_and(DiskFaults::torn_writes) {
                // Simulate a crash mid-publish: a prefix of the new
                // content reaches the destination path.
                let _ = fs::write(path, &bytes[..bytes.len() / 2]);
            }
            return Err(e);
        }
        let tmp = tmp_path(path);
        let write_tmp = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()
        })();
        if let Err(e) = write_tmp {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        match self.gate("rename").and_then(|()| fs::rename(&tmp, path)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Appends bytes to a file, creating it if absent.
    ///
    /// # Errors
    /// Injected faults and filesystem errors. An injected fault may
    /// leave a partial record appended (a torn tail) — callers must
    /// truncate back to their last known-good length.
    pub fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Err(e) = self.gate("append") {
            // A failed append is allowed to leave a torn tail behind.
            if !bytes.is_empty() {
                if let Ok(mut f) = fs::OpenOptions::new().append(true).create(true).open(path) {
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                }
            }
            return Err(e);
        }
        let mut f = fs::OpenOptions::new().append(true).create(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    /// Creates `path` exclusively (fails with `AlreadyExists` if it is
    /// already there) with `bytes` as its content — the fail-if-exists
    /// arbiter leases rely on: of any number of concurrent callers,
    /// exactly one observes success.
    ///
    /// Publication goes through `link(2)`: the content is fully written
    /// and synced at a unique temp path first, then hard-linked to
    /// `path` (which fails with `AlreadyExists` exactly like
    /// `O_CREAT|O_EXCL`). Two properties fall out that create-then-write
    /// lacks: no observer can ever see a half-written file at `path`,
    /// and the only cleanup this call performs targets its own unique
    /// temp name — so a caller that stalls mid-failure and resumes
    /// arbitrarily later cannot delete a file some racer has since
    /// legitimately claimed at `path`.
    ///
    /// # Errors
    /// Injected faults, `AlreadyExists` when another caller won the
    /// race, and filesystem errors.
    pub fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate("create_new")?;
        let tmp = tmp_path(path);
        let staged = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()
        })();
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        let linked = fs::hard_link(&tmp, path);
        let _ = fs::remove_file(&tmp);
        linked
    }

    /// Renames `from` to `to`. Renaming a path that has vanished fails
    /// with `NotFound`, which is what makes a rename the exactly-one-wins
    /// arbiter for stealing an expired lease.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate("rename")?;
        fs::rename(from, to)
    }

    /// Truncates (or extends with zeros) a file to `len` bytes.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate("set_len")?;
        let f = fs::OpenOptions::new().write(true).create(true).truncate(false).open(path)?;
        f.set_len(len)
    }

    /// Removes a file (ok if already gone).
    ///
    /// # Errors
    /// Injected faults and filesystem errors other than `NotFound`.
    pub fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate("remove")?;
        match fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Creates a directory and all parents.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate("mkdir")?;
        fs::create_dir_all(path)
    }

    /// Lists the entries of a directory.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate("readdir")?;
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    /// Size of a file in bytes, `None` if it does not exist.
    ///
    /// # Errors
    /// Injected faults and filesystem errors other than `NotFound`.
    pub fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.gate("stat")?;
        match fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Metadata of a file.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn stat(&self, path: &Path) -> io::Result<fs::Metadata> {
        self.gate("stat")?;
        fs::metadata(path)
    }
}

/// A fresh sibling temp path for [`Disk::write_atomic`] (always `.tmp`
/// suffixed, so startup sweeps recognize leftovers). Each call yields a
/// unique name: with several *processes* sharing a directory under
/// leases, two writers publishing the same file must not stage through
/// the same temp path — the loser's rename would fail, or worse,
/// publish the other writer's half-written bytes.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}-{n}.tmp", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("car-disk-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_tmp() {
        let dir = scratch("roundtrip");
        let disk = Disk::real();
        let p = dir.join("x.entry");
        disk.write_atomic(&p, b"hello").unwrap();
        assert_eq!(disk.read(&p).unwrap(), b"hello");
        disk.write_atomic(&p, b"world").unwrap();
        assert_eq!(disk.read(&p).unwrap(), b"world");
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().to_string_lossy().ends_with(".tmp")
            })
            .count();
        assert_eq!(leftovers, 0, "no temp files survive a successful publish");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_leaves_destination_untouched() {
        let dir = scratch("fault");
        let faults = DiskFaults::new();
        let disk = Disk::faulty(faults.clone());
        let p = dir.join("x.entry");
        disk.write_atomic(&p, b"good").unwrap();
        faults.trip_after(0);
        assert!(disk.write_atomic(&p, b"evil").is_err());
        faults.disarm();
        assert_eq!(disk.read(&p).unwrap(), b"good");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_partial_destination() {
        let dir = scratch("torn");
        let faults = DiskFaults::new();
        faults.set_torn_writes(true);
        let disk = Disk::faulty(faults.clone());
        let p = dir.join("x.entry");
        faults.trip_after(0);
        assert!(disk.write_atomic(&p, b"0123456789").is_err());
        faults.disarm();
        assert_eq!(disk.read(&p).unwrap(), b"01234", "half the content landed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_exclusive_publishes_whole_or_nothing() {
        let dir = scratch("excl");
        let disk = Disk::real();
        let p = dir.join("lease.lock");
        disk.create_exclusive(&p, b"claim-a").unwrap();
        assert_eq!(disk.read(&p).unwrap(), b"claim-a");
        // A loser reports AlreadyExists and leaves the winner's file
        // (and the directory) untouched.
        let err = disk.create_exclusive(&p, b"claim-b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(disk.read(&p).unwrap(), b"claim-a");
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0, "no temp files survive either attempt");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_leaves_torn_tail_for_caller_to_repair() {
        let dir = scratch("append");
        let faults = DiskFaults::new();
        let disk = Disk::faulty(faults.clone());
        let p = dir.join("journal.log");
        disk.append(&p, b"rec1\n").unwrap();
        faults.trip_after(0);
        assert!(disk.append(&p, b"rec2\n").is_err());
        faults.disarm();
        let bytes = disk.read(&p).unwrap();
        assert!(bytes.starts_with(b"rec1\n") && bytes.len() > 5, "tail is torn, not absent");
        disk.set_len(&p, 5).unwrap();
        assert_eq!(disk.read(&p).unwrap(), b"rec1\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
