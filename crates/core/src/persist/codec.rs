//! Byte-level encodings for durable artifacts: hashing, name escaping,
//! and codecs for schemas, model enumerations and schema deltas.
//!
//! All decoders are **total over hostile input**: any malformed,
//! truncated or out-of-range byte sequence decodes to `None`, never a
//! panic. Encoders are **canonical**: encoding is a pure function of
//! the value, and for schemas the decode re-interns every symbol in
//! the exact order of the original id layout, so a decoded schema's
//! canonical serialization — the in-memory cache key — is byte-equal
//! to the original's. That identity is what lets a restarted process
//! warm-start from disk with the same cache keys a cold run computes.
//!
//! The formats are line-oriented ASCII with percent-escaped symbol
//! names: trivially inspectable with a pager when debugging a data
//! dir, and free of length/endianness pitfalls.

use crate::bitset::BitSet;
use crate::incremental::{RoleLiteralSpec, SchemaDelta};
use crate::syntax::{
    AttRef, Card, ClassClause, ClassFormula, ClassLiteral, RoleClause, RoleLiteral, Schema,
    SchemaBuilder,
};
use crate::ids::{ClassId, RoleId};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, from `basis`.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a checksum (integrity headers).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// 128 bits of FNV-1a (two independent bases) as 32 lowercase hex
/// chars — the content-address used for store entry and workspace
/// directory names. Not cryptographic; collisions are harmless because
/// every entry embeds its full key and readers verify it.
#[must_use]
pub fn hash128_hex(bytes: &[u8]) -> String {
    let a = fnv1a(FNV_OFFSET, bytes);
    // Second lane: different basis, and walk the bytes offset by the
    // first lane so the two halves do not cancel jointly.
    let b = fnv1a(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15, &a.to_le_bytes());
    let b = fnv1a(b, bytes);
    format!("{a:016x}{b:016x}")
}

// ---------------------------------------------------------------------
// Name escaping
// ---------------------------------------------------------------------

/// Escapes a symbol name into one whitespace-free token: bytes outside
/// `[A-Za-z0-9_.-]` become `%XX`, and the empty string becomes `~`.
#[must_use]
pub fn esc(name: &str) -> String {
    if name.is_empty() {
        return "~".to_owned();
    }
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-') {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02X}");
        }
    }
    out
}

/// Escapes a name into a filesystem-safe path segment: like [`esc`],
/// but a leading `.` is escaped too, so no wire-supplied name can
/// yield `.` or `..` (or a hidden file) and traverse out of its root
/// directory. [`unesc`] inverts it.
#[must_use]
pub fn esc_path(name: &str) -> String {
    let out = esc(name);
    match out.strip_prefix('.') {
        Some(rest) => format!("%2E{rest}"),
        None => out,
    }
}

/// Inverse of [`esc`]. `None` for malformed escapes or invalid UTF-8.
#[must_use]
pub fn unesc(token: &str) -> Option<String> {
    if token == "~" {
        return Some(String::new());
    }
    let bytes = token.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

// ---------------------------------------------------------------------
// Formula / card tokens
// ---------------------------------------------------------------------

/// One-token encoding of a class-formula: `T` for ⊤, else clauses
/// joined by `;`, literals joined by `,`, each literal `+i` or `-i`
/// over class indices.
#[must_use]
pub fn fmt_formula(f: &ClassFormula) -> String {
    if f.clauses.is_empty() {
        return "T".to_owned();
    }
    let mut out = String::new();
    for (ci, clause) in f.clauses.iter().enumerate() {
        if ci > 0 {
            out.push(';');
        }
        for (li, l) in clause.literals.iter().enumerate() {
            if li > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}{}", if l.positive { '+' } else { '-' }, l.class.index());
        }
    }
    out
}

/// Inverse of [`fmt_formula`]; class indices must be below `limit`.
#[must_use]
pub fn parse_formula(token: &str, limit: usize) -> Option<ClassFormula> {
    if token == "T" {
        return Some(ClassFormula::top());
    }
    let mut clauses = Vec::new();
    for clause in token.split(';') {
        let mut literals = Vec::new();
        if !clause.is_empty() {
            for lit in clause.split(',') {
                let (sign, idx) = lit.split_at_checked(1)?;
                let positive = match sign {
                    "+" => true,
                    "-" => false,
                    _ => return None,
                };
                let idx: usize = idx.parse().ok()?;
                if idx >= limit {
                    return None;
                }
                literals.push(ClassLiteral { class: ClassId::from_index(idx), positive });
            }
        }
        clauses.push(ClassClause::new(literals));
    }
    Some(ClassFormula { clauses })
}

/// One-token encoding of a cardinality: `min:max` or `min:inf`.
#[must_use]
pub fn fmt_card(card: Card) -> String {
    match card.max {
        Some(max) => format!("{}:{}", card.min, max),
        None => format!("{}:inf", card.min),
    }
}

/// Inverse of [`fmt_card`].
#[must_use]
pub fn parse_card(token: &str) -> Option<Card> {
    let (min, max) = token.split_once(':')?;
    let min: u64 = min.parse().ok()?;
    let max = match max {
        "inf" => None,
        n => Some(n.parse().ok()?),
    };
    Some(Card { min, max })
}

// ---------------------------------------------------------------------
// Schema codec
// ---------------------------------------------------------------------

/// Magic tag of the schema encoding.
pub const SCHEMA_MAGIC: &str = "CARSCHEMA1";

/// Encodes a schema so that [`decode_schema`] reconstructs it with the
/// identical symbol-id layout (and therefore the identical canonical
/// cache key).
#[must_use]
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let syms = schema.symbols();
    let mut out = String::new();
    let _ = writeln!(out, "{SCHEMA_MAGIC}");
    let _ = writeln!(
        out,
        "symbols {} {} {} {}",
        syms.num_classes(),
        syms.num_attrs(),
        syms.num_rels(),
        syms.num_roles()
    );
    for c in syms.class_ids() {
        let _ = writeln!(out, "C {}", esc(syms.class_name(c)));
    }
    for a in syms.attr_ids() {
        let _ = writeln!(out, "A {}", esc(syms.attr_name(a)));
    }
    for r in syms.rel_ids() {
        let _ = writeln!(out, "R {}", esc(syms.rel_name(r)));
    }
    for u in 0..syms.num_roles() {
        let _ = writeln!(out, "U {}", esc(syms.role_name(RoleId::from_index(u))));
    }
    for (id, def) in schema.relations() {
        let _ = write!(out, "rel {} {}", id.index(), def.roles.len());
        for &r in &def.roles {
            let _ = write!(out, " {}", esc(syms.role_name(r)));
        }
        let _ = writeln!(out, " {}", def.constraints.len());
        for clause in &def.constraints {
            let _ = write!(out, "rclause {}", clause.literals.len());
            for l in &clause.literals {
                let _ = write!(
                    out,
                    " {} {}",
                    esc(syms.role_name(l.role)),
                    fmt_formula(&l.formula)
                );
            }
            out.push('\n');
        }
    }
    for (id, def) in schema.classes() {
        let _ = writeln!(
            out,
            "class {} {} {} {}",
            id.index(),
            fmt_formula(&def.isa),
            def.attrs.len(),
            def.participations.len()
        );
        for s in &def.attrs {
            let _ = writeln!(
                out,
                "att {} {} {} {}",
                esc(syms.attr_name(s.att.attr())),
                u8::from(s.att.is_inverse()),
                fmt_card(s.card),
                fmt_formula(&s.ty)
            );
        }
        for p in &def.participations {
            let _ = writeln!(
                out,
                "part {} {} {}",
                esc(syms.rel_name(p.rel)),
                esc(syms.role_name(p.role)),
                fmt_card(p.card)
            );
        }
    }
    out.into_bytes()
}

/// Decodes a schema encoded by [`encode_schema`]. `None` on any
/// malformed input; on success the schema is structurally identical to
/// the encoded one, including symbol-id layout.
#[must_use]
pub fn decode_schema(bytes: &[u8]) -> Option<Schema> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    if lines.next()? != SCHEMA_MAGIC {
        return None;
    }
    let counts: Vec<&str> = lines.next()?.split(' ').collect();
    let [tag, nc, na, nr, nu] = counts.as_slice() else {
        return None;
    };
    if *tag != "symbols" {
        return None;
    }
    let (nc, na): (usize, usize) = (nc.parse().ok()?, na.parse().ok()?);
    let (nr, nu): (usize, usize) = (nr.parse().ok()?, nu.parse().ok()?);
    // Cheap sanity bound so hostile headers cannot demand huge loops.
    if nc.max(na).max(nr).max(nu) > 1_000_000 {
        return None;
    }

    let mut b = SchemaBuilder::new();
    let named = |lines: &mut std::str::Lines<'_>, tag: &str, n: usize| -> Option<Vec<String>> {
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines.next()?;
            let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
            names.push(unesc(rest)?);
        }
        Some(names)
    };
    let class_names = named(&mut lines, "C", nc)?;
    let attr_names = named(&mut lines, "A", na)?;
    let rel_names = named(&mut lines, "R", nr)?;
    let role_names = named(&mut lines, "U", nu)?;

    // Intern every alphabet in the recorded id order; if any name
    // repeats, interning collapses it and the index check fails.
    for (i, name) in class_names.iter().enumerate() {
        if b.class(name).index() != i {
            return None;
        }
    }
    for (i, name) in attr_names.iter().enumerate() {
        if b.attribute(name).index() != i {
            return None;
        }
    }
    for (i, name) in role_names.iter().enumerate() {
        if b.role(name).index() != i {
            return None;
        }
    }

    // Relations, in id order, then their constraint clauses.
    for (i, name) in rel_names.iter().enumerate() {
        let header: Vec<&str> = lines.next()?.split(' ').collect();
        if header.first() != Some(&"rel") || header.get(1)?.parse::<usize>().ok()? != i {
            return None;
        }
        let arity: usize = header.get(2)?.parse().ok()?;
        if header.len() != 4 + arity {
            return None;
        }
        let mut roles = Vec::with_capacity(arity);
        for tok in &header[3..3 + arity] {
            roles.push(unesc(tok)?);
        }
        let nclauses: usize = header.last()?.parse().ok()?;
        if nclauses > 1_000_000 {
            return None;
        }
        let rel = b.relation(name, roles.iter().map(String::as_str));
        if rel.index() != i {
            return None;
        }
        for _ in 0..nclauses {
            let parts: Vec<&str> = lines.next()?.split(' ').collect();
            if parts.first() != Some(&"rclause") {
                return None;
            }
            let nlits: usize = parts.get(1)?.parse().ok()?;
            if parts.len() != 2 + 2 * nlits {
                return None;
            }
            let mut literals = Vec::with_capacity(nlits);
            for l in 0..nlits {
                let role = unesc(parts[2 + 2 * l])?;
                let formula = parse_formula(parts[3 + 2 * l], nc)?;
                literals.push(RoleLiteral { role: b.role(&role), formula });
            }
            b.relation_constraint(rel, RoleClause::new(literals));
        }
    }

    // Class definitions, in id order.
    for (i, _) in class_names.iter().enumerate() {
        let header: Vec<&str> = lines.next()?.split(' ').collect();
        let ["class", idx, isa, nattrs, nparts] = header.as_slice() else {
            return None;
        };
        if idx.parse::<usize>().ok()? != i {
            return None;
        }
        let isa = parse_formula(isa, nc)?;
        let nattrs: usize = nattrs.parse().ok()?;
        let nparts: usize = nparts.parse().ok()?;
        if nattrs.max(nparts) > 1_000_000 {
            return None;
        }
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            let parts: Vec<&str> = lines.next()?.split(' ').collect();
            let ["att", name, inv, card, ty] = parts.as_slice() else {
                return None;
            };
            let attr = b.attribute(&unesc(name)?);
            let att = match *inv {
                "0" => AttRef::Direct(attr),
                "1" => AttRef::Inverse(attr),
                _ => return None,
            };
            attrs.push((att, parse_card(card)?, parse_formula(ty, nc)?));
        }
        let mut parts_specs = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let parts: Vec<&str> = lines.next()?.split(' ').collect();
            let ["part", rel, role, card] = parts.as_slice() else {
                return None;
            };
            let rel = b.relation_ref(&unesc(rel)?);
            let role = b.role(&unesc(role)?);
            parts_specs.push((rel, role, parse_card(card)?));
        }
        let class = ClassId::from_index(i);
        let mut def = b.define_class(class).isa(isa);
        for (att, card, ty) in attrs {
            def = def.attr(att, card, ty);
        }
        for (rel, role, card) in parts_specs {
            def = def.participates(rel, role, card);
        }
        def.finish();
    }

    if lines.next().is_some() {
        return None; // trailing garbage
    }
    b.build().ok()
}

// ---------------------------------------------------------------------
// Model-enumeration codec
// ---------------------------------------------------------------------

/// Magic tag of the model-enumeration encoding.
pub const MODELS_MAGIC: &str = "CARMODELS1";

/// Encodes an ordered compound-class enumeration (order is load-bearing
/// — splicing relies on it, so the decode preserves it exactly).
#[must_use]
pub fn encode_models(width: usize, models: &[BitSet]) -> Vec<u8> {
    let mut out = String::new();
    let _ = writeln!(out, "{MODELS_MAGIC} {width} {}", models.len());
    for m in models {
        let mut first = true;
        for i in m.iter() {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{i}");
            first = false;
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out.into_bytes()
}

/// Decodes a [`encode_models`] artifact. `None` on malformed input or
/// any member index outside the recorded width.
#[must_use]
pub fn decode_models(bytes: &[u8]) -> Option<(usize, Vec<BitSet>)> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split(' ').collect();
    let [magic, width, count] = header.as_slice() else {
        return None;
    };
    if *magic != MODELS_MAGIC {
        return None;
    }
    let width: usize = width.parse().ok()?;
    let count: usize = count.parse().ok()?;
    if width > 1_000_000 {
        return None;
    }
    let mut models = Vec::new();
    for _ in 0..count {
        let line = lines.next()?;
        let mut set = BitSet::new(width);
        if !line.is_empty() {
            for tok in line.split(',') {
                let i: usize = tok.parse().ok()?;
                if i >= width {
                    return None;
                }
                set.insert(i);
            }
        }
        models.push(set);
    }
    // Explicit terminator: a truncated tail can never silently pass
    // for a complete (shorter) enumeration.
    if lines.next() != Some("end") || lines.next().is_some() {
        return None;
    }
    Some((width, models))
}

// ---------------------------------------------------------------------
// Delta codec
// ---------------------------------------------------------------------

/// Encodes a schema delta as one whitespace-separated line (journal
/// record payloads).
#[must_use]
pub fn encode_delta(delta: &SchemaDelta) -> String {
    // Delta formulas carry pre-edit class ids; apply-time validation
    // bounds them, so the encoding does not.
    match delta {
        SchemaDelta::AddClass { name } => format!("addclass {}", esc(name)),
        SchemaDelta::RemoveClass { name } => format!("removeclass {}", esc(name)),
        SchemaDelta::SetIsa { class, isa } => {
            format!("setisa {} {}", esc(class), fmt_formula(isa))
        }
        SchemaDelta::SetAttribute { class, attr, inverse, spec } => {
            let tail = match spec {
                Some((card, ty)) => format!("{} {}", fmt_card(*card), fmt_formula(ty)),
                None => "-".to_owned(),
            };
            format!(
                "setattr {} {} {} {tail}",
                esc(class),
                esc(attr),
                u8::from(*inverse)
            )
        }
        SchemaDelta::SetParticipation { class, rel, role, card } => {
            let tail = match card {
                Some(card) => fmt_card(*card),
                None => "-".to_owned(),
            };
            format!("setpart {} {} {} {tail}", esc(class), esc(rel), esc(role))
        }
        SchemaDelta::SetRelation { name, roles, constraints } => {
            let mut out = format!("setrel {} {}", esc(name), roles.len());
            for r in roles {
                let _ = write!(out, " {}", esc(r));
            }
            let _ = write!(out, " {}", constraints.len());
            for clause in constraints {
                let _ = write!(out, " {}", clause.len());
                for lit in clause {
                    let _ = write!(out, " {} {}", esc(&lit.role), fmt_formula(&lit.formula));
                }
            }
            out
        }
        SchemaDelta::RemoveRelation { name } => format!("removerel {}", esc(name)),
    }
}

/// Inverse of [`encode_delta`]. `None` on malformed input.
#[must_use]
pub fn decode_delta(line: &str) -> Option<SchemaDelta> {
    const LIMIT: usize = u32::MAX as usize;
    let toks: Vec<&str> = line.split(' ').collect();
    match toks.as_slice() {
        ["addclass", name] => Some(SchemaDelta::AddClass { name: unesc(name)? }),
        ["removeclass", name] => Some(SchemaDelta::RemoveClass { name: unesc(name)? }),
        ["setisa", class, isa] => Some(SchemaDelta::SetIsa {
            class: unesc(class)?,
            isa: parse_formula(isa, LIMIT)?,
        }),
        ["setattr", class, attr, inv, "-"] => Some(SchemaDelta::SetAttribute {
            class: unesc(class)?,
            attr: unesc(attr)?,
            inverse: parse_bool(inv)?,
            spec: None,
        }),
        ["setattr", class, attr, inv, card, ty] => Some(SchemaDelta::SetAttribute {
            class: unesc(class)?,
            attr: unesc(attr)?,
            inverse: parse_bool(inv)?,
            spec: Some((parse_card(card)?, parse_formula(ty, LIMIT)?)),
        }),
        ["setpart", class, rel, role, "-"] => Some(SchemaDelta::SetParticipation {
            class: unesc(class)?,
            rel: unesc(rel)?,
            role: unesc(role)?,
            card: None,
        }),
        ["setpart", class, rel, role, card] => Some(SchemaDelta::SetParticipation {
            class: unesc(class)?,
            rel: unesc(rel)?,
            role: unesc(role)?,
            card: Some(parse_card(card)?),
        }),
        ["removerel", name] => Some(SchemaDelta::RemoveRelation { name: unesc(name)? }),
        ["setrel", name, nroles, rest @ ..] => {
            let name = unesc(name)?;
            let nroles: usize = nroles.parse().ok()?;
            if rest.len() < nroles + 1 || nroles > 100_000 {
                return None;
            }
            let mut roles = Vec::with_capacity(nroles);
            for tok in &rest[..nroles] {
                roles.push(unesc(tok)?);
            }
            let mut it = rest[nroles..].iter();
            let nclauses: usize = it.next()?.parse().ok()?;
            if nclauses > 100_000 {
                return None;
            }
            let mut constraints = Vec::with_capacity(nclauses);
            for _ in 0..nclauses {
                let nlits: usize = it.next()?.parse().ok()?;
                if nlits > 100_000 {
                    return None;
                }
                let mut clause = Vec::with_capacity(nlits);
                for _ in 0..nlits {
                    let role = unesc(it.next()?)?;
                    let formula = parse_formula(it.next()?, LIMIT)?;
                    clause.push(RoleLiteralSpec { role, formula });
                }
                constraints.push(clause);
            }
            if it.next().is_some() {
                return None;
            }
            Some(SchemaDelta::SetRelation { name, roles, constraints })
        }
        _ => None,
    }
}

fn parse_bool(tok: &str) -> Option<bool> {
    match tok {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::ClassFormula;

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Pers on"); // space: exercises escaping
        let prof = b.class("Professor");
        let student = b.class("Student");
        let teaches = b.attribute("teaches%");
        let works = b.relation("Works", ["who", "where"]);
        let who = b.role("who");
        b.define_class(prof)
            .isa(ClassFormula::class(person))
            .attr(
                AttRef::Direct(teaches),
                Card::new(1, 2),
                ClassFormula::class(student),
            )
            .attr(AttRef::Inverse(teaches), Card::at_least(1), ClassFormula::top())
            .participates(works, who, Card::new(0, 3))
            .finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(prof)))
            .finish();
        b.relation_constraint(
            works,
            RoleClause::new(vec![RoleLiteral {
                role: who,
                formula: ClassFormula::union_of([person, student]),
            }]),
        );
        b.build().unwrap()
    }

    #[test]
    fn esc_roundtrips() {
        for name in ["plain", "with space", "pct%and~tilde", "", "日本語", "a\nb"] {
            assert_eq!(unesc(&esc(name)).as_deref(), Some(name), "{name:?}");
            assert!(
                !esc(name).contains(char::is_whitespace) && !esc(name).is_empty(),
                "token-safe: {name:?}"
            );
        }
        assert!(unesc("%zz").is_none());
        assert!(unesc("%F").is_none());
    }

    #[test]
    fn esc_path_neutralizes_traversal_segments() {
        for name in [".", "..", "...", ".hidden", "..%2F", "../../etc", "a/../b", ""] {
            let seg = esc_path(name);
            assert_ne!(seg, ".");
            assert_ne!(seg, "..");
            assert!(!seg.starts_with('.'), "no hidden files: {name:?} -> {seg}");
            assert!(!seg.contains(['/', '\\']), "no separators: {name:?} -> {seg}");
            assert_eq!(unesc(&seg).as_deref(), Some(name), "{name:?}");
        }
        // Ordinary names are unchanged (interior dots stay readable).
        assert_eq!(esc_path("v1.2-final"), "v1.2-final");
    }

    #[test]
    fn schema_codec_roundtrips_with_identical_layout() {
        let s = sample_schema();
        let bytes = encode_schema(&s);
        assert!(bytes.ends_with(b"\n"));
        let d = decode_schema(&bytes).expect("decodes");
        // Identity of the canonical encoding implies identity of symbol
        // layout and every definition.
        assert_eq!(encode_schema(&d), bytes);
        assert_eq!(d.class_id("Professor"), s.class_id("Professor"));
        assert_eq!(d.num_attrs(), s.num_attrs());
        let rel = d.rel_id("Works").unwrap();
        assert_eq!(d.rel_def(rel).constraints.len(), 1);
    }

    #[test]
    fn schema_decode_rejects_damage() {
        let bytes = encode_schema(&sample_schema());
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 3] {
            assert!(decode_schema(&bytes[..cut]).is_none(), "truncated at {cut}");
        }
        assert!(decode_schema(b"CARSCHEMA1\nsymbols 2 0 0 0\nC a\n").is_none());
        assert!(decode_schema(b"garbage").is_none());
        assert!(decode_schema(&[]).is_none());
        for i in (0..bytes.len()).step_by(7) {
            let mut dmg = bytes.clone();
            dmg[i] ^= 0x40;
            if let Some(d) = decode_schema(&dmg) {
                // A flip that still decodes must yield a well-formed
                // schema whose own encoding roundtrips — never a value
                // that panics or drifts on re-encode.
                let again = encode_schema(&d);
                assert_eq!(
                    decode_schema(&again).map(|x| encode_schema(&x)),
                    Some(again.clone())
                );
            }
        }
    }

    #[test]
    fn models_codec_roundtrips_in_order() {
        let models = vec![
            BitSet::from_iter(70, [0, 3, 69]),
            BitSet::new(70),
            BitSet::from_iter(70, 0..70),
        ];
        let bytes = encode_models(70, &models);
        let (w, d) = decode_models(&bytes).unwrap();
        assert_eq!(w, 70);
        assert_eq!(d, models);
        for cut in 0..bytes.len() {
            // Losing real content must fail; losing only the final
            // newline may still decode, but never to different models.
            match decode_models(&bytes[..cut]) {
                None => {}
                Some(got) => {
                    assert_eq!(got, (70, models.clone()), "cut {cut}");
                    assert!(cut >= bytes.len() - 1, "content lost at {cut} yet decoded");
                }
            }
        }
        assert!(decode_models(b"CARMODELS1 4 1\n9\n").is_none(), "member out of width");
    }

    #[test]
    fn delta_codec_roundtrips_every_variant() {
        let deltas = vec![
            SchemaDelta::AddClass { name: "New Class".into() },
            SchemaDelta::RemoveClass { name: "Old".into() },
            SchemaDelta::SetIsa {
                class: "C".into(),
                isa: parse_formula("+0,-1;+2", 10).unwrap(),
            },
            SchemaDelta::SetAttribute {
                class: "C".into(),
                attr: "a t".into(),
                inverse: true,
                spec: Some((Card::at_least(2), ClassFormula::top())),
            },
            SchemaDelta::SetAttribute {
                class: "C".into(),
                attr: "at".into(),
                inverse: false,
                spec: None,
            },
            SchemaDelta::SetParticipation {
                class: "C".into(),
                rel: "R".into(),
                role: "u".into(),
                card: Some(Card::new(1, 5)),
            },
            SchemaDelta::SetParticipation {
                class: "C".into(),
                rel: "R".into(),
                role: "u".into(),
                card: None,
            },
            SchemaDelta::SetRelation {
                name: "R".into(),
                roles: vec!["u".into(), "v w".into()],
                constraints: vec![
                    vec![
                        RoleLiteralSpec { role: "u".into(), formula: parse_formula("+1", 10).unwrap() },
                        RoleLiteralSpec { role: "v w".into(), formula: ClassFormula::top() },
                    ],
                    vec![],
                ],
            },
            SchemaDelta::RemoveRelation { name: "R".into() },
        ];
        for d in deltas {
            let line = encode_delta(&d);
            assert!(!line.contains('\n'));
            assert_eq!(decode_delta(&line).as_ref(), Some(&d), "{line}");
        }
        assert!(decode_delta("setrel R 99 u").is_none());
        assert!(decode_delta("frobnicate x").is_none());
        assert!(decode_delta("").is_none());
    }

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(hash128_hex(b"abc").len(), 32);
        assert_eq!(hash128_hex(b"abc"), hash128_hex(b"abc"));
        assert_ne!(hash128_hex(b"abc"), hash128_hex(b"abd"));
        assert_ne!(fnv64(b""), fnv64(b"\0"));
    }
}
