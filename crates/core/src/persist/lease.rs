//! Advisory per-workspace leases with epoch fencing.
//!
//! A fleet of processes sharing one `data_dir` coordinates through two
//! small files in each workspace directory:
//!
//! * `lease.lock` — the current claim: owner identity (pid, in-process
//!   nonce, label), the fencing **epoch**, and a heartbeat counter the
//!   holder bumps on every renewal. Acquisition is an atomic
//!   create-exclusive; takeover of an expired claim moves the old file
//!   aside with a rename, so of any number of racers exactly one wins.
//! * `lease.epoch` — a ratchet recording the highest epoch ever
//!   granted. Every acquisition claims `max(ratchet, visible lease
//!   epoch, caller floor) + 1` and persists the ratchet *before* the
//!   claim becomes visible, so epochs stay strictly monotone even when
//!   the lease file is removed (graceful release) or corrupted.
//!
//! Expiry is **clock-independent**: a challenger never trusts file
//! mtimes or the holder's wall clock. It fingerprints the lease file's
//! content and starts its own monotonic timer; only if the content —
//! which the holder's heartbeat rewrites — stays bit-identical for a
//! full TTL on the challenger's clock may it steal. Two fast paths skip
//! the wait: a holder pid with no `/proc/<pid>` entry (Linux) is dead,
//! and a holder in *this* process whose nonce is no longer registered
//! (the `Lease` was dropped or abandoned) is dead.
//!
//! The lease itself is advisory. What makes a stale writer harmless is
//! the fencing epoch stamped into every journal frame and snapshot
//! header by [`crate::persist::WorkspaceDir`]: records carrying an
//! epoch below the recovered snapshot's are rejected at replay, so a
//! paused "zombie" leader that resumes after takeover cannot interleave
//! surviving records with its successor's.

use super::codec::{esc, fnv64, unesc};
use super::disk::Disk;
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// File name of the claim inside a workspace directory.
pub const LEASE_FILE: &str = "lease.lock";
/// File name of the epoch ratchet inside a workspace directory.
pub const EPOCH_FILE: &str = "lease.epoch";

const LEASE_MAGIC: &str = "CARLEASE1";
const EPOCH_MAGIC: &str = "CAREPOCH1";

/// Nonces of every lease currently held by this process. A nonce
/// missing from this set marks its lease as locally dead: a real power
/// cut would have destroyed the set, so an in-process "power cut"
/// ([`Lease::abandon`]) deregisters without touching any file.
fn active_nonces() -> &'static Mutex<HashSet<u64>> {
    static SET: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

fn next_nonce() -> u64 {
    static N: AtomicU64 = AtomicU64::new(1);
    N.fetch_add(1, Ordering::SeqCst)
}

fn register_nonce(n: u64) {
    active_nonces().lock().unwrap_or_else(PoisonError::into_inner).insert(n);
}

fn deregister_nonce(n: u64) {
    active_nonces().lock().unwrap_or_else(PoisonError::into_inner).remove(&n);
}

fn nonce_is_active(n: u64) -> bool {
    active_nonces().lock().unwrap_or_else(PoisonError::into_inner).contains(&n)
}

fn frame(magic: &str, body: &str) -> Vec<u8> {
    format!("{magic} {} {:016x}\n{body}", body.len(), fnv64(body.as_bytes())).into_bytes()
}

fn unframe<'a>(magic: &str, bytes: &'a [u8]) -> Option<&'a str> {
    let text = std::str::from_utf8(bytes).ok()?;
    let (header, rest) = text.split_once('\n')?;
    let mut it = header.split(' ');
    if it.next()? != magic {
        return None;
    }
    let len: usize = it.next()?.parse().ok()?;
    let sum = u64::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() || rest.len() != len {
        return None;
    }
    (fnv64(rest.as_bytes()) == sum).then_some(rest)
}

/// What a reader learned about the current claim on a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Fencing epoch of the claim (0 when the file is unreadable).
    pub epoch: u64,
    /// Owner process id (0 when the file is unreadable).
    pub pid: u32,
    /// Owner in-process nonce (0 when the file is unreadable).
    pub nonce: u64,
    /// Owner-supplied label, for diagnostics.
    pub label: String,
    /// FNV-64 of the raw file bytes. This — not any timestamp — is what
    /// a challenger watches: heartbeats change it, a dead holder's file
    /// never does, and a corrupt file is simply a claim that never
    /// beats.
    pub fingerprint: u64,
    /// Whether the file parsed and checksummed cleanly.
    pub intact: bool,
}

/// Reads the claim on `dir`. `Ok(None)` means no lease file exists; a
/// present-but-corrupt file yields an info with `intact: false` whose
/// fingerprint still tracks the raw bytes.
///
/// # Errors
/// Injected faults and filesystem errors other than `NotFound`.
pub fn read_lease_info(dir: &Path, disk: &Disk) -> io::Result<Option<LeaseInfo>> {
    let bytes = match disk.read(&dir.join(LEASE_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let fingerprint = fnv64(&bytes);
    let parsed = unframe(LEASE_MAGIC, &bytes).and_then(parse_body);
    Ok(Some(match parsed {
        Some((pid, nonce, label, epoch)) => {
            LeaseInfo { epoch, pid, nonce, label, fingerprint, intact: true }
        }
        None => LeaseInfo {
            epoch: 0,
            pid: 0,
            nonce: 0,
            label: String::new(),
            fingerprint,
            intact: false,
        },
    }))
}

fn parse_body(body: &str) -> Option<(u32, u64, String, u64)> {
    let mut owner = None;
    let mut epoch = None;
    for line in body.lines() {
        let (key, rest) = line.split_once(' ')?;
        match key {
            "owner" => {
                let mut it = rest.split(' ');
                let pid: u32 = it.next()?.parse().ok()?;
                let nonce: u64 = it.next()?.parse().ok()?;
                let label = unesc(it.next()?)?;
                if it.next().is_some() {
                    return None;
                }
                owner = Some((pid, nonce, label));
            }
            "epoch" => epoch = Some(rest.parse().ok()?),
            "beat" => {
                let _: u64 = rest.parse().ok()?;
            }
            _ => return None,
        }
    }
    let (pid, nonce, label) = owner?;
    Some((pid, nonce, label, epoch?))
}

fn ratchet_read(dir: &Path, disk: &Disk) -> u64 {
    match disk.read(&dir.join(EPOCH_FILE)) {
        Ok(bytes) => unframe(EPOCH_MAGIC, &bytes)
            .and_then(|body| body.strip_prefix("epoch ")?.trim_end().parse().ok())
            .unwrap_or(0),
        Err(_) => 0,
    }
}

fn ratchet_write(dir: &Path, disk: &Disk, epoch: u64) -> io::Result<()> {
    // The ratchet has concurrent writers (racing claimants); this is
    // safe because `Disk::write_atomic` stages through a unique temp
    // path per call, so racers never clobber each other's staging file
    // and the last rename wins with complete content.
    disk.write_atomic(&dir.join(EPOCH_FILE), &frame(EPOCH_MAGIC, &format!("epoch {epoch}\n")))
}

/// Whether the recorded holder is provably dead, so takeover may skip
/// the TTL wait. Conservative: unknown owners (corrupt file, foreign
/// OS) are treated as alive.
fn holder_is_dead(info: &LeaseInfo) -> bool {
    if !info.intact || info.pid == 0 {
        return false;
    }
    if info.pid == std::process::id() {
        return !nonce_is_active(info.nonce);
    }
    #[cfg(target_os = "linux")]
    {
        !Path::new(&format!("/proc/{}", info.pid)).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Whether the recorded holder is a live claim of *this* process. The
/// in-process nonce registry is shared-memory ground truth, so such a
/// claim is alive no matter how long its heartbeat has been silent
/// (e.g. an `open` still building its first snapshot past the TTL).
/// A same-process challenger deposing it would gain no fault isolation
/// — they share fate — so watches pin these claims instead of expiring
/// them. Heartbeats exist for *cross-process* observers.
fn holder_is_pinned(info: &LeaseInfo) -> bool {
    info.intact && info.pid == std::process::id() && nonce_is_active(info.nonce)
}

/// Outcome of an acquisition attempt.
#[derive(Debug)]
pub enum Acquire {
    /// The caller now holds the lease.
    Acquired(Lease),
    /// Someone else holds it; observe them with a [`LeaseWatch`].
    Held(LeaseInfo),
}

/// A held claim on one workspace directory.
///
/// Dropping a `Lease` without [`Lease::release`] models a crash: the
/// nonce is deregistered (so a same-process successor can steal
/// instantly) but the file is left in place for takeover.
#[derive(Debug)]
pub struct Lease {
    dir: PathBuf,
    disk: Disk,
    epoch: u64,
    pid: u32,
    nonce: u64,
    label: String,
    beat: u64,
    released: bool,
}

impl Lease {
    /// Attempts to acquire the lease on `dir`.
    ///
    /// A missing lease file is claimed with an atomic create-exclusive.
    /// A present claim whose holder is provably dead is stolen
    /// immediately; otherwise the holder's info is returned and the
    /// caller must wait out a [`LeaseWatch`] before [`Lease::take_over`].
    ///
    /// # Errors
    /// Injected faults and filesystem errors. Losing a race is not an
    /// error — it reports `Acquire::Held`.
    pub fn acquire(dir: &Path, label: &str, disk: &Disk) -> io::Result<Acquire> {
        match read_lease_info(dir, disk)? {
            None => Self::claim(dir, label, disk, 0),
            Some(info) if holder_is_dead(&info) => Self::steal(dir, label, disk, &info),
            Some(info) => Ok(Acquire::Held(info)),
        }
    }

    /// Takes over a claim the caller has watched to expiry. Re-reads the
    /// file first: if the content changed since `observed` (the holder
    /// beat), the takeover is refused and the new info returned.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn take_over(
        dir: &Path,
        label: &str,
        disk: &Disk,
        observed: &LeaseInfo,
    ) -> io::Result<Acquire> {
        match read_lease_info(dir, disk)? {
            None => Self::claim(dir, label, disk, observed.epoch),
            Some(now) if now.fingerprint == observed.fingerprint => {
                Self::steal(dir, label, disk, &now)
            }
            Some(now) => Ok(Acquire::Held(now)),
        }
    }

    fn claim(dir: &Path, label: &str, disk: &Disk, floor: u64) -> io::Result<Acquire> {
        let epoch = ratchet_read(dir, disk).max(floor) + 1;
        // The ratchet must be durable before the claim is visible:
        // should this claim vanish (crash, corruption), no later claim
        // may reuse the epoch.
        ratchet_write(dir, disk, epoch)?;
        let lease = Lease {
            dir: dir.to_path_buf(),
            disk: disk.clone(),
            epoch,
            pid: std::process::id(),
            nonce: next_nonce(),
            label: label.to_string(),
            beat: 0,
            released: false,
        };
        match disk.create_exclusive(&dir.join(LEASE_FILE), &lease.encode()) {
            Ok(()) => {
                register_nonce(lease.nonce);
                Ok(Acquire::Acquired(lease))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // Lost the create race; report whoever won (or a blank
                // claim if they released in the meantime — callers just
                // retry).
                Ok(Acquire::Held(read_lease_info(dir, disk)?.unwrap_or(LeaseInfo {
                    epoch,
                    pid: 0,
                    nonce: 0,
                    label: String::new(),
                    fingerprint: 0,
                    intact: false,
                })))
            }
            Err(e) => Err(e),
        }
    }

    fn steal(dir: &Path, label: &str, disk: &Disk, old: &LeaseInfo) -> io::Result<Acquire> {
        // Move the stale claim aside. Renaming a vanished file fails
        // with NotFound, so of any number of concurrent stealers exactly
        // one proceeds; losers fall back to reporting the new holder.
        let aside = dir.join(format!("lease.steal.{}.{}", std::process::id(), next_nonce()));
        match disk.rename(&dir.join(LEASE_FILE), &aside) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return match read_lease_info(dir, disk)? {
                    Some(now) => Ok(Acquire::Held(now)),
                    None => Self::claim(dir, label, disk, old.epoch),
                };
            }
            Err(e) => return Err(e),
        }
        let res = Self::claim(dir, label, disk, old.epoch);
        let _ = disk.remove(&aside);
        res
    }

    fn encode(&self) -> Vec<u8> {
        frame(
            LEASE_MAGIC,
            &format!(
                "owner {} {} {}\nepoch {}\nbeat {}\n",
                self.pid,
                self.nonce,
                esc(&self.label),
                self.epoch,
                self.beat
            ),
        )
    }

    /// The fencing epoch this claim was granted.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The directory this lease guards.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Heartbeat: bumps the beat counter and rewrites the claim, which
    /// changes the fingerprint every challenger is watching. Returns
    /// `Ok(false)` — fenced — when the file no longer shows this claim
    /// (taken over, removed, or corrupted); a fenced holder must stop
    /// writing.
    ///
    /// # Errors
    /// Injected faults and filesystem errors (transient: the claim may
    /// still be ours; retry next tick).
    pub fn renew(&mut self) -> io::Result<bool> {
        if self.released || !self.validate()? {
            return Ok(false);
        }
        self.beat += 1;
        let bytes = self.encode();
        match self.disk.write_atomic(&self.dir.join(LEASE_FILE), &bytes) {
            Ok(()) => Ok(true),
            Err(e) => {
                self.beat -= 1;
                Err(e)
            }
        }
    }

    /// Whether the lease file still shows exactly this claim. A missing
    /// or corrupt file counts as *not ours*: the content could be a
    /// takeover in progress, and a holder that keeps writing past an
    /// ambiguous claim is how split brain starts.
    ///
    /// # Errors
    /// Injected faults and filesystem errors (transient).
    pub fn validate(&self) -> io::Result<bool> {
        if self.released {
            return Ok(false);
        }
        Ok(read_lease_info(&self.dir, &self.disk)?.is_some_and(|now| {
            now.intact && now.pid == self.pid && now.nonce == self.nonce && now.epoch == self.epoch
        }))
    }

    /// Raises the claim's epoch above `floor` (ratchet first, then the
    /// lease file). Used after recovery when the recovered snapshot
    /// carries an epoch at or above the granted one — possible only if
    /// both lease files were lost or corrupted — so the writer never
    /// stamps records a future recovery would fence.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn ensure_epoch_above(&mut self, floor: u64) -> io::Result<()> {
        if self.epoch > floor {
            return Ok(());
        }
        let epoch = floor + 1;
        ratchet_write(&self.dir, &self.disk, epoch)?;
        // Stage the raise, write the claim, and only keep the new
        // values if the write landed: on failure this handle must still
        // match the on-disk claim, or a caller that proceeds with the
        // old epoch (adoption checks `lease.epoch() <= rec.epoch`
        // separately) would fail its next renew()'s validate and
        // spuriously fence a healthy workspace. Over-advancing the
        // ratchet alone is harmless — it is only a floor for future
        // claims.
        let (prev_epoch, prev_beat) = (self.epoch, self.beat);
        self.epoch = epoch;
        self.beat += 1;
        if let Err(e) = self.disk.write_atomic(&self.dir.join(LEASE_FILE), &self.encode()) {
            self.epoch = prev_epoch;
            self.beat = prev_beat;
            return Err(e);
        }
        Ok(())
    }

    /// Graceful release: removes the claim file (the epoch ratchet
    /// stays), so a successor acquires immediately instead of waiting
    /// out expiry.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn release(mut self) -> io::Result<()> {
        self.released = true;
        deregister_nonce(self.nonce);
        if read_lease_info(&self.dir, &self.disk)?.is_some_and(|now| {
            now.intact && now.pid == self.pid && now.nonce == self.nonce && now.epoch == self.epoch
        }) {
            // Racing claimants at acquisition time can leave the ratchet
            // below the epoch that actually won (last ratchet write
            // wins). Removing the claim file makes the ratchet the only
            // floor a successor sees, so re-assert ours first — and keep
            // the file if that fails, leaving the epoch visible.
            if ratchet_read(&self.dir, &self.disk) < self.epoch {
                ratchet_write(&self.dir, &self.disk, self.epoch)?;
            }
            self.disk.remove(&self.dir.join(LEASE_FILE))?;
        }
        Ok(())
    }

    /// Power-cut simulation: deregisters the nonce without touching any
    /// file, exactly what dying would have done. The claim file stays
    /// for a successor to take over.
    pub fn abandon(&mut self) {
        if !self.released {
            self.released = true;
            deregister_nonce(self.nonce);
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if !self.released {
            deregister_nonce(self.nonce);
        }
    }
}

/// A challenger's observation of someone else's claim.
///
/// Expiry is judged purely on (content fingerprint, the challenger's
/// own monotonic clock): the claim expires only after it has stayed
/// bit-identical for `ttl` of *this* process's time. Holder heartbeats
/// reset the timer; provably dead holders short-circuit it.
#[derive(Debug)]
pub struct LeaseWatch {
    info: LeaseInfo,
    since: Instant,
}

impl LeaseWatch {
    /// Starts watching the claim described by `info`.
    #[must_use]
    pub fn new(info: LeaseInfo) -> LeaseWatch {
        LeaseWatch { info, since: Instant::now() }
    }

    /// The most recently observed claim (pass to [`Lease::take_over`]).
    #[must_use]
    pub fn info(&self) -> &LeaseInfo {
        &self.info
    }

    /// Re-reads the claim and reports whether takeover may be
    /// attempted. A vanished file, a provably dead holder, or `ttl`
    /// elapsed on an unchanged fingerprint all expire the watch; any
    /// content change restarts it. A claim held by a live nonce of this
    /// same process never expires — the in-process registry, not the
    /// heartbeat, is ground truth for our own liveness.
    ///
    /// # Errors
    /// Injected faults and filesystem errors.
    pub fn expired(&mut self, dir: &Path, disk: &Disk, ttl: Duration) -> io::Result<bool> {
        match read_lease_info(dir, disk)? {
            None => Ok(true),
            Some(now) => {
                if now.fingerprint != self.info.fingerprint {
                    self.info = now;
                    self.since = Instant::now();
                    return Ok(holder_is_dead(&self.info));
                }
                if holder_is_pinned(&now) {
                    return Ok(false);
                }
                Ok(holder_is_dead(&now) || self.since.elapsed() >= ttl)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fault::{flip_bit, truncate_file, DiskFaults};
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("car-lease-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn acquired(a: Acquire) -> Lease {
        match a {
            Acquire::Acquired(l) => l,
            Acquire::Held(info) => panic!("expected acquisition, held by {info:?}"),
        }
    }

    /// Writes a claim owned by a foreign-but-alive process (pid 1) so
    /// tests exercise the TTL path rather than the dead-pid fast path.
    fn plant_foreign_lease(dir: &Path, epoch: u64, beat: u64) {
        let body = format!("owner 1 7 probe\nepoch {epoch}\nbeat {beat}\n");
        fs::write(dir.join(LEASE_FILE), frame(LEASE_MAGIC, &body)).unwrap();
    }

    #[test]
    fn acquire_release_reacquire_ratchets_epoch() {
        let dir = scratch("ratchet");
        let disk = Disk::real();
        let a = acquired(Lease::acquire(&dir, "a", &disk).unwrap());
        assert_eq!(a.epoch(), 1);
        assert!(a.validate().unwrap());
        a.release().unwrap();
        assert!(!dir.join(LEASE_FILE).exists(), "graceful release removes the claim");
        let b = acquired(Lease::acquire(&dir, "b", &disk).unwrap());
        assert!(b.epoch() > 1, "epoch ratchets across a released claim: {}", b.epoch());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_in_process_holder_blocks_acquisition() {
        let dir = scratch("held");
        let disk = Disk::real();
        let a = acquired(Lease::acquire(&dir, "holder", &disk).unwrap());
        match Lease::acquire(&dir, "challenger", &disk).unwrap() {
            Acquire::Held(info) => {
                assert_eq!(info.epoch, a.epoch());
                assert_eq!(info.label, "holder");
            }
            Acquire::Acquired(_) => panic!("two live holders"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_claim_is_stolen_instantly() {
        let dir = scratch("abandon");
        let disk = Disk::real();
        let mut a = acquired(Lease::acquire(&dir, "old", &disk).unwrap());
        a.abandon();
        assert!(dir.join(LEASE_FILE).exists(), "power cut leaves the claim file");
        let b = acquired(Lease::acquire(&dir, "new", &disk).unwrap());
        assert!(b.epoch() > a.epoch());
        assert!(!a.validate().unwrap(), "old holder is fenced");
        assert!(b.validate().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeats_hold_off_a_challenger_without_wall_clock_trust() {
        let dir = scratch("beat");
        let disk = Disk::real();
        let ttl = Duration::from_millis(60);
        plant_foreign_lease(&dir, 3, 0);
        let info = read_lease_info(&dir, &disk).unwrap().unwrap();
        let mut watch = LeaseWatch::new(info);
        // Holder keeps beating: the fingerprint changes, so the watch
        // never expires no matter how much time passes.
        let start = Instant::now();
        let mut beat = 0;
        while start.elapsed() < Duration::from_millis(200) {
            beat += 1;
            plant_foreign_lease(&dir, 3, beat);
            assert!(!watch.expired(&dir, &disk, ttl).unwrap(), "beating holder was expired");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Holder stops beating: the unchanged fingerprint expires after
        // ttl on the challenger's own clock, and takeover fences it.
        while !watch.expired(&dir, &disk, ttl).unwrap() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let new = acquired(Lease::take_over(&dir, "successor", &disk, watch.info()).unwrap());
        assert!(new.epoch() > 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_same_process_claim_is_pinned_until_abandoned() {
        let dir = scratch("pin");
        let disk = Disk::real();
        let ttl = Duration::from_millis(20);
        let mut holder = acquired(Lease::acquire(&dir, "busy", &disk).unwrap());
        let info = read_lease_info(&dir, &disk).unwrap().unwrap();
        let mut watch = LeaseWatch::new(info);
        // The holder never renews (simulating a long first snapshot),
        // yet a same-process watch must not expire it: the live nonce
        // in the registry is ground truth, not the silent heartbeat.
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            !watch.expired(&dir, &disk, ttl).unwrap(),
            "watch expired a claim held by a live nonce of this process"
        );
        // Once the nonce is gone (power cut), the same watch expires on
        // the dead-holder fast path without waiting out another ttl.
        holder.abandon();
        assert!(watch.expired(&dir, &disk, ttl).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_resets_an_in_flight_takeover() {
        let dir = scratch("reset");
        let disk = Disk::real();
        plant_foreign_lease(&dir, 5, 0);
        let observed = read_lease_info(&dir, &disk).unwrap().unwrap();
        // The holder beats between observation and takeover: the
        // takeover is refused.
        plant_foreign_lease(&dir, 5, 1);
        match Lease::take_over(&dir, "late", &disk, &observed).unwrap() {
            Acquire::Held(now) => assert_ne!(now.fingerprint, observed.fingerprint),
            Acquire::Acquired(_) => panic!("stole a beating lease"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_racers_for_one_expired_lease_exactly_one_wins() {
        for round in 0..8 {
            let dir = scratch(&format!("race-{round}"));
            plant_foreign_lease(&dir, 9, 0);
            let observed = read_lease_info(&dir, &Disk::real()).unwrap().unwrap();
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
            let mut handles = Vec::new();
            for name in ["left", "right"] {
                let dir = dir.clone();
                let observed = observed.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    barrier.wait();
                    matches!(
                        Lease::take_over(&dir, name, &Disk::real(), &observed).unwrap(),
                        Acquire::Acquired(_)
                    )
                }));
            }
            let wins: usize =
                handles.into_iter().map(|h| usize::from(h.join().unwrap())).sum();
            assert_eq!(wins, 1, "round {round}: exactly one racer must win");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_lease_fences_holder_and_is_stolen_after_ttl() {
        for damage in ["flip", "truncate"] {
            let dir = scratch(&format!("corrupt-{damage}"));
            let disk = Disk::real();
            let mut holder = acquired(Lease::acquire(&dir, "holder", &disk).unwrap());
            let path = dir.join(LEASE_FILE);
            match damage {
                "flip" => flip_bit(&path, 24, 3).unwrap(),
                _ => truncate_file(&path, 10).unwrap(),
            }
            assert!(!holder.renew().unwrap(), "{damage}: holder must fence on a mangled claim");
            assert!(!holder.validate().unwrap());
            // The corrupt claim never beats; a challenger steals after
            // its own TTL and the ratchet keeps the epoch monotone.
            let info = read_lease_info(&dir, &disk).unwrap().unwrap();
            assert!(!info.intact);
            let mut watch = LeaseWatch::new(info);
            let ttl = Duration::from_millis(40);
            while !watch.expired(&dir, &disk, ttl).unwrap() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let new =
                acquired(Lease::take_over(&dir, "successor", &disk, watch.info()).unwrap());
            assert!(new.epoch() > holder.epoch(), "{damage}: epoch must ratchet past the victim");
            assert!(new.validate().unwrap());
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn injected_faults_during_acquisition_never_mint_two_holders() {
        for k in 0..8 {
            let dir = scratch(&format!("fault-{k}"));
            let faults = DiskFaults::new();
            let disk = Disk::faulty(faults.clone());
            faults.trip_after(k);
            let first = Lease::acquire(&dir, "a", &disk);
            faults.disarm();
            let holders = usize::from(matches!(first, Ok(Acquire::Acquired(_))));
            if holders == 0 {
                // The failed attempt must not have left a claim that
                // blocks a healthy successor for good: either the dir is
                // clean or the leftover is dead/corrupt and steals fast.
                let second = acquired(Lease::acquire(&dir, "b", &disk).unwrap());
                assert!(second.validate().unwrap());
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn ensure_epoch_above_failure_leaves_claim_consistent() {
        let dir = scratch("floorfail");
        let faults = DiskFaults::new();
        let disk = Disk::faulty(faults.clone());
        let mut a = acquired(Lease::acquire(&dir, "a", &disk).unwrap());
        let before = a.epoch();
        // The ratchet write (2 ops: write + rename) succeeds, the claim
        // rewrite fails. The handle must roll back to match the on-disk
        // claim — otherwise the next renew() would fail validate and
        // spuriously fence a healthy holder.
        faults.trip_after(2);
        assert!(a.ensure_epoch_above(before + 5).is_err());
        faults.disarm();
        assert_eq!(a.epoch(), before, "epoch must not outrun the on-disk claim");
        assert!(a.validate().unwrap(), "claim is still ours");
        assert!(a.renew().unwrap(), "renew must not spuriously fence");
        // A retry completes the raise end to end.
        a.ensure_epoch_above(before + 5).unwrap();
        assert_eq!(a.epoch(), before + 6);
        assert!(a.validate().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ensure_epoch_above_rewrites_claim_and_ratchet() {
        let dir = scratch("floor");
        let disk = Disk::real();
        let mut a = acquired(Lease::acquire(&dir, "a", &disk).unwrap());
        let before = a.epoch();
        a.ensure_epoch_above(before + 10).unwrap();
        assert_eq!(a.epoch(), before + 11);
        assert!(a.validate().unwrap());
        a.release().unwrap();
        let b = acquired(Lease::acquire(&dir, "b", &disk).unwrap());
        assert!(b.epoch() > before + 11, "ratchet reflects the raised epoch");
        let _ = fs::remove_dir_all(&dir);
    }
}
