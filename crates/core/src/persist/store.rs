//! The durable content-addressed store backing both cache levels.
//!
//! One flat directory of hash-named entry files. Each entry embeds its
//! full logical key plus a checksum, so the (non-cryptographic) name
//! hash never has to be trusted: a lookup reads the file named by the
//! key's hash and then verifies magic, lengths, checksum *and* the
//! embedded key before returning a byte of payload. Anything that
//! fails verification — torn write, truncation, bit rot, hash
//! collision — is deleted and reported as a miss.
//!
//! Entries are published with write-to-temp + atomic rename
//! ([`crate::persist::Disk::write_atomic`]) and the directory is kept
//! under a byte budget by the same pin-aware LRU policy
//! ([`crate::evict::LruPolicy`]) that bounds the in-memory caches.

use super::codec::{fnv64, hash128_hex};
use super::disk::Disk;
use crate::evict::LruPolicy;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Magic tag of a store entry file.
pub const ENTRY_MAGIC: &str = "CARSTORE1";
/// Default byte budget (256 MiB).
const DEFAULT_MAX_BYTES: u64 = 256 << 20;

/// Size budget for a [`DiskStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLimits {
    /// Total bytes of entry files the store may keep; least-recently
    /// used unpinned entries are deleted to stay under it.
    pub max_bytes: u64,
}

impl Default for StoreLimits {
    fn default() -> StoreLimits {
        StoreLimits { max_bytes: DEFAULT_MAX_BYTES }
    }
}

/// Monotonic counters describing a store's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that returned a verified payload.
    pub hits: u64,
    /// Lookups that found nothing (or an unreadable file).
    pub misses: u64,
    /// Entries written successfully.
    pub puts: u64,
    /// Entries that failed verification and were deleted.
    pub corrupt_dropped: u64,
    /// Writes that failed (fault, disk error); the store stays usable.
    pub write_failures: u64,
    /// Entries deleted by the size budget.
    pub evicted: u64,
}

/// A shared handle to one store, used by every workspace of a process.
pub type SharedStore = Arc<Mutex<DiskStore>>;

/// The on-disk content-addressed store. Not internally synchronized —
/// share it as a [`SharedStore`].
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    disk: Disk,
    policy: LruPolicy,
    stats: StoreStats,
    /// A read-only store never writes, deletes, sweeps, or evicts: the
    /// directory belongs to a concurrent leader process and a follower
    /// may only observe it.
    read_only: bool,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`, scanning
    /// existing entries into the eviction policy — oldest files
    /// stalest — and sweeping leftover temp files from interrupted
    /// writes.
    ///
    /// # Errors
    /// Injected faults and filesystem errors while creating or
    /// scanning the directory.
    pub fn open(dir: &Path, limits: StoreLimits, disk: Disk) -> std::io::Result<DiskStore> {
        disk.create_dir_all(dir)?;
        let mut policy = LruPolicy::new(limits.max_bytes);
        let mut found: Vec<(SystemTime, String, u64)> = Vec::new();
        for path in disk.read_dir(dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                let _ = disk.remove(&path);
                continue;
            }
            if !name.ends_with(".entry") {
                continue;
            }
            let Ok(meta) = disk.stat(&path) else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((mtime, name.to_owned(), meta.len()));
        }
        // Within one filesystem-timestamp granule the mtime tie is
        // broken by name: arbitrary as an LRU estimate, but stable
        // across reopens.
        found.sort();
        for (_, name, len) in found {
            policy.insert(&name, len);
        }
        let mut store = DiskStore {
            dir: dir.to_owned(),
            disk,
            policy,
            stats: StoreStats::default(),
            read_only: false,
        };
        store.enforce_budget();
        Ok(store)
    }

    /// Opens a store with the real filesystem (no fault injection).
    ///
    /// # Errors
    /// As [`DiskStore::open`].
    pub fn open_real(dir: &Path, limits: StoreLimits) -> std::io::Result<DiskStore> {
        DiskStore::open(dir, limits, Disk::real())
    }

    /// Opens an existing store for read-only use by a follower sharing
    /// the directory with a live leader. Nothing is created, swept,
    /// deleted, or evicted — not even corrupt entries (the leader owns
    /// them; here they are just misses) — and [`DiskStore::put`] is a
    /// silent no-op. A missing directory is an empty store, never an
    /// error: the leader may simply not have created it yet.
    #[must_use]
    pub fn open_read_only(dir: &Path, limits: StoreLimits, disk: Disk) -> DiskStore {
        let mut policy = LruPolicy::new(limits.max_bytes);
        policy.set_frozen(true);
        let mut found: Vec<(SystemTime, String, u64)> = Vec::new();
        for path in disk.read_dir(dir).unwrap_or_default() {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(".entry") {
                continue;
            }
            let Ok(meta) = disk.stat(&path) else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((mtime, name.to_owned(), meta.len()));
        }
        found.sort();
        for (_, name, len) in found {
            policy.insert(&name, len);
        }
        DiskStore {
            dir: dir.to_owned(),
            disk,
            policy,
            stats: StoreStats::default(),
            read_only: true,
        }
    }

    /// `true` when this store was opened with
    /// [`DiskStore::open_read_only`].
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn file_name(key: &str) -> String {
        format!("e{}.entry", hash128_hex(key.as_bytes()))
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Looks up `key`; returns the verified payload or `None` (a
    /// miss). Corrupt entries are deleted on the way out. Never errors:
    /// any I/O failure is a miss.
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let name = DiskStore::file_name(key);
        let path = self.path_of(&name);
        let Ok(bytes) = self.disk.read(&path) else {
            self.stats.misses += 1;
            return None;
        };
        match decode_entry(&bytes, key) {
            Some(payload) => {
                self.stats.hits += 1;
                if !self.policy.touch(&name) {
                    self.policy.insert(&name, bytes.len() as u64);
                }
                Some(payload)
            }
            None => {
                self.stats.misses += 1;
                if !self.read_only {
                    // The file may belong to a concurrent writer
                    // mid-publish; only an owning store deletes it.
                    self.stats.corrupt_dropped += 1;
                    self.policy.remove(&name);
                    let _ = self.disk.remove(&path);
                }
                None
            }
        }
    }

    /// Stores `payload` under `key`. Returns `false` (and leaves the
    /// store consistent) when the write fails; a torn partial file, if
    /// any, is swept immediately.
    pub fn put(&mut self, key: &str, payload: &[u8]) -> bool {
        if self.read_only {
            return false;
        }
        let name = DiskStore::file_name(key);
        let path = self.path_of(&name);
        let bytes = encode_entry(key, payload);
        match self.disk.write_atomic(&path, &bytes) {
            Ok(()) => {
                self.stats.puts += 1;
                self.policy.insert(&name, bytes.len() as u64);
                self.enforce_budget();
                true
            }
            Err(_) => {
                self.stats.write_failures += 1;
                // A torn write may have left a partial file on the
                // final path; validation would reject it anyway, but
                // sweep it now so it cannot linger.
                if !self.policy.contains(&name) {
                    let _ = self.disk.remove(&path);
                }
                false
            }
        }
    }

    /// Pins `key` against eviction until [`DiskStore::unpin`].
    pub fn pin(&mut self, key: &str) {
        self.policy.pin(&DiskStore::file_name(key));
    }

    /// Releases one pin on `key`.
    pub fn unpin(&mut self, key: &str) {
        self.policy.unpin(&DiskStore::file_name(key));
    }

    /// `true` when an entry for `key` is tracked (it may still fail
    /// verification when read).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.policy.contains(&DiskStore::file_name(key))
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Total bytes of tracked entry files.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.policy.total_weight()
    }

    /// Number of tracked entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.policy.len()
    }

    /// `true` when the store tracks no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.policy.is_empty()
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn enforce_budget(&mut self) {
        for name in self.policy.evict() {
            self.stats.evicted += 1;
            let _ = self.disk.remove(&self.path_of(&name));
        }
    }
}

/// Builds the on-disk bytes of one entry:
/// `CARSTORE1 <key_len> <payload_len> <fnv64 hex>\n<key><payload>`.
#[must_use]
pub fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut content = Vec::with_capacity(key.len() + payload.len());
    content.extend_from_slice(key.as_bytes());
    content.extend_from_slice(payload);
    let header = format!(
        "{ENTRY_MAGIC} {} {} {:016x}\n",
        key.len(),
        payload.len(),
        fnv64(&content)
    );
    let mut out = Vec::with_capacity(header.len() + content.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(&content);
    out
}

/// Verifies one entry against `key` and returns its payload; `None`
/// for any mismatch (wrong magic, lengths, checksum, or embedded key).
#[must_use]
pub fn decode_entry(bytes: &[u8], key: &str) -> Option<Vec<u8>> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [magic, key_len, payload_len, sum] = fields.as_slice() else {
        return None;
    };
    if *magic != ENTRY_MAGIC {
        return None;
    }
    let key_len: usize = key_len.parse().ok()?;
    let payload_len: usize = payload_len.parse().ok()?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    let content = &bytes[nl + 1..];
    if content.len() != key_len.checked_add(payload_len)? {
        return None;
    }
    if fnv64(content) != sum {
        return None;
    }
    if &content[..key_len] != key.as_bytes() {
        return None;
    }
    Some(content[key_len..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::fault::{self, DiskFaults};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("car-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = scratch("roundtrip");
        let mut s = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        assert!(s.get("k1").is_none());
        assert!(s.put("k1", b"payload one"));
        assert!(s.put("k2", b""));
        assert_eq!(s.get("k1").as_deref(), Some(&b"payload one"[..]));
        assert_eq!(s.get("k2").as_deref(), Some(&b""[..]));
        assert_eq!(s.stats().hits, 2);
        drop(s);
        // A fresh process sees the same entries.
        let mut s = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("k1").as_deref(), Some(&b"payload one"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_dropped_as_misses() {
        let dir = scratch("corrupt");
        let mut s = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        assert!(s.put("key", b"some payload bytes"));
        let path = dir.join(DiskStore::file_name("key"));
        // Sweep every truncation point and a bit flip at every 3rd byte.
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(s.get("key").is_none(), "truncated at {cut} must miss");
            assert!(!path.exists(), "corrupt file deleted");
            std::fs::write(&path, &full).unwrap();
            s.policy.insert(&DiskStore::file_name("key"), full.len() as u64);
        }
        for off in (0..full.len()).step_by(3) {
            std::fs::write(&path, &full).unwrap();
            fault::flip_bit(&path, off as u64, (off % 8) as u8).unwrap();
            // A flip that survives validation can only be cosmetic (e.g.
            // checksum hex case); the payload is a miss or byte-exact.
            match s.get("key") {
                None => {}
                Some(p) => assert_eq!(p, b"some payload bytes", "flip at {off}"),
            }
            std::fs::write(&path, &full).unwrap();
            s.policy.insert(&DiskStore::file_name("key"), full.len() as u64);
        }
        // Undamaged entry still verifies.
        assert_eq!(s.get("key").as_deref(), Some(&b"some payload bytes"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_under_colliding_name_is_a_miss() {
        let entry = encode_entry("actual-key", b"data");
        assert!(decode_entry(&entry, "other-key").is_none());
        assert_eq!(decode_entry(&entry, "actual-key").as_deref(), Some(&b"data"[..]));
    }

    #[test]
    fn size_budget_evicts_stalest_but_never_pinned() {
        let dir = scratch("evict");
        // Budget fits roughly two entries of ~120 bytes.
        let mut s = DiskStore::open_real(&dir, StoreLimits { max_bytes: 260 }).unwrap();
        assert!(s.put("a", &[b'a'; 60]));
        s.pin("a");
        assert!(s.put("b", &[b'b'; 60]));
        assert!(s.put("c", &[b'c'; 60]));
        // "a" is stalest but pinned; "b" went instead.
        assert!(s.contains("a") && s.contains("c"));
        assert!(!s.contains("b"));
        assert!(s.get("b").is_none());
        assert_eq!(s.get("a").unwrap(), vec![b'a'; 60]);
        assert!(s.stats().evicted >= 1);
        s.unpin("a");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_never_poison_the_store() {
        let dir = scratch("faults");
        let faults = DiskFaults::new();
        let mut s =
            DiskStore::open(&dir, StoreLimits::default(), Disk::faulty(faults.clone())).unwrap();
        assert!(s.put("good", b"durable"));
        for k in 0..6 {
            faults.trip_after(k);
            let _ = s.put("victim", b"may fail");
            let _ = s.get("victim");
            faults.disarm();
        }
        faults.set_torn_writes(true);
        faults.trip_after(0);
        assert!(!s.put("torn", b"this write tears in half"));
        faults.disarm();
        // Whatever the faults did, verified reads still work and the
        // torn entry is a miss, not garbage.
        assert!(s.get("torn").is_none());
        assert_eq!(s.get("good").as_deref(), Some(&b"durable"[..]));
        assert!(s.stats().write_failures >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_store_serves_hits_but_never_mutates() {
        let dir = scratch("readonly");
        let mut owner = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        assert!(owner.put("k", b"shared payload"));
        std::fs::write(dir.join("e999.entry.tmp"), b"in flight").unwrap();

        let mut follower =
            DiskStore::open_read_only(&dir, StoreLimits { max_bytes: 1 }, Disk::real());
        assert!(follower.is_read_only());
        assert!(dir.join("e999.entry.tmp").exists(), "no temp sweep: the leader owns it");
        assert_eq!(follower.get("k").as_deref(), Some(&b"shared payload"[..]));
        assert!(!follower.put("k2", b"refused"), "puts are no-ops");
        assert!(follower.get("k2").is_none());
        assert_eq!(follower.stats().write_failures, 0, "a refused put is not a failure");

        // Corrupt entries are misses but are NOT deleted.
        let path = dir.join(DiskStore::file_name("k"));
        fault::flip_bit(&path, 4, 1).unwrap();
        assert!(follower.get("k").is_none());
        assert!(path.exists(), "the leader's file survives");
        assert_eq!(follower.stats().corrupt_dropped, 0);

        // A missing directory is an empty store, not an error.
        let gone = scratch("readonly-missing"); // scratch() never creates the dir
        let empty = DiskStore::open_read_only(&gone, StoreLimits::default(), Disk::real());
        assert!(empty.is_empty());
        assert!(!gone.exists(), "nothing was created");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_temp_files() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("e123.entry.tmp"), b"half").unwrap();
        std::fs::write(dir.join("junk.txt"), b"ignored").unwrap();
        let s = DiskStore::open_real(&dir, StoreLimits::default()).unwrap();
        assert!(!dir.join("e123.entry.tmp").exists());
        assert!(dir.join("junk.txt").exists(), "foreign files untouched");
        assert_eq!(s.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
