//! The generalization-hierarchy fast path (§4.4 of the paper).
//!
//! Generalization hierarchies are tree-like isa structures in which
//! sibling classes are pairwise disjoint (and classes in different trees
//! are disjoint altogether) — the organization "most object-oriented
//! data models assume, either implicitly or explicitly" [BCN92, AK89].
//! For such schemas each consistent compound class is the set of classes
//! along one root-to-class path, so the number of compound classes equals
//! the number of classes and the whole method runs in polynomial time.
//!
//! [`detect`] recognizes schemas whose isa parts have this shape
//! *explicitly*: every class has at most one positive isa literal (its
//! parent), parents form a forest, and sibling disjointness (including
//! between roots of different trees) is spelled out through negative
//! literals. [`path_closure_ccs`] then produces the compound classes
//! directly, filtering by consistency so that extra negative literals
//! (beyond the sibling ones) are honored.

use crate::bitset::BitSet;
use crate::budget::{Budget, Item, ResourceExhausted};
use crate::expansion::cc_consistent;
use crate::ids::ClassId;
use crate::syntax::Schema;

/// A detected generalization hierarchy: parent links forming a forest.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// `parent[i]` = parent class index, or `None` for roots.
    pub parent: Vec<Option<usize>>,
}

/// Attempts to recognize the schema's isa structure as a generalization
/// hierarchy. Returns `None` when any condition fails (the caller then
/// falls back to a general strategy):
///
/// * every isa clause is a single literal (union-free isa parts);
/// * every class has at most one positive isa literal (its parent);
/// * the parent relation is acyclic;
/// * sibling classes (children of one parent, and the roots collectively)
///   are pairwise disjoint through an explicit negative literal in one of
///   the two definitions.
#[must_use]
pub fn detect(schema: &Schema) -> Option<Hierarchy> {
    let n = schema.num_classes();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    // negated[i] = classes j with ¬C_j among i's isa literals.
    let mut negated: Vec<BitSet> = vec![BitSet::new(n); n];

    for (class, def) in schema.classes() {
        let i = class.index();
        for clause in &def.isa.clauses {
            if clause.literals.len() != 1 {
                return None; // union in an isa part
            }
            let lit = clause.literals[0];
            if lit.positive {
                if parent[i].is_some() && parent[i] != Some(lit.class.index()) {
                    return None; // two distinct parents
                }
                if lit.class.index() == i {
                    continue; // trivial self-inclusion
                }
                parent[i] = Some(lit.class.index());
            } else {
                negated[i].insert(lit.class.index());
            }
        }
    }

    // Acyclicity of the parent relation.
    for start in 0..n {
        let mut slow = start;
        let mut steps = 0;
        while let Some(p) = parent[slow] {
            slow = p;
            steps += 1;
            if steps > n {
                return None; // cycle
            }
        }
    }

    // Sibling disjointness: group children by parent (roots together).
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, p) in parent.iter().enumerate() {
        match p {
            Some(p) => groups[*p].push(i),
            None => groups[n].push(i),
        }
    }
    for group in &groups {
        for (k, &x) in group.iter().enumerate() {
            for &y in &group[k + 1..] {
                if !negated[x].contains(y) && !negated[y].contains(x) {
                    return None; // siblings not declared disjoint
                }
            }
        }
    }

    Some(Hierarchy { parent })
}

/// The compound classes of a generalization hierarchy: one root-to-class
/// path closure per class, filtered by consistency (to honor any extra
/// negative literals). Exactly `|C|` candidates are examined, so this is
/// linear in the schema where the general strategies are exponential.
#[must_use]
pub fn path_closure_ccs(schema: &Schema, hierarchy: &Hierarchy) -> Vec<BitSet> {
    path_closure_ccs_governed(schema, hierarchy, &Budget::unbounded())
        .expect("unbounded budget cannot exhaust")
}

/// [`path_closure_ccs`] under a resource [`Budget`]: one checkpoint per
/// class, one charge per compound class kept.
///
/// # Errors
/// [`ResourceExhausted`] as soon as the budget runs out.
pub fn path_closure_ccs_governed(
    schema: &Schema,
    hierarchy: &Hierarchy,
    budget: &Budget,
) -> Result<Vec<BitSet>, ResourceExhausted> {
    let n = schema.num_classes();
    let mut out = Vec::with_capacity(n);
    for class in 0..n {
        budget.checkpoint()?;
        let mut cc = BitSet::new(n);
        let mut cur = Some(class);
        while let Some(c) = cur {
            cc.insert(c);
            cur = hierarchy.parent[c];
        }
        if cc_consistent(schema, &cc) {
            budget.charge(Item::CompoundClass, 1)?;
            out.push(cc);
        }
    }
    Ok(out)
}

/// Convenience: `ClassId` of the parent, if any.
#[must_use]
pub fn parent_of(hierarchy: &Hierarchy, class: ClassId) -> Option<ClassId> {
    hierarchy.parent[class.index()].map(ClassId::from_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::syntax::{ClassFormula, SchemaBuilder};
    use std::collections::BTreeSet;

    /// A two-tree hierarchy with explicit sibling disjointness:
    ///
    /// ```text
    ///   A            D
    ///  / \
    /// B   C          (roots A, D disjoint; siblings B, C disjoint)
    /// ```
    fn forest() -> Schema {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        let d = b.class("D");
        b.define_class(a).isa(ClassFormula::neg_class(d)).finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a).and(ClassFormula::neg_class(c)))
            .finish();
        b.define_class(c).isa(ClassFormula::class(a)).finish();
        b.build().unwrap()
    }

    #[test]
    fn detection_succeeds_on_forest() {
        let s = forest();
        let h = detect(&s).expect("is a hierarchy");
        let a = s.class_id("A").unwrap();
        let bb = s.class_id("B").unwrap();
        let d = s.class_id("D").unwrap();
        assert_eq!(parent_of(&h, bb), Some(a));
        assert_eq!(parent_of(&h, a), None);
        assert_eq!(parent_of(&h, d), None);
    }

    #[test]
    fn path_closures_match_full_enumeration() {
        let s = forest();
        let h = detect(&s).unwrap();
        let fast: BTreeSet<BitSet> = path_closure_ccs(&s, &h).into_iter().collect();
        let full: BTreeSet<BitSet> =
            enumerate::naive(&s, usize::MAX).unwrap().into_iter().collect();
        assert_eq!(fast, full);
        assert_eq!(fast.len(), 4); // one per class
    }

    #[test]
    fn union_in_isa_defeats_detection() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(c).isa(ClassFormula::union_of([a, bb])).finish();
        let s = b.build().unwrap();
        assert!(detect(&s).is_none());
    }

    #[test]
    fn two_parents_defeat_detection() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(c)
            .isa(ClassFormula::class(a).and(ClassFormula::class(bb)))
            .finish();
        let s = b.build().unwrap();
        assert!(detect(&s).is_none());
    }

    #[test]
    fn missing_sibling_disjointness_defeats_detection() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(bb).isa(ClassFormula::class(a)).finish();
        b.define_class(c).isa(ClassFormula::class(a)).finish();
        let s = b.build().unwrap();
        assert!(detect(&s).is_none()); // B, C not declared disjoint
    }

    #[test]
    fn isa_cycle_defeats_detection() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        b.define_class(a).isa(ClassFormula::class(bb)).finish();
        b.define_class(bb).isa(ClassFormula::class(a)).finish();
        let s = b.build().unwrap();
        assert!(detect(&s).is_none());
    }

    #[test]
    fn extra_negations_filter_inconsistent_paths() {
        // B isa A ∧ ¬A: inconsistent path {A, B} must be dropped.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        b.define_class(bb)
            .isa(ClassFormula::class(a).and(ClassFormula::neg_class(a)))
            .finish();
        let s = b.build().unwrap();
        // Single child; no sibling pairs; detection succeeds.
        let h = detect(&s).expect("hierarchy shape");
        let ccs = path_closure_ccs(&s, &h);
        assert_eq!(ccs.len(), 1); // only {A}
        assert!(ccs[0].contains(a.index()));
        assert!(!ccs[0].contains(bb.index()));
    }

    #[test]
    fn deep_chain_counts() {
        let mut b = SchemaBuilder::new();
        let mut prev = b.class("K0");
        for i in 1..20 {
            let cur = b.class(&format!("K{i}"));
            b.define_class(cur).isa(ClassFormula::class(prev)).finish();
            prev = cur;
        }
        let s = b.build().unwrap();
        let h = detect(&s).expect("chain is a hierarchy");
        let ccs = path_closure_ccs(&s, &h);
        assert_eq!(ccs.len(), 20);
        // Largest path contains all classes.
        assert!(ccs.iter().any(|cc| cc.len() == 20));
    }
}
