//! Enumeration strategies for consistent compound classes.
//!
//! Three ways to produce the compound-class set of the expansion:
//!
//! * [`naive`] — the "most trivial way" of §4.2: enumerate all `2^|C|`
//!   subsets and check each for consistency in linear time. Kept as the
//!   paper's own baseline (benchmarked against the others in E7).
//! * [`sat_models`] — enumerate only the models of the propositional
//!   formula `⋀_C (C → F_C)` with the AllSAT procedure of `car-logic`;
//!   equivalent output, but inconsistent candidates are pruned wholesale.
//! * the preselection/cluster strategy of §4.3–4.4 — see
//!   [`crate::preselection`] and [`crate::clusters`].
//!
//! All strategies omit the empty compound class (objects belonging to no
//! class satisfy no constraint premise; see `DESIGN.md`).

use crate::bitset::BitSet;
use crate::expansion::{cc_consistent, ExpansionTooLarge};
use crate::syntax::Schema;
use car_logic::{CnfFormula, PropLit};

/// Builds the propositional consistency formula `⋀_C (C → F_C)` of a
/// schema: one propositional variable per class (same index); one clause
/// `¬C ∨ γ` per class-clause `γ` of each isa formula. Its models are
/// exactly the consistent compound classes (including the empty one).
#[must_use]
pub fn isa_cnf(schema: &Schema) -> CnfFormula {
    let n = schema.num_classes();
    let mut f = CnfFormula::new(n);
    for (class, def) in schema.classes() {
        for clause in &def.isa.clauses {
            let mut lits = vec![PropLit::neg(class.index())];
            lits.extend(clause.literals.iter().map(|l| PropLit {
                var: l.class.index(),
                positive: l.positive,
            }));
            f.add_clause(lits);
        }
    }
    f
}

/// Enumerates consistent compound classes by sweeping all `2^|C|` subsets
/// (§4.2's trivial method). Usable only for small alphabets.
///
/// # Errors
/// [`ExpansionTooLarge`] if the alphabet exceeds 25 classes or more than
/// `max` consistent compound classes are found.
pub fn naive(schema: &Schema, max: usize) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    let n = schema.num_classes();
    if n > 25 {
        return Err(ExpansionTooLarge { what: "classes for naive enumeration", limit: 25 });
    }
    let mut out = Vec::new();
    for bits in 1u64..(1u64 << n) {
        let cc = BitSet::from_iter(n, (0..n).filter(|i| bits & (1 << i) != 0));
        if cc_consistent(schema, &cc) {
            if out.len() >= max {
                return Err(ExpansionTooLarge { what: "compound classes", limit: max });
            }
            out.push(cc);
        }
    }
    Ok(out)
}

/// Enumerates consistent compound classes as the models of [`isa_cnf`],
/// optionally under extra clauses (used by the preselection strategy to
/// inject table-derived inclusion/disjointness constraints).
///
/// # Errors
/// [`ExpansionTooLarge`] if more than `max` compound classes are found.
pub fn sat_models(
    schema: &Schema,
    extra_clauses: &[Vec<PropLit>],
    max: usize,
) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    let mut f = isa_cnf(schema);
    for clause in extra_clauses {
        f.add_clause(clause.iter().copied());
    }
    let n = schema.num_classes();
    let mut out = Vec::new();
    let mut overflow = false;
    car_logic::for_each_model(&f, |model| {
        if model.iter().all(|&b| !b) {
            return true; // skip the empty compound class
        }
        if out.len() >= max {
            overflow = true;
            return false;
        }
        out.push(BitSet::from_iter(n, (0..n).filter(|&i| model[i])));
        true
    });
    if overflow {
        return Err(ExpansionTooLarge { what: "compound classes", limit: max });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{ClassFormula, SchemaBuilder};
    use std::collections::BTreeSet;

    fn schema_with_isa() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn naive_and_sat_agree() {
        let s = schema_with_isa();
        let a: BTreeSet<BitSet> = naive(&s, usize::MAX).unwrap().into_iter().collect();
        let b: BTreeSet<BitSet> = sat_models(&s, &[], usize::MAX).unwrap().into_iter().collect();
        assert_eq!(a, b);
        // {P}, {P,Prof}, {P,S}: 3 consistent nonempty compound classes.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn no_constraints_gives_full_powerset_minus_empty() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        b.class("C");
        let s = b.build().unwrap();
        assert_eq!(naive(&s, usize::MAX).unwrap().len(), 7);
        assert_eq!(sat_models(&s, &[], usize::MAX).unwrap().len(), 7);
    }

    #[test]
    fn extra_clauses_prune_models() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        let s = b.build().unwrap();
        // Impose disjointness A ⊓ B = ⊥: ¬A ∨ ¬B.
        let extra = vec![vec![PropLit::neg(0), PropLit::neg(1)]];
        let models = sat_models(&s, &extra, usize::MAX).unwrap();
        assert_eq!(models.len(), 2); // {A}, {B}
    }

    #[test]
    fn limits_are_respected() {
        let mut b = SchemaBuilder::new();
        for i in 0..10 {
            b.class(&format!("K{i}"));
        }
        let s = b.build().unwrap();
        assert!(naive(&s, 5).is_err());
        assert!(sat_models(&s, &[], 5).is_err());
        let mut big = SchemaBuilder::new();
        for i in 0..30 {
            big.class(&format!("K{i}"));
        }
        let s = big.build().unwrap();
        assert!(naive(&s, usize::MAX).is_err());
    }

    #[test]
    fn unsatisfiable_isa_yields_no_compound_classes_with_that_class() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
        let s = b.build().unwrap();
        let ccs = naive(&s, usize::MAX).unwrap();
        assert!(ccs.iter().all(|cc| !cc.contains(0)));
        assert!(ccs.is_empty()); // only class is self-contradictory
    }
}
