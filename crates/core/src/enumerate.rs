//! Enumeration strategies for consistent compound classes.
//!
//! Three ways to produce the compound-class set of the expansion:
//!
//! * [`naive`] — the "most trivial way" of §4.2: enumerate all `2^|C|`
//!   subsets and check each for consistency in linear time. Kept as the
//!   paper's own baseline (benchmarked against the others in E7).
//! * [`sat_models`] — enumerate only the models of the propositional
//!   formula `⋀_C (C → F_C)` with the AllSAT procedure of `car-logic`;
//!   equivalent output, but inconsistent candidates are pruned wholesale.
//! * the preselection/cluster strategy of §4.3–4.4 — see
//!   [`crate::preselection`] and [`crate::clusters`].
//!
//! All strategies omit the empty compound class (objects belonging to no
//! class satisfy no constraint premise; see `DESIGN.md`).

use crate::bitset::BitSet;
use crate::budget::{Budget, Item, ResourceExhausted};
use crate::expansion::{cc_consistent, expect_too_large, BuildError, ExpansionTooLarge};
use crate::par::{self, Budget as SizeBudget};
use crate::syntax::Schema;
use car_logic::{CnfFormula, PropLit};
use std::num::NonZeroUsize;

/// Largest alphabet the naive `2^|C|` sweep accepts. Beyond this, the
/// sweep is hopeless regardless of limits, so [`naive`] and its variants
/// refuse up front with [`ExpansionTooLarge`]. The [`crate::reasoner`]
/// facade treats the cap as a tractability boundary, not an answer: when
/// `Strategy::Naive` meets a larger schema it falls back to the AllSAT
/// enumeration (identical output set) instead of surfacing this error.
pub const NAIVE_CAP: usize = 25;

/// Builds the propositional consistency formula `⋀_C (C → F_C)` of a
/// schema: one propositional variable per class (same index); one clause
/// `¬C ∨ γ` per class-clause `γ` of each isa formula. Its models are
/// exactly the consistent compound classes (including the empty one).
#[must_use]
pub fn isa_cnf(schema: &Schema) -> CnfFormula {
    let n = schema.num_classes();
    let mut f = CnfFormula::new(n);
    for (class, def) in schema.classes() {
        for clause in &def.isa.clauses {
            let mut lits = vec![PropLit::neg(class.index())];
            lits.extend(clause.literals.iter().map(|l| PropLit {
                var: l.class.index(),
                positive: l.positive,
            }));
            f.add_clause(lits);
        }
    }
    f
}

/// Enumerates consistent compound classes by sweeping all `2^|C|` subsets
/// (§4.2's trivial method). Usable only for small alphabets.
///
/// # Errors
/// [`ExpansionTooLarge`] if the alphabet exceeds 25 classes or more than
/// `max` consistent compound classes are found.
pub fn naive(schema: &Schema, max: usize) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    naive_governed(schema, max, &Budget::unbounded()).map_err(expect_too_large)
}

/// [`naive`] under a resource [`Budget`]: one checkpoint per candidate
/// subset, one charge per compound class kept.
///
/// # Errors
/// [`BuildError::TooLarge`] exactly as [`naive`], or
/// [`BuildError::Exhausted`] as soon as the budget runs out.
pub fn naive_governed(
    schema: &Schema,
    max: usize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    let n = schema.num_classes();
    if n > NAIVE_CAP {
        return Err(
            ExpansionTooLarge { what: "classes for naive enumeration", limit: NAIVE_CAP }.into()
        );
    }
    let mut out = Vec::new();
    for bits in 1u64..(1u64 << n) {
        budget.checkpoint()?;
        let cc = BitSet::from_iter(n, (0..n).filter(|i| bits & (1 << i) != 0));
        if cc_consistent(schema, &cc) {
            if out.len() >= max {
                return Err(ExpansionTooLarge { what: "compound classes", limit: max }.into());
            }
            budget.charge(Item::CompoundClass, 1)?;
            out.push(cc);
        }
    }
    Ok(out)
}

/// Enumerates consistent compound classes as the models of [`isa_cnf`],
/// optionally under extra clauses (used by the preselection strategy to
/// inject table-derived inclusion/disjointness constraints).
///
/// # Errors
/// [`ExpansionTooLarge`] if more than `max` compound classes are found.
pub fn sat_models(
    schema: &Schema,
    extra_clauses: &[Vec<PropLit>],
    max: usize,
) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    sat_models_governed(schema, extra_clauses, max, &Budget::unbounded())
        .map_err(expect_too_large)
}

/// [`sat_models`] under a resource [`Budget`]: one checkpoint per model
/// enumerated, one charge per compound class kept.
///
/// # Errors
/// [`BuildError::TooLarge`] exactly as [`sat_models`], or
/// [`BuildError::Exhausted`] as soon as the budget runs out.
pub fn sat_models_governed(
    schema: &Schema,
    extra_clauses: &[Vec<PropLit>],
    max: usize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    let mut f = isa_cnf(schema);
    for clause in extra_clauses {
        f.add_clause(clause.iter().copied());
    }
    let n = schema.num_classes();
    let mut out = Vec::new();
    let mut overflow = false;
    let mut exhausted: Option<ResourceExhausted> = None;
    car_logic::for_each_model(&f, |model| {
        if let Err(e) = budget.checkpoint() {
            exhausted = Some(e);
            return false;
        }
        if model.iter().all(|&b| !b) {
            return true; // skip the empty compound class
        }
        if out.len() >= max {
            overflow = true;
            return false;
        }
        if let Err(e) = budget.charge(Item::CompoundClass, 1) {
            exhausted = Some(e);
            return false;
        }
        out.push(BitSet::from_iter(n, (0..n).filter(|&i| model[i])));
        true
    });
    if let Some(e) = exhausted {
        return Err(e.into());
    }
    if overflow {
        return Err(ExpansionTooLarge { what: "compound classes", limit: max }.into());
    }
    Ok(out)
}

/// Parallel [`naive`]: shards the `2^|C|` sweep into contiguous blocks
/// across `threads` scoped workers and merges the survivors in block
/// order, so the output (and the overflow verdict, via a shared
/// [`Budget`]) is identical to the serial sweep for every thread count.
///
/// # Errors
/// Exactly as [`naive`].
pub fn naive_par(
    schema: &Schema,
    max: usize,
    threads: NonZeroUsize,
) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    naive_par_governed(schema, max, threads, &Budget::unbounded()).map_err(expect_too_large)
}

/// [`naive_par`] under a resource [`Budget`]: workers checkpoint per
/// candidate and charge per kept compound class; the first error in
/// block order wins.
///
/// # Errors
/// Exactly as [`naive_governed`].
pub fn naive_par_governed(
    schema: &Schema,
    max: usize,
    threads: NonZeroUsize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    if threads.get() == 1 {
        return naive_governed(schema, max, budget);
    }
    let n = schema.num_classes();
    if n > NAIVE_CAP {
        return Err(
            ExpansionTooLarge { what: "classes for naive enumeration", limit: NAIVE_CAP }.into()
        );
    }
    let n_candidates = (1usize << n) - 1; // candidates 1..2^n, empty set excluded
    let chunks = par::chunk_ranges(n_candidates, threads.get() * 4);
    let size_budget = SizeBudget::new(max);
    let parts: Vec<Result<Vec<BitSet>, BuildError>> =
        par::parallel_map(threads, chunks.len(), |ci| {
            let mut found = Vec::new();
            for offset in chunks[ci].clone() {
                budget.checkpoint()?;
                let bits = offset as u64 + 1;
                let cc = BitSet::from_iter(n, (0..n).filter(|i| bits & (1 << i) != 0));
                if cc_consistent(schema, &cc) {
                    if !size_budget.take() {
                        return Err(
                            ExpansionTooLarge { what: "compound classes", limit: max }.into()
                        );
                    }
                    budget.charge(Item::CompoundClass, 1)?;
                    found.push(cc);
                }
            }
            Ok(found)
        });
    let mut out = Vec::new();
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// Parallel [`sat_models`]: splits the search space into `2^k` *cubes*
/// fixing the first `k` propositional variables, enumerates each cube's
/// models independently, and concatenates the results in cube order.
///
/// Cube `c` assigns variable `j < k` to `true` iff bit `k-1-j` of `c`
/// is zero, so ascending cube indices enumerate the fixed prefixes in
/// exactly the order [`car_logic::for_each_model`] explores them
/// (lexicographic over the model vector, `true` before `false`). Since
/// the per-cube enumeration is itself lexicographic over the remaining
/// variables, the concatenation equals the serial model order, and the
/// shared [`Budget`] makes the overflow verdict identical too.
///
/// # Errors
/// Exactly as [`sat_models`].
pub fn sat_models_par(
    schema: &Schema,
    extra_clauses: &[Vec<PropLit>],
    max: usize,
    threads: NonZeroUsize,
) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    sat_models_par_governed(schema, extra_clauses, max, threads, &Budget::unbounded())
        .map_err(expect_too_large)
}

/// [`sat_models_par`] under a resource [`Budget`]: workers checkpoint per
/// model and charge per kept compound class; the first error in cube
/// order wins.
///
/// # Errors
/// Exactly as [`sat_models_governed`].
pub fn sat_models_par_governed(
    schema: &Schema,
    extra_clauses: &[Vec<PropLit>],
    max: usize,
    threads: NonZeroUsize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    let n = schema.num_classes();
    // Aim for a few cubes per worker; deeper splits only add overhead.
    let k = (threads.get() * 4).next_power_of_two().trailing_zeros() as usize;
    let k = k.min(n).min(12);
    if threads.get() == 1 || k == 0 {
        return sat_models_governed(schema, extra_clauses, max, budget);
    }
    let mut f = isa_cnf(schema);
    for clause in extra_clauses {
        f.add_clause(clause.iter().copied());
    }
    let size_budget = SizeBudget::new(max);
    let parts: Vec<Result<Vec<BitSet>, BuildError>> =
        par::parallel_map(threads, 1usize << k, |cube| {
            let mut g = f.clone();
            for j in 0..k {
                let positive = (cube >> (k - 1 - j)) & 1 == 0;
                g.add_clause([PropLit { var: j, positive }]);
            }
            let mut found = Vec::new();
            let mut overflow = false;
            let mut exhausted: Option<ResourceExhausted> = None;
            car_logic::for_each_model(&g, |model| {
                if let Err(e) = budget.checkpoint() {
                    exhausted = Some(e);
                    return false;
                }
                if model.iter().all(|&b| !b) {
                    return true; // skip the empty compound class
                }
                if !size_budget.take() {
                    overflow = true;
                    return false;
                }
                if let Err(e) = budget.charge(Item::CompoundClass, 1) {
                    exhausted = Some(e);
                    return false;
                }
                found.push(BitSet::from_iter(n, (0..n).filter(|&i| model[i])));
                true
            });
            if let Some(e) = exhausted {
                Err(e.into())
            } else if overflow {
                Err(ExpansionTooLarge { what: "compound classes", limit: max }.into())
            } else {
                Ok(found)
            }
        });
    let mut out = Vec::new();
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{ClassFormula, SchemaBuilder};
    use std::collections::BTreeSet;

    fn schema_with_isa() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn naive_and_sat_agree() {
        let s = schema_with_isa();
        let a: BTreeSet<BitSet> = naive(&s, usize::MAX).unwrap().into_iter().collect();
        let b: BTreeSet<BitSet> = sat_models(&s, &[], usize::MAX).unwrap().into_iter().collect();
        assert_eq!(a, b);
        // {P}, {P,Prof}, {P,S}: 3 consistent nonempty compound classes.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn no_constraints_gives_full_powerset_minus_empty() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        b.class("C");
        let s = b.build().unwrap();
        assert_eq!(naive(&s, usize::MAX).unwrap().len(), 7);
        assert_eq!(sat_models(&s, &[], usize::MAX).unwrap().len(), 7);
    }

    #[test]
    fn extra_clauses_prune_models() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        let s = b.build().unwrap();
        // Impose disjointness A ⊓ B = ⊥: ¬A ∨ ¬B.
        let extra = vec![vec![PropLit::neg(0), PropLit::neg(1)]];
        let models = sat_models(&s, &extra, usize::MAX).unwrap();
        assert_eq!(models.len(), 2); // {A}, {B}
    }

    #[test]
    fn limits_are_respected() {
        let mut b = SchemaBuilder::new();
        for i in 0..10 {
            b.class(&format!("K{i}"));
        }
        let s = b.build().unwrap();
        assert!(naive(&s, 5).is_err());
        assert!(sat_models(&s, &[], 5).is_err());
        let mut big = SchemaBuilder::new();
        for i in 0..30 {
            big.class(&format!("K{i}"));
        }
        let s = big.build().unwrap();
        assert!(naive(&s, usize::MAX).is_err());
    }

    #[test]
    fn parallel_enumeration_matches_serial_order_exactly() {
        let schemas = [schema_with_isa(), {
            let mut b = SchemaBuilder::new();
            for i in 0..6 {
                b.class(&format!("K{i}"));
            }
            b.build().unwrap()
        }];
        for s in &schemas {
            let serial_naive = naive(s, usize::MAX).unwrap();
            let serial_sat = sat_models(s, &[], usize::MAX).unwrap();
            for t in 1..=5 {
                let t = NonZeroUsize::new(t).unwrap();
                assert_eq!(naive_par(s, usize::MAX, t).unwrap(), serial_naive);
                assert_eq!(sat_models_par(s, &[], usize::MAX, t).unwrap(), serial_sat);
            }
        }
    }

    #[test]
    fn parallel_enumeration_respects_limits() {
        let mut b = SchemaBuilder::new();
        for i in 0..10 {
            b.class(&format!("K{i}"));
        }
        let s = b.build().unwrap();
        let four = NonZeroUsize::new(4).unwrap();
        assert_eq!(
            naive_par(&s, 5, four).unwrap_err(),
            naive(&s, 5).unwrap_err()
        );
        assert_eq!(
            sat_models_par(&s, &[], 5, four).unwrap_err(),
            sat_models(&s, &[], 5).unwrap_err()
        );
        // At exactly the limit no error fires, serial or parallel.
        assert_eq!(naive_par(&s, 1023, four).unwrap().len(), 1023);
        assert_eq!(sat_models_par(&s, &[], 1023, four).unwrap().len(), 1023);
    }

    #[test]
    fn parallel_sat_models_honors_extra_clauses() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        b.class("B");
        let s = b.build().unwrap();
        let extra = vec![vec![PropLit::neg(0), PropLit::neg(1)]];
        let serial = sat_models(&s, &extra, usize::MAX).unwrap();
        let par = sat_models_par(&s, &extra, usize::MAX, NonZeroUsize::new(3).unwrap())
            .unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn unsatisfiable_isa_yields_no_compound_classes_with_that_class() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
        let s = b.build().unwrap();
        let ccs = naive(&s, usize::MAX).unwrap();
        assert!(ccs.iter().all(|cc| !cc.contains(0)));
        assert!(ccs.is_empty()); // only class is self-contradictory
    }
}
