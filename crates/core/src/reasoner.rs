//! The top-level reasoning facade.
//!
//! [`Reasoner`] wraps a schema and answers the questions the paper's
//! technique was designed for — class satisfiability, logical
//! implication, schema coherence — plus verified model extraction.
//!
//! ## Strategies (§4.2–§4.4)
//!
//! The expensive step is enumerating consistent compound classes.
//! [`Strategy`] selects how:
//!
//! * [`Strategy::Naive`] — sweep all `2^|C|` subsets (§4.2's "most
//!   trivial way"; the baseline the heuristics are measured against);
//! * [`Strategy::Sat`] — enumerate models of the isa consistency formula
//!   (skips inconsistent candidates wholesale);
//! * [`Strategy::Preselect`] — §4.3 preselection tables + Theorem 4.6
//!   cluster decomposition (§4.4);
//! * [`Strategy::ColumnGen`] — lazy column generation
//!   ([`crate::colgen`]): grow a small working set of compound classes
//!   with DPLL pricing instead of materializing the full enumeration;
//! * [`Strategy::Auto`] — the generalization-hierarchy fast path (§4.4)
//!   when the schema has that shape, otherwise `Preselect`.
//!
//! A strategy request is not always the strategy that runs (`Naive`
//! falls back past its cap, `Auto` dispatches); the strategy actually
//! executed is recorded in [`AnalysisStats::effective_strategy`].
//!
//! Satisfiability answers are identical under all strategies. Logical
//! implication, however, must see *every* realizable compound class —
//! Theorem 4.6's imposed disjointness preserves satisfiability but not
//! implication — so implication queries always run on a complete (`Sat`)
//! analysis, computed lazily and cached separately.

use crate::arity::reduce_arities;
use crate::bitset::BitSet;
use crate::budget::{Budget, Phase, ProgressReport, ResourceExhausted, ResourceKind};
use crate::clusters::clustered_ccs_governed;
use crate::colgen;
use crate::enumerate;
use crate::expansion::{BuildError, CcId, Expansion, ExpansionLimits, ExpansionTooLarge};
use crate::hierarchy;
use crate::ids::ClassId;
use crate::implication::{realizable_class_index, Implications};
use crate::model_extract::{extract_model, ExtractConfig, ExtractError};
use crate::preselection::Preselection;
use crate::satisfiability::{AnalysisOptions, AnalysisStats, SatAnalysis};
use crate::semantics::Interpretation;
use crate::syntax::{ClassFormula, Schema, SchemaError};
use std::cell::OnceCell;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Compound-class enumeration strategy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Enumerate all `2^|C|` subsets (§4.2 baseline).
    Naive,
    /// AllSAT over the isa consistency formula.
    Sat,
    /// §4.3 preselection + §4.4 clusters.
    Preselect,
    /// Lazy column generation over a growing working set of compound
    /// classes ([`crate::colgen`]), for schemas beyond the eager
    /// enumeration ceiling. Satisfiability verdicts are identical to
    /// every eager strategy; implication queries still force the
    /// complete enumeration.
    ColumnGen,
    /// Hierarchy fast path when applicable, else `Preselect`.
    #[default]
    Auto,
}

/// Configuration of a [`Reasoner`].
#[derive(Debug, Clone)]
pub struct ReasonerConfig {
    /// Enumeration strategy for satisfiability queries.
    pub strategy: Strategy,
    /// Size limits for the expansion.
    pub limits: ExpansionLimits,
    /// Apply the Theorem 4.5 arity reduction before satisfiability
    /// analysis when some relation is reducible.
    pub arity_reduction: bool,
    /// Budget for model extraction.
    pub extract: ExtractConfig,
    /// Worker count for the parallel execution layer (`crate::par`):
    /// candidate enumeration, expansion construction and the fixpoint
    /// sweeps are sharded over this many `std::thread::scope` workers.
    /// The default `1` runs everything serially on the calling thread;
    /// any value returns identical answers, errors and statistics.
    pub threads: NonZeroUsize,
    /// Resource budget governing every pipeline stage: deadline, step
    /// quota, memory quota, cooperative cancellation and the
    /// fault-injection hook. The default [`Budget::unbounded`] is inert.
    /// Exhaustion surfaces as [`ReasonerError::DeadlineExceeded`],
    /// [`ReasonerError::Cancelled`] or [`ReasonerError::BudgetExhausted`];
    /// such failures are *not* cached, so the same [`Reasoner`] can be
    /// re-run with a larger budget (see [`Reasoner::set_budget`]).
    pub budget: Budget,
}

impl Default for ReasonerConfig {
    fn default() -> ReasonerConfig {
        ReasonerConfig {
            strategy: Strategy::default(),
            limits: ExpansionLimits::default(),
            arity_reduction: false,
            extract: ExtractConfig::default(),
            threads: NonZeroUsize::MIN,
            budget: Budget::unbounded(),
        }
    }
}

/// Reasoning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReasonerError {
    /// The expansion exceeded the configured limits.
    TooLarge(ExpansionTooLarge),
    /// Model extraction failed.
    Extract(ExtractError),
    /// The schema failed validation during a transformation (e.g. the
    /// Theorem 4.5 arity reduction rejected it).
    InvalidSchema(Vec<SchemaError>),
    /// A query referenced a [`ClassId`] outside the schema's class
    /// table — typically a stale id used after an edit changed the id
    /// layout, or an id fabricated from untrusted input. Without this
    /// guard the analysis would silently treat the phantom class as
    /// empty and return a wrong answer.
    ClassOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// The schema's class count at query time.
        num_classes: usize,
    },
    /// The wall-clock deadline of the configured [`Budget`] passed.
    DeadlineExceeded(ProgressReport),
    /// The [`crate::budget::CancelToken`] attached to the configured
    /// [`Budget`] was triggered.
    Cancelled(ProgressReport),
    /// A step, memory or fault-injection quota of the configured
    /// [`Budget`] ran out.
    BudgetExhausted(ProgressReport),
}

impl ReasonerError {
    /// The progress snapshot attached to a resource-exhaustion failure,
    /// if this is one.
    #[must_use]
    pub fn progress(&self) -> Option<&ProgressReport> {
        match self {
            ReasonerError::DeadlineExceeded(p)
            | ReasonerError::Cancelled(p)
            | ReasonerError::BudgetExhausted(p) => Some(p),
            _ => None,
        }
    }

    /// `true` for the resource-exhaustion variants — failures that a
    /// retry with a larger [`Budget`] may turn into answers.
    #[must_use]
    pub fn is_resource_exhaustion(&self) -> bool {
        self.progress().is_some()
    }
}

impl fmt::Display for ReasonerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonerError::TooLarge(e) => write!(f, "{e}"),
            ReasonerError::Extract(e) => write!(f, "{e}"),
            ReasonerError::InvalidSchema(errors) => {
                write!(f, "schema failed validation during transformation:")?;
                for e in errors {
                    write!(f, " {e};")?;
                }
                Ok(())
            }
            ReasonerError::ClassOutOfRange { index, num_classes } => {
                write!(
                    f,
                    "class id {index} is out of range for a schema with {num_classes} classes"
                )
            }
            ReasonerError::DeadlineExceeded(p) => {
                write!(f, "deadline exceeded ({p})")
            }
            ReasonerError::Cancelled(p) => write!(f, "cancelled ({p})"),
            ReasonerError::BudgetExhausted(p) => {
                write!(f, "resource budget exhausted ({p})")
            }
        }
    }
}

impl std::error::Error for ReasonerError {}

impl From<ExpansionTooLarge> for ReasonerError {
    fn from(e: ExpansionTooLarge) -> ReasonerError {
        ReasonerError::TooLarge(e)
    }
}

/// Three-valued answer of the anytime query variants: the budgeted
/// analysis either settled the question or ran out of resources, in
/// which case the progress made so far is reported instead of an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The queried property holds in every model.
    Proved,
    /// The queried property fails in some model.
    Disproved,
    /// The budget ran out before the analysis settled the question.
    Unknown(ProgressReport),
}

impl Outcome {
    pub(crate) fn from_result(result: Result<bool, ReasonerError>, budget: &Budget) -> Outcome {
        match result {
            Ok(true) => Outcome::Proved,
            Ok(false) => Outcome::Disproved,
            Err(e) => Outcome::Unknown(
                e.progress().copied().unwrap_or_else(|| budget.progress()),
            ),
        }
    }
}

/// One computed analysis: the schema actually analyzed (possibly the
/// arity-reduced one), its expansion, and the fixpoint result. Shared
/// with [`crate::incremental`], whose `Workspace` caches bundles across
/// schema edits.
pub(crate) struct Bundle {
    /// `Some` when the Theorem 4.5 transform was applied (surfaced via
    /// [`AnalysisStats::arity_reduced`]; the expansion below was built
    /// against it).
    pub(crate) transformed: Option<Schema>,
    pub(crate) expansion: Expansion,
    pub(crate) analysis: SatAnalysis,
    /// The enumeration strategy that actually ran (surfaced via
    /// [`AnalysisStats::effective_strategy`]) — e.g. `Sat` for a `Naive`
    /// request past the cap.
    pub(crate) effective: Strategy,
    /// Lazily built per-class lists of realizable compound classes,
    /// shared by every implication query on this bundle. A `OnceLock`
    /// (not `OnceCell`) so bundles stay `Sync` and a cached bundle can
    /// be shared across server threads behind an `Arc`.
    class_index: OnceLock<Vec<Vec<CcId>>>,
}

impl Bundle {
    pub(crate) fn new(
        transformed: Option<Schema>,
        expansion: Expansion,
        analysis: SatAnalysis,
        effective: Strategy,
    ) -> Bundle {
        Bundle { transformed, expansion, analysis, effective, class_index: OnceLock::new() }
    }

    /// The implication view, backed by the cached class index.
    /// `num_classes` must be the class count of the schema this bundle's
    /// expansion was built from.
    pub(crate) fn implications(&self, num_classes: usize) -> Implications<'_> {
        let index = self.class_index.get_or_init(|| {
            realizable_class_index(num_classes, &self.expansion, &self.analysis)
        });
        Implications::with_class_index(&self.expansion, &self.analysis, index)
    }

    /// The analysis statistics, stamped with whether the Theorem 4.5
    /// transform was applied and which enumeration strategy actually
    /// ran.
    pub(crate) fn stats(&self) -> AnalysisStats {
        let mut stats = self.analysis.stats().clone();
        stats.arity_reduced = self.transformed.is_some();
        stats.effective_strategy = Some(self.effective);
        stats
    }
}

/// Maps a resource-exhaustion failure to the public error variant,
/// stamped with the budget's progress snapshot at the point of failure.
pub(crate) fn exhausted_error(budget: &Budget, e: ResourceExhausted) -> ReasonerError {
    let report = budget.progress();
    match e.kind {
        ResourceKind::Deadline => ReasonerError::DeadlineExceeded(report),
        ResourceKind::Cancelled => ReasonerError::Cancelled(report),
        ResourceKind::Steps | ResourceKind::Memory | ResourceKind::FaultInjected => {
            ReasonerError::BudgetExhausted(report)
        }
    }
}

/// Maps a build failure (size limit or exhaustion) to the public error.
pub(crate) fn build_error(budget: &Budget, e: BuildError) -> ReasonerError {
    match e {
        BuildError::TooLarge(t) => ReasonerError::TooLarge(t),
        BuildError::Exhausted(x) => exhausted_error(budget, x),
    }
}

/// `true` when the config asks for the Theorem 4.5 transform and some
/// relation is actually reducible — i.e. [`transform_schema`] would
/// return `Some`.
pub(crate) fn transform_applies(schema: &Schema, config: &ReasonerConfig) -> bool {
    config.arity_reduction
        && schema.symbols().rel_ids().any(|r| crate::arity::reducible(schema, r))
}

/// The Theorem 4.5 transform, when enabled and applicable (the
/// `Phase::Setup` step shared by [`Reasoner`] and
/// [`crate::incremental::Workspace`]).
pub(crate) fn transform_schema(
    schema: &Schema,
    config: &ReasonerConfig,
) -> Result<Option<Schema>, ReasonerError> {
    if transform_applies(schema, config) {
        let red = reduce_arities(schema).map_err(ReasonerError::InvalidSchema)?;
        Ok(Some(red.schema))
    } else {
        Ok(None)
    }
}

/// Strategy-dispatched compound-class enumeration (`Phase::Enumerate`),
/// returning the compound classes together with the strategy that
/// *actually* ran — callers stamp the latter into
/// [`AnalysisStats::effective_strategy`] so silent dispatches stay
/// visible in stats and telemetry.
///
/// `Strategy::Naive` beyond [`enumerate::NAIVE_CAP`] falls back to the
/// AllSAT enumeration: the naive sweep is hopeless there regardless of
/// limits, and AllSAT produces the identical compound-class set, so the
/// cap is a tractability boundary of the sweep — not a property of the
/// schema — and must not surface as a user-facing error. Direct callers
/// of `enumerate::naive*` (the explicit request for the §4.2 sweep)
/// still get the capped behavior. `Strategy::Auto` reports `Auto` when
/// the hierarchy fast path ran and `Preselect` when it dispatched there.
pub(crate) fn enumerate_ccs(
    schema: &Schema,
    config: &ReasonerConfig,
) -> Result<(Vec<BitSet>, Strategy), ReasonerError> {
    let budget = &config.budget;
    let threads = config.threads;
    let max = config.limits.max_compound_classes;
    budget.enter_phase(Phase::Enumerate);
    let effective = effective_strategy(schema, config);
    let ccs = match effective {
        Strategy::Naive => enumerate::naive_par_governed(schema, max, threads, budget),
        Strategy::Sat => enumerate::sat_models_par_governed(schema, &[], max, threads, budget),
        Strategy::Preselect => {
            let pre = Preselection::compute(schema);
            clustered_ccs_governed(schema, &pre, max, budget)
        }
        Strategy::ColumnGen => {
            colgen::working_set_governed(schema, &config.limits, threads, budget)
        }
        Strategy::Auto => {
            let h = hierarchy::detect(schema).expect("effective Auto implies hierarchy");
            hierarchy::path_closure_ccs_governed(schema, &h, budget).map_err(BuildError::from)
        }
    };
    Ok((ccs.map_err(|e| build_error(budget, e))?, effective))
}

/// The strategy [`enumerate_ccs`] actually runs for this schema and
/// config: `Naive` past the cap runs `Sat`, `Auto` without a hierarchy
/// shape runs `Preselect`; everything else runs as requested. Also used
/// to stamp replayed (disk-cached) enumerations in
/// [`crate::incremental`] without re-running the dispatch.
pub(crate) fn effective_strategy(schema: &Schema, config: &ReasonerConfig) -> Strategy {
    match config.strategy {
        Strategy::Naive if schema.num_classes() > enumerate::NAIVE_CAP => Strategy::Sat,
        Strategy::Auto if hierarchy::detect(schema).is_none() => Strategy::Preselect,
        requested => requested,
    }
}

/// Expansion construction plus acceptability fixpoint over a ready
/// compound-class list (`Phase::Expand` and `Phase::Fixpoint`).
pub(crate) fn expand_and_analyze(
    schema: &Schema,
    ccs: Vec<BitSet>,
    config: &ReasonerConfig,
) -> Result<(Expansion, SatAnalysis), ReasonerError> {
    let budget = &config.budget;
    budget.enter_phase(Phase::Expand);
    let expansion =
        Expansion::build_governed(schema, ccs, &config.limits, config.threads, budget)
            .map_err(|e| build_error(budget, e))?;
    budget.enter_phase(Phase::Fixpoint);
    let analysis = SatAnalysis::try_run_with_budget(
        &expansion,
        &AnalysisOptions { threads: config.threads, ..AnalysisOptions::default() },
        budget,
    )
    .map_err(|e| exhausted_error(budget, e))?;
    Ok((expansion, analysis))
}

/// The reasoning facade over one schema.
///
/// Successful analyses are cached; failures (size limits, resource
/// exhaustion) are **not**, so after an exhaustion error the same
/// reasoner can be re-run — typically after [`Self::set_budget`] with a
/// larger allowance — and will recompute from scratch.
pub struct Reasoner<'s> {
    schema: &'s Schema,
    config: ReasonerConfig,
    sat_bundle: OnceCell<Bundle>,
    full_bundle: OnceCell<Bundle>,
}

impl<'s> Reasoner<'s> {
    /// A reasoner with the default configuration (`Auto` strategy,
    /// arity reduction enabled).
    #[must_use]
    pub fn new(schema: &'s Schema) -> Reasoner<'s> {
        Reasoner::with_config(
            schema,
            ReasonerConfig { arity_reduction: true, ..ReasonerConfig::default() },
        )
    }

    /// A reasoner with an explicit configuration.
    #[must_use]
    pub fn with_config(schema: &'s Schema, config: ReasonerConfig) -> Reasoner<'s> {
        Reasoner { schema, config, sat_bundle: OnceCell::new(), full_bundle: OnceCell::new() }
    }

    /// The schema being reasoned about.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// Replaces the resource budget for subsequent computations. Cached
    /// successful analyses are kept (they are already paid for); only
    /// queries that still need to compute draw on the new budget. The
    /// standard retry loop after an exhaustion error is
    /// `r.set_budget(Budget::unbounded())` followed by re-asking.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// Maps a resource-exhaustion error to the public error variant,
    /// stamping it with the progress snapshot at the point of failure.
    fn exhausted(&self, e: ResourceExhausted) -> ReasonerError {
        exhausted_error(&self.config.budget, e)
    }

    fn compute_sat_bundle(&self) -> Result<Bundle, ReasonerError> {
        self.config.budget.enter_phase(Phase::Setup);
        // Theorem 4.5: reify wide relations first when enabled.
        let transformed = transform_schema(self.schema, &self.config)?;
        let schema = transformed.as_ref().unwrap_or(self.schema);
        let (ccs, effective) = enumerate_ccs(schema, &self.config)?;
        let (expansion, analysis) = expand_and_analyze(schema, ccs, &self.config)?;
        Ok(Bundle::new(transformed, expansion, analysis, effective))
    }

    fn compute_full_bundle(&self) -> Result<Bundle, ReasonerError> {
        // Implication queries need the complete enumeration of the
        // untransformed schema: force the AllSAT strategy, no transform.
        let full_config = ReasonerConfig {
            strategy: Strategy::Sat,
            arity_reduction: false,
            ..self.config.clone()
        };
        let (ccs, effective) = enumerate_ccs(self.schema, &full_config)?;
        let (expansion, analysis) = expand_and_analyze(self.schema, ccs, &full_config)?;
        Ok(Bundle::new(None, expansion, analysis, effective))
    }

    /// `true` when the sat and full bundles are the same computation:
    /// the configured strategy already is the complete AllSAT
    /// enumeration and no Theorem 4.5 transform applies, so either
    /// bundle can answer for the other without recomputing.
    fn shares_bundles(&self) -> bool {
        self.config.strategy == Strategy::Sat && !transform_applies(self.schema, &self.config)
    }

    /// The cached satisfiability bundle, computing it on first success.
    /// Errors are returned but never cached — a later call retries (with
    /// whatever budget the config then holds), keeping the reasoner
    /// usable after cancellation or exhaustion.
    fn sat_bundle(&self) -> Result<&Bundle, ReasonerError> {
        if let Some(bundle) = self.sat_bundle.get() {
            return Ok(bundle);
        }
        if self.shares_bundles() {
            if let Some(bundle) = self.full_bundle.get() {
                return Ok(bundle);
            }
        }
        let bundle = self.compute_sat_bundle()?;
        Ok(self.sat_bundle.get_or_init(|| bundle))
    }

    fn full_bundle(&self) -> Result<&Bundle, ReasonerError> {
        if let Some(bundle) = self.full_bundle.get() {
            return Ok(bundle);
        }
        if self.shares_bundles() {
            if let Some(bundle) = self.sat_bundle.get() {
                return Ok(bundle);
            }
        }
        let bundle = self.compute_full_bundle()?;
        Ok(self.full_bundle.get_or_init(|| bundle))
    }

    // ---- Satisfiability -------------------------------------------

    /// Class satisfiability (Theorem 3.3), using the configured strategy.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn try_is_satisfiable(&self, class: ClassId) -> Result<bool, ReasonerError> {
        let bundle = self.sat_bundle()?;
        Ok(bundle.analysis.class_satisfiable(&bundle.expansion, class))
    }

    /// Class satisfiability; panics on resource exhaustion.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_is_satisfiable`] to handle those.
    #[must_use]
    pub fn is_satisfiable(&self, class: ClassId) -> bool {
        self.try_is_satisfiable(class).unwrap_or_else(|e| panic!("{e}"))
    }

    /// All classes that are necessarily empty in every database state.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn try_unsatisfiable_classes(&self) -> Result<Vec<ClassId>, ReasonerError> {
        let bundle = self.sat_bundle()?;
        Ok(self
            .schema
            .symbols()
            .class_ids()
            .filter(|&c| !bundle.analysis.class_satisfiable(&bundle.expansion, c))
            .collect())
    }

    /// `true` iff every class of the schema is satisfiable.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn try_is_coherent(&self) -> Result<bool, ReasonerError> {
        Ok(self.try_unsatisfiable_classes()?.is_empty())
    }

    /// Statistics of the satisfiability analysis (forces computation),
    /// including whether the Theorem 4.5 arity reduction was applied.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn try_stats(&self) -> Result<AnalysisStats, ReasonerError> {
        Ok(self.sat_bundle()?.stats())
    }

    // ---- Anytime queries -------------------------------------------

    /// Anytime class satisfiability: [`Outcome::Proved`] /
    /// [`Outcome::Disproved`] when the budgeted analysis settles the
    /// question, [`Outcome::Unknown`] with the progress made when the
    /// budget runs out first. Never panics on exhaustion; a size-limit
    /// or validation failure also maps to `Unknown`.
    #[must_use]
    pub fn anytime_is_satisfiable(&self, class: ClassId) -> Outcome {
        Outcome::from_result(self.try_is_satisfiable(class), &self.config.budget)
    }

    /// Anytime schema coherence (see [`Self::try_is_coherent`]).
    #[must_use]
    pub fn anytime_is_coherent(&self) -> Outcome {
        Outcome::from_result(self.try_is_coherent(), &self.config.budget)
    }

    /// Anytime subsumption (see [`Self::try_subsumes`]).
    #[must_use]
    pub fn anytime_subsumes(&self, sup: ClassId, sub: ClassId) -> Outcome {
        Outcome::from_result(self.try_subsumes(sup, sub), &self.config.budget)
    }

    /// Anytime disjointness (see [`Self::try_disjoint`]).
    #[must_use]
    pub fn anytime_disjoint(&self, c1: ClassId, c2: ClassId) -> Outcome {
        Outcome::from_result(self.try_disjoint(c1, c2), &self.config.budget)
    }

    // ---- Logical implication ---------------------------------------

    /// The implication view over the complete analysis.
    fn implications(&self) -> Result<Implications<'_>, ReasonerError> {
        Ok(self.full_bundle()?.implications(self.schema.num_classes()))
    }

    /// `S ⊨ class isa formula`.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_implies_isa(
        &self,
        class: ClassId,
        formula: &ClassFormula,
    ) -> Result<bool, ReasonerError> {
        Ok(self.implications()?.implies_isa(class, formula))
    }

    /// `S ⊨ class isa formula`.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_implies_isa`] to handle those.
    #[must_use]
    pub fn implies_isa(&self, class: ClassId, formula: &ClassFormula) -> bool {
        self.try_implies_isa(class, formula).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Subsumption `sub ⊑ sup` in every model.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_subsumes(&self, sup: ClassId, sub: ClassId) -> Result<bool, ReasonerError> {
        Ok(self.implications()?.subsumes(sup, sub))
    }

    /// Subsumption `sub ⊑ sup` in every model.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_subsumes`] to handle those.
    #[must_use]
    pub fn subsumes(&self, sup: ClassId, sub: ClassId) -> bool {
        self.try_subsumes(sup, sub).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Disjointness in every model.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_disjoint(&self, c1: ClassId, c2: ClassId) -> Result<bool, ReasonerError> {
        Ok(self.implications()?.disjoint(c1, c2))
    }

    /// Disjointness in every model.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_disjoint`] to handle those.
    #[must_use]
    pub fn disjoint(&self, c1: ClassId, c2: ClassId) -> bool {
        self.try_disjoint(c1, c2).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Equivalence in every model.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_equivalent(&self, c1: ClassId, c2: ClassId) -> Result<bool, ReasonerError> {
        Ok(self.implications()?.equivalent(c1, c2))
    }

    /// Equivalence in every model.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_equivalent`] to handle those.
    #[must_use]
    pub fn equivalent(&self, c1: ClassId, c2: ClassId) -> bool {
        self.try_equivalent(c1, c2).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The implied strict subsumption pairs `(sup, sub)` among
    /// satisfiable classes.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_classification(&self) -> Result<Vec<(ClassId, ClassId)>, ReasonerError> {
        let imp = self.implications()?;
        let budget = &self.config.budget;
        budget.enter_phase(Phase::Implication);
        imp.classification_governed(self.schema, budget)
            .map_err(|e| self.exhausted(e))
    }

    /// The implied strict subsumption pairs `(sup, sub)` among
    /// satisfiable classes.
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_classification`] to handle those.
    #[must_use]
    pub fn classification(&self) -> Vec<(ClassId, ClassId)> {
        self.try_classification().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Exact filler-type implication for instances of a class (see
    /// [`Implications::implies_filler_type`]).
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_implies_filler_type(
        &self,
        class: ClassId,
        att: crate::syntax::AttRef,
        formula: &ClassFormula,
    ) -> Result<bool, ReasonerError> {
        Ok(self.implications()?.implies_filler_type(self.schema, class, att, formula))
    }

    /// Exact filler-type implication for instances of a class (see
    /// [`Implications::implies_filler_type`]).
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_implies_filler_type`] to handle those.
    #[must_use]
    pub fn implies_filler_type(
        &self,
        class: ClassId,
        att: crate::syntax::AttRef,
        formula: &ClassFormula,
    ) -> bool {
        self.try_implies_filler_type(class, att, formula)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sound implied attribute-cardinality bound for instances of a
    /// class (see [`Implications::implied_att_card`]).
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_implied_att_card(
        &self,
        class: ClassId,
        att: crate::syntax::AttRef,
    ) -> Result<Option<crate::syntax::Card>, ReasonerError> {
        Ok(self.implications()?.implied_att_card(self.schema, class, att))
    }

    /// Sound implied attribute-cardinality bound for instances of a
    /// class (see [`Implications::implied_att_card`]).
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_implied_att_card`] to handle those.
    #[must_use]
    pub fn implied_att_card(
        &self,
        class: ClassId,
        att: crate::syntax::AttRef,
    ) -> Option<crate::syntax::Card> {
        self.try_implied_att_card(class, att).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sound implied participation bound for instances of a class (see
    /// [`Implications::implied_part_card`]).
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the (complete) expansion exceeds
    /// the limits.
    pub fn try_implied_part_card(
        &self,
        class: ClassId,
        rel: crate::ids::RelId,
        role_pos: usize,
    ) -> Result<Option<crate::syntax::Card>, ReasonerError> {
        Ok(self.implications()?.implied_part_card(self.schema, class, rel, role_pos))
    }

    /// Sound implied participation bound for instances of a class (see
    /// [`Implications::implied_part_card`]).
    ///
    /// # Panics
    /// Panics with the underlying [`ReasonerError`] display if the
    /// analysis fails (size limits, deadline, cancellation, budget
    /// exhaustion); use [`Self::try_implied_part_card`] to handle those.
    #[must_use]
    pub fn implied_part_card(
        &self,
        class: ClassId,
        rel: crate::ids::RelId,
        role_pos: usize,
    ) -> Option<crate::syntax::Card> {
        self.try_implied_part_card(class, rel, role_pos)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a machine-checkable proof that `class` is unsatisfiable
    /// (see [`crate::certify`]), or `None` when the class is satisfiable.
    /// Together with [`Self::extract_model`], every verdict the reasoner
    /// gives can be audited by an independent checker.
    ///
    /// Under [`Strategy::ColumnGen`] the proof is built over the lazy
    /// working-set expansion ([`Self::sat_expansion`]) instead of the
    /// complete one — the complete enumeration may be beyond reach,
    /// which is the point of the lazy strategy. The proof object has
    /// the identical shape (the same [`crate::certify::UnsatProof`]
    /// steps and `car_lp` Farkas certificates), so `certify`/`explain`
    /// consumers work unchanged; verify it against the expansion the
    /// same accessor returns.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn certify_unsatisfiable(
        &self,
        class: ClassId,
    ) -> Result<Option<crate::certify::UnsatProof>, ReasonerError> {
        let bundle = if self.config.strategy == Strategy::ColumnGen {
            self.sat_bundle()?
        } else {
            self.full_bundle()?
        };
        Ok(crate::certify::certify_unsatisfiable(
            &bundle.expansion,
            &bundle.analysis,
            class,
        ))
    }

    /// The (complete) expansion used for implication and certification
    /// queries — exposed so proofs can be verified externally.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn full_expansion(&self) -> Result<&Expansion, ReasonerError> {
        Ok(&self.full_bundle()?.expansion)
    }

    /// The expansion behind satisfiability queries under the configured
    /// strategy (the working-set expansion under
    /// [`Strategy::ColumnGen`]) — the one to verify lazy-path
    /// certificates against.
    ///
    /// # Errors
    /// [`ReasonerError::TooLarge`] when the expansion exceeds the limits.
    pub fn sat_expansion(&self) -> Result<&Expansion, ReasonerError> {
        Ok(&self.sat_bundle()?.expansion)
    }

    // ---- Model extraction ------------------------------------------

    /// Extracts a verified finite model of the schema in which every
    /// satisfiable class is nonempty. Always built on the original
    /// (untransformed) schema.
    ///
    /// # Errors
    /// [`ReasonerError`] on resource exhaustion or extraction failure.
    pub fn extract_model(&self) -> Result<Interpretation, ReasonerError> {
        let bundle = self.full_bundle()?;
        self.config.budget.enter_phase(Phase::Extract);
        extract_model(self.schema, &bundle.expansion, &bundle.analysis, &self.config.extract)
            .map_err(ReasonerError::Extract)
    }
}

impl fmt::Debug for Reasoner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reasoner")
            .field("classes", &self.schema.num_classes())
            .field("strategy", &self.config.strategy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{AttRef, Card, RoleClause, RoleLiteral, SchemaBuilder};

    fn university() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let grad = b.class("Grad_Student");
        let course = b.class("Course");
        let taught_by = b.attribute("taught_by");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.define_class(grad).isa(ClassFormula::class(student)).finish();
        b.define_class(course)
            .isa(ClassFormula::neg_class(person))
            .attr(
                AttRef::Direct(taught_by),
                Card::exactly(1),
                ClassFormula::union_of([professor, grad]),
            )
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn all_strategies_agree_on_satisfiability() {
        let s = university();
        let mut reference: Option<Vec<bool>> = None;
        for strategy in [
            Strategy::Naive,
            Strategy::Sat,
            Strategy::Preselect,
            Strategy::ColumnGen,
            Strategy::Auto,
        ] {
            let r = Reasoner::with_config(
                &s,
                ReasonerConfig { strategy, arity_reduction: true, ..Default::default() },
            );
            let answers: Vec<bool> = s
                .symbols()
                .class_ids()
                .map(|c| r.is_satisfiable(c))
                .collect();
            match &reference {
                None => reference = Some(answers),
                Some(expected) => assert_eq!(&answers, expected, "strategy {strategy:?}"),
            }
        }
        assert!(reference.unwrap().iter().all(|&b| b)); // coherent schema
    }

    #[test]
    fn implication_queries_work_under_any_strategy() {
        let s = university();
        let r = Reasoner::with_config(
            &s,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        let person = s.class_id("Person").unwrap();
        let grad = s.class_id("Grad_Student").unwrap();
        let professor = s.class_id("Professor").unwrap();
        let course = s.class_id("Course").unwrap();
        // Transitive subsumption through Student.
        assert!(r.subsumes(person, grad));
        assert!(r.disjoint(grad, professor));
        assert!(r.disjoint(course, person));
        assert!(!r.disjoint(professor, person));
        assert!(!r.equivalent(person, professor));
        // Even under Preselect (which prunes types for satisfiability),
        // unrelated classes must NOT be reported disjoint.
        let mut b2 = SchemaBuilder::new();
        let x = b2.class("X");
        let y = b2.class("Y");
        let s2 = b2.build().unwrap();
        let r2 = Reasoner::with_config(
            &s2,
            ReasonerConfig { strategy: Strategy::Preselect, ..Default::default() },
        );
        assert!(!r2.disjoint(x, y));
        assert!(!r2.subsumes(x, y));
    }

    #[test]
    fn coherence_and_unsatisfiable_listing() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let dead = b.class("Dead");
        b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
        let _ = a;
        let s = b.build().unwrap();
        let r = Reasoner::new(&s);
        assert!(!r.try_is_coherent().unwrap());
        assert_eq!(r.try_unsatisfiable_classes().unwrap(), vec![dead]);
    }

    #[test]
    fn limits_produce_errors_not_panics() {
        let mut b = SchemaBuilder::new();
        for i in 0..10 {
            b.class(&format!("K{i}"));
        }
        let s = b.build().unwrap();
        let config = ReasonerConfig {
            strategy: Strategy::Sat,
            limits: ExpansionLimits { max_compound_classes: 4, ..Default::default() },
            ..Default::default()
        };
        let r = Reasoner::with_config(&s, config);
        let c0 = s.class_id("K0").unwrap();
        assert!(matches!(
            r.try_is_satisfiable(c0),
            Err(ReasonerError::TooLarge(_))
        ));
    }

    #[test]
    fn auto_uses_hierarchy_fast_path() {
        // A strict hierarchy with explicit sibling disjointness; Auto
        // should produce exactly one compound class per class.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let l = b.class("L");
        let r_ = b.class("R");
        b.define_class(l)
            .isa(ClassFormula::class(a).and(ClassFormula::neg_class(r_)))
            .finish();
        b.define_class(r_).isa(ClassFormula::class(a)).finish();
        let s = b.build().unwrap();
        let reasoner = Reasoner::new(&s);
        assert!(reasoner.is_satisfiable(l));
        let stats = reasoner.try_stats().unwrap();
        assert_eq!(stats.num_compound_classes, 3); // one per class
    }

    #[test]
    fn arity_reduction_is_applied_transparently() {
        let mut b = SchemaBuilder::new();
        let s_ = b.class("S");
        let p = b.class("P");
        let c = b.class("C");
        let exam = b.relation("Exam", ["of", "by", "in"]);
        let of = b.role("of");
        let by = b.role("by");
        let r_in = b.role("in");
        for (role, class) in [(of, s_), (by, p), (r_in, c)] {
            b.relation_constraint(
                exam,
                RoleClause::new(vec![RoleLiteral {
                    role,
                    formula: ClassFormula::class(class),
                }]),
            );
        }
        b.define_class(s_).participates(exam, of, Card::new(1, 3)).finish();
        let s = b.build().unwrap();
        let with = Reasoner::with_config(
            &s,
            ReasonerConfig {
                strategy: Strategy::Sat,
                arity_reduction: true,
                ..Default::default()
            },
        );
        let without = Reasoner::with_config(
            &s,
            ReasonerConfig {
                strategy: Strategy::Sat,
                arity_reduction: false,
                ..Default::default()
            },
        );
        for class in s.symbols().class_ids() {
            assert_eq!(with.is_satisfiable(class), without.is_satisfiable(class));
        }
        // The reduced analysis sees no 3-ary compound relations.
        assert!(with.try_stats().unwrap().num_compound_rels <= without.try_stats().unwrap().num_compound_rels);
    }

    #[test]
    fn extracted_model_is_a_model() {
        let s = university();
        let r = Reasoner::new(&s);
        let model = r.extract_model().unwrap();
        assert!(model.is_model(&s));
        for class in s.symbols().class_ids() {
            assert_eq!(
                r.is_satisfiable(class),
                !model.class_extension(class).is_empty(),
                "class {}",
                s.class_name(class)
            );
        }
    }

    #[test]
    fn debug_impl_is_compact() {
        let s = university();
        let r = Reasoner::new(&s);
        let dbg = format!("{r:?}");
        assert!(dbg.contains("Reasoner"));
        assert!(dbg.contains("classes"));
    }

    /// A 30-class isa chain: beyond the naive cap, but trivially small
    /// for every other strategy (31 compound classes).
    fn long_chain() -> Schema {
        let mut b = SchemaBuilder::new();
        let ids: Vec<_> = (0..30).map(|i| b.class(&format!("C{i}"))).collect();
        for w in ids.windows(2) {
            b.define_class(w[1]).isa(ClassFormula::class(w[0])).finish();
        }
        b.build().unwrap()
    }

    #[test]
    fn naive_strategy_falls_back_above_cap() {
        let s = long_chain();
        assert!(s.num_classes() > enumerate::NAIVE_CAP);
        // The raw sweep still refuses — the cap stays for explicit use.
        assert!(enumerate::naive(&s, usize::MAX).is_err());
        // The facade falls back to AllSAT instead of surfacing the cap.
        let naive = Reasoner::with_config(
            &s,
            ReasonerConfig { strategy: Strategy::Naive, ..Default::default() },
        );
        let sat = Reasoner::with_config(
            &s,
            ReasonerConfig { strategy: Strategy::Sat, ..Default::default() },
        );
        for class in s.symbols().class_ids() {
            assert_eq!(
                naive.try_is_satisfiable(class).unwrap(),
                sat.try_is_satisfiable(class).unwrap()
            );
        }
        assert_eq!(
            naive.try_stats().unwrap().num_compound_classes,
            sat.try_stats().unwrap().num_compound_classes
        );
        // The silent fallback is recorded: the stats carry the strategy
        // that actually ran, not the one requested.
        assert_eq!(naive.try_stats().unwrap().effective_strategy, Some(Strategy::Sat));
        assert_eq!(sat.try_stats().unwrap().effective_strategy, Some(Strategy::Sat));
    }

    #[test]
    fn effective_strategy_reflects_dispatch() {
        let s = university();
        let at = |strategy| {
            Reasoner::with_config(&s, ReasonerConfig { strategy, ..Default::default() })
                .try_stats()
                .unwrap()
                .effective_strategy
        };
        // Below the cap, Naive really runs Naive.
        assert_eq!(at(Strategy::Naive), Some(Strategy::Naive));
        assert_eq!(at(Strategy::Sat), Some(Strategy::Sat));
        assert_eq!(at(Strategy::Preselect), Some(Strategy::Preselect));
        assert_eq!(at(Strategy::ColumnGen), Some(Strategy::ColumnGen));
        // The university schema is a generalization hierarchy, so Auto
        // takes its fast path and reports itself.
        assert_eq!(at(Strategy::Auto), Some(Strategy::Auto));
        // A union in an isa part breaks the hierarchy shape: Auto is
        // recorded as the Preselect dispatch it actually ran.
        let mut b = SchemaBuilder::new();
        let l = b.class("L");
        let r_ = b.class("R");
        let u = b.class("U");
        b.define_class(u).isa(ClassFormula::union_of([l, r_])).finish();
        let s2 = b.build().unwrap();
        let r2 = Reasoner::with_config(
            &s2,
            ReasonerConfig { strategy: Strategy::Auto, ..Default::default() },
        );
        assert_eq!(r2.try_stats().unwrap().effective_strategy, Some(Strategy::Preselect));
        // A raw analysis has no strategy to record.
        assert_eq!(AnalysisStats::default().effective_strategy, None);
    }

    #[test]
    fn column_generation_certifies_over_the_working_set() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let dead = b.class("Dead");
        b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
        let _ = a;
        let s = b.build().unwrap();
        let r = Reasoner::with_config(
            &s,
            ReasonerConfig { strategy: Strategy::ColumnGen, ..Default::default() },
        );
        assert!(!r.try_is_satisfiable(dead).unwrap());
        let proof = r.certify_unsatisfiable(dead).unwrap().expect("unsat must certify");
        // Same certificate shape as the eager path, verified against the
        // lazy working-set expansion.
        assert!(proof.verify(r.sat_expansion().unwrap()));
        assert!(r.certify_unsatisfiable(a).unwrap().is_none());
    }

    #[test]
    fn sat_strategy_shares_bundles_between_sat_and_implication_queries() {
        let s = university();
        let person = s.class_id("Person").unwrap();
        let grad = s.class_id("Grad_Student").unwrap();
        // sat query first, then implication: the full bundle reuses the
        // sat bundle, so the second query consumes no extra checkpoints.
        let budget = Budget::counting();
        let r = Reasoner::with_config(
            &s,
            ReasonerConfig {
                strategy: Strategy::Sat,
                budget: budget.clone(),
                ..Default::default()
            },
        );
        assert!(r.try_is_satisfiable(person).unwrap());
        let after_sat = budget.checkpoints_used();
        assert!(after_sat > 0);
        assert!(r.try_subsumes(person, grad).unwrap());
        assert_eq!(budget.checkpoints_used(), after_sat, "full bundle rebuilt");
        // Reverse order: implication first, then sat — same sharing.
        let budget = Budget::counting();
        let r = Reasoner::with_config(
            &s,
            ReasonerConfig {
                strategy: Strategy::Sat,
                budget: budget.clone(),
                ..Default::default()
            },
        );
        assert!(r.try_subsumes(person, grad).unwrap());
        let after_full = budget.checkpoints_used();
        assert!(r.try_is_satisfiable(person).unwrap());
        assert_eq!(budget.checkpoints_used(), after_full, "sat bundle rebuilt");
    }

    #[test]
    fn panicking_wrappers_report_the_actual_error() {
        let s = university();
        let person = s.class_id("Person").unwrap();
        let r = Reasoner::with_config(
            &s,
            ReasonerConfig { budget: Budget::trip_after(1), ..Default::default() },
        );
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.is_satisfiable(person)
        }))
        .unwrap_err();
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap();
        assert!(
            message.contains("resource budget exhausted"),
            "panic message must carry the real error, got: {message}"
        );
    }
}
