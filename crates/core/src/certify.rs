//! Certified unsatisfiability.
//!
//! Model extraction ([`crate::model_extract`]) makes *satisfiable*
//! verdicts independently auditable: the answer comes with a finite
//! interpretation the model checker accepts. This module provides the
//! mirror image for *unsatisfiable* verdicts: an [`UnsatProof`] — a
//! sequence of elementary, machine-checkable steps that together force
//! every compound class containing the queried class to be empty:
//!
//! * **structural steps** — a compound attribute/relation dies because an
//!   endpoint compound class is dead (the acceptability condition of
//!   Theorem 3.3), or a compound class dies because one of its positive
//!   lower bounds has an all-dead candidate set;
//! * **LP steps** — a compound class (or link) unknown is zero in every
//!   solution of the current pinned system `ΨS`, witnessed by a
//!   [`FarkasCertificate`] for `ΨS ∪ {Var(u) ≥ 1}`, checkable with exact
//!   arithmetic and no trust in the simplex implementation.
//!
//! [`UnsatProof::verify`] replays the steps against a freshly built
//! disequation system. Together with extraction, every answer the
//! reasoner gives can be validated by an independent checker.

use crate::disequations::{DisequationSystem, UnknownId};
use crate::expansion::Expansion;
use crate::ids::ClassId;
use crate::satisfiability::SatAnalysis;
use crate::syntax::AttRef;
use car_arith::Ratio;
use car_lp::{FarkasCertificate, LinExpr, Relation};

/// One elementary step of an unsatisfiability proof.
#[derive(Debug, Clone)]
pub enum CertStep {
    /// A compound attribute/relation unknown must be zero because one of
    /// its endpoint compound classes is already dead (acceptability).
    StructuralEndpoint {
        /// The unknown being killed.
        unknown: UnknownId,
        /// The previously-killed endpoint justifying it.
        dead_endpoint: UnknownId,
    },
    /// A compound-class unknown must be zero because some merged lower
    /// bound `> 0` has every candidate link already dead.
    StructuralEmptySum {
        /// The compound-class unknown being killed.
        unknown: UnknownId,
    },
    /// A grouped compound-attribute unknown must be zero because every
    /// one of its interchangeable targets is already dead.
    StructuralDeadTargets {
        /// The compound-attribute unknown being killed.
        unknown: UnknownId,
    },
    /// The unknown is zero in every solution of the current pinned
    /// system, certified by Farkas multipliers for `ΨS ∪ {Var(u) ≥ 1}`.
    ForcedZero {
        /// The unknown being killed.
        unknown: UnknownId,
        /// The infeasibility certificate.
        certificate: FarkasCertificate,
    },
}

/// A checkable proof that a class is unsatisfiable.
#[derive(Debug, Clone)]
pub struct UnsatProof {
    /// The class proven unsatisfiable.
    pub class: ClassId,
    /// The kill steps, in replay order.
    pub steps: Vec<CertStep>,
}

/// The probe system used by both prover and checker: `ΨS` with `pinned`
/// unknowns fixed at zero, plus `Var(u) ≥ 1`.
fn probe_problem(
    expansion: &Expansion,
    pinned: &[UnknownId],
    unknown: UnknownId,
) -> car_lp::Problem {
    let sys = DisequationSystem::build(expansion, pinned);
    let mut problem = sys.problem().clone();
    problem.add_constraint(LinExpr::var(sys.var_of(unknown)), Relation::Ge, Ratio::one());
    problem
}

/// `true` iff some merged lower bound of this compound class has all its
/// candidate links inside `dead`.
fn empty_sum_justified(expansion: &Expansion, cc_index: usize, dead: &[UnknownId]) -> bool {
    let is_dead_ca = |i: usize| dead.contains(&UnknownId::Ca(i));
    let is_dead_cr = |i: usize| dead.contains(&UnknownId::Cr(i));
    for entry in expansion.natt() {
        if entry.cc.index() != cc_index || entry.card.min == 0 {
            continue;
        }
        let indices = match entry.att {
            AttRef::Direct(a) => expansion.attrs_with_source(a, entry.cc),
            AttRef::Inverse(a) => expansion.attrs_with_target(a, entry.cc),
        };
        if indices.iter().all(|&i| is_dead_ca(i)) {
            return true;
        }
    }
    for entry in expansion.nrel() {
        if entry.cc.index() != cc_index || entry.card.min == 0 {
            continue;
        }
        let indices = expansion.rels_with_component(entry.rel, entry.role_pos, entry.cc);
        if indices.iter().all(|&i| is_dead_cr(i)) {
            return true;
        }
    }
    false
}

/// `true` iff the step's structural claim holds given the dead set.
fn endpoint_justified(expansion: &Expansion, unknown: UnknownId, endpoint: UnknownId, dead: &[UnknownId]) -> bool {
    if !dead.contains(&endpoint) {
        return false;
    }
    let UnknownId::Cc(cc) = endpoint else { return false };
    match unknown {
        // A dead source kills the link; a dead target only does when it
        // is the link's sole target (grouped targets use
        // `StructuralDeadTargets`).
        UnknownId::Ca(i) => expansion.compound_attrs().get(i).is_some_and(|ca| {
            ca.source.index() == cc
                || (ca.is_singleton() && ca.targets[0].index() == cc)
        }),
        UnknownId::Cr(i) => expansion
            .compound_rels()
            .get(i)
            .is_some_and(|cr| cr.components.iter().any(|c| c.index() == cc)),
        UnknownId::Cc(_) => false,
    }
}

/// Builds an [`UnsatProof`] for `class`, or `None` if the class is
/// satisfiable (or a proof could not be assembled — which would indicate
/// a bug, since the analysis and the prover share the same fixpoint
/// theory).
#[must_use]
pub fn certify_unsatisfiable(
    expansion: &Expansion,
    analysis: &SatAnalysis,
    class: ClassId,
) -> Option<UnsatProof> {
    if analysis.class_satisfiable(expansion, class) {
        return None;
    }

    // The unknowns the analysis found dead; justify them in replay order.
    let sys = DisequationSystem::build(expansion, &[]);
    let witness = analysis.witness();
    let mut todo: Vec<UnknownId> = sys
        .unknowns()
        .enumerate()
        .filter(|&(pos, _)| witness[pos].is_zero())
        .map(|(_, u)| u)
        .collect();
    let mut steps = Vec::new();
    let mut dead: Vec<UnknownId> = Vec::new();

    while !todo.is_empty() {
        let mut progressed = false;

        // Cheap structural justifications first.
        let mut rest = Vec::new();
        for &u in &todo {
            let step = match u {
                UnknownId::Ca(i) => {
                    let ca = &expansion.compound_attrs()[i];
                    let src = UnknownId::Cc(ca.source.index());
                    if dead.contains(&src) {
                        Some(CertStep::StructuralEndpoint { unknown: u, dead_endpoint: src })
                    } else if ca
                        .targets
                        .iter()
                        .all(|t| dead.contains(&UnknownId::Cc(t.index())))
                    {
                        Some(CertStep::StructuralDeadTargets { unknown: u })
                    } else {
                        None
                    }
                }
                UnknownId::Cr(i) => expansion.compound_rels()[i]
                    .components
                    .iter()
                    .map(|c| UnknownId::Cc(c.index()))
                    .find(|e| dead.contains(e))
                    .map(|e| CertStep::StructuralEndpoint { unknown: u, dead_endpoint: e }),
                UnknownId::Cc(i) => empty_sum_justified(expansion, i, &dead)
                    .then_some(CertStep::StructuralEmptySum { unknown: u }),
            };
            match step {
                Some(step) => {
                    steps.push(step);
                    dead.push(u);
                    progressed = true;
                }
                None => rest.push(u),
            }
        }
        todo = rest;
        if progressed {
            continue;
        }

        // LP justification: find one pending unknown that is provably
        // zero against the current pins.
        let mut found = None;
        for (k, &u) in todo.iter().enumerate() {
            let problem = probe_problem(expansion, &dead, u);
            if let Some(certificate) = problem.certify_infeasible() {
                found = Some((k, u, certificate));
                break;
            }
        }
        let (k, u, certificate) = found?;
        steps.push(CertStep::ForcedZero { unknown: u, certificate });
        dead.push(u);
        todo.remove(k);
    }

    let proof = UnsatProof { class, steps };
    debug_assert!(proof.verify(expansion));
    Some(proof)
}

impl UnsatProof {
    /// Replays the proof against the expansion: every step must be
    /// justified (structurally, or by a verifying Farkas certificate for
    /// the exact pinned probe system), and afterwards every compound
    /// class containing the proof's class must be dead.
    #[must_use]
    pub fn verify(&self, expansion: &Expansion) -> bool {
        let mut dead: Vec<UnknownId> = Vec::new();
        for step in &self.steps {
            let ok = match step {
                CertStep::StructuralEndpoint { unknown, dead_endpoint } => {
                    endpoint_justified(expansion, *unknown, *dead_endpoint, &dead)
                }
                CertStep::StructuralEmptySum { unknown } => match unknown {
                    UnknownId::Cc(i) => empty_sum_justified(expansion, *i, &dead),
                    _ => false,
                },
                CertStep::StructuralDeadTargets { unknown } => match unknown {
                    UnknownId::Ca(i) => expansion.compound_attrs().get(*i).is_some_and(|ca| {
                        ca.targets
                            .iter()
                            .all(|t| dead.contains(&UnknownId::Cc(t.index())))
                    }),
                    _ => false,
                },
                CertStep::ForcedZero { unknown, certificate } => {
                    let problem = probe_problem(expansion, &dead, *unknown);
                    certificate.verify(&problem)
                }
            };
            if !ok {
                return false;
            }
            dead.push(match step {
                CertStep::StructuralEndpoint { unknown, .. }
                | CertStep::StructuralEmptySum { unknown }
                | CertStep::StructuralDeadTargets { unknown }
                | CertStep::ForcedZero { unknown, .. } => *unknown,
            });
        }
        expansion
            .ccs_containing(self.class)
            .all(|cc| dead.contains(&UnknownId::Cc(cc.index())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::ExpansionLimits;
    use crate::syntax::{Card, ClassFormula, Schema, SchemaBuilder};

    fn setup(build: impl FnOnce(&mut SchemaBuilder)) -> (Schema, Expansion, SatAnalysis) {
        let mut b = SchemaBuilder::new();
        build(&mut b);
        let schema = b.build().unwrap();
        let ccs = enumerate::naive(&schema, usize::MAX).unwrap();
        let expansion = Expansion::build(&schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&expansion);
        (schema, expansion, analysis)
    }

    #[test]
    fn satisfiable_class_has_no_proof() {
        let (schema, expansion, analysis) = setup(|b| {
            b.class("A");
        });
        let a = schema.class_id("A").unwrap();
        assert!(certify_unsatisfiable(&expansion, &analysis, a).is_none());
    }

    #[test]
    fn finite_cycle_unsat_is_certified() {
        // The finite-model cardinality cycle: |B| >= 2|A|, B ⊆ A.
        let (schema, expansion, analysis) = setup(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
                .finish();
            b.define_class(bb)
                .isa(ClassFormula::class(a))
                .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
                .finish();
        });
        let a = schema.class_id("A").unwrap();
        let proof = certify_unsatisfiable(&expansion, &analysis, a).expect("A is unsat");
        assert!(proof.verify(&expansion));
        // Some step must be an LP step: the emptiness here is genuinely
        // arithmetic, not structural.
        assert!(proof
            .steps
            .iter()
            .any(|s| matches!(s, CertStep::ForcedZero { .. })));
    }

    #[test]
    fn chained_emptiness_uses_structural_steps() {
        // A needs an f-filler in Dead; Dead is self-contradictory, so no
        // compound class contains it at all — A's lower bound has an
        // empty candidate set from the start.
        let (schema, expansion, analysis) = setup(|b| {
            let a = b.class("A");
            let dead = b.class("Dead");
            let f = b.attribute("f");
            b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::at_least(1), ClassFormula::class(dead))
                .finish();
        });
        let a = schema.class_id("A").unwrap();
        let proof = certify_unsatisfiable(&expansion, &analysis, a).expect("A is unsat");
        assert!(proof.verify(&expansion));
        assert!(proof
            .steps
            .iter()
            .any(|s| matches!(s, CertStep::StructuralEmptySum { .. })));
    }

    #[test]
    fn tampered_proofs_are_rejected() {
        let (schema, expansion, analysis) = setup(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
                .finish();
            b.define_class(bb)
                .isa(ClassFormula::class(a))
                .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
                .finish();
        });
        let a = schema.class_id("A").unwrap();
        let proof = certify_unsatisfiable(&expansion, &analysis, a).unwrap();

        // Dropping the steps leaves the target classes unjustified.
        let empty = UnsatProof { class: a, steps: Vec::new() };
        assert!(!empty.verify(&expansion));

        // Corrupting a Farkas certificate must be caught.
        let mut corrupted = proof.clone();
        for step in &mut corrupted.steps {
            if let CertStep::ForcedZero { certificate, .. } = step {
                if let Some(m) = certificate.multipliers.first_mut() {
                    *m += &Ratio::one();
                }
            }
        }
        assert!(!corrupted.verify(&expansion) || corrupted.steps.iter().all(|s| !matches!(s, CertStep::ForcedZero { .. })));

        // Claiming a bogus structural endpoint must be caught.
        let bogus = UnsatProof {
            class: a,
            steps: vec![CertStep::StructuralEmptySum { unknown: UnknownId::Cc(0) }],
        };
        assert!(!bogus.verify(&expansion));
    }

    #[test]
    fn proof_covers_all_compound_classes_of_the_target() {
        // Two ways to be an A: plain A, or A-and-B; both must die.
        let (schema, expansion, analysis) = setup(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let f = b.attribute("f");
            // Same finite cycle, on A itself: everything containing A dies.
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(a))
                .finish();
            b.define_class(bb)
                .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::top())
                .finish();
        });
        let a = schema.class_id("A").unwrap();
        // A: every A-object needs 2 fillers in A... that is satisfiable
        // (a large cycle): check and only certify when unsat.
        if !analysis.class_satisfiable(&expansion, a) {
            let proof = certify_unsatisfiable(&expansion, &analysis, a).unwrap();
            assert!(proof.verify(&expansion));
        } else {
            assert!(certify_unsatisfiable(&expansion, &analysis, a).is_none());
        }
    }
}
