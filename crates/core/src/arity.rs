//! The arity-reduction transform of Theorem 4.5.
//!
//! The number of compound relations grows exponentially with the maximum
//! arity of relations. Theorem 4.5: a schema whose nonbinary relations
//! have only unit role-clauses can be transformed, in linear time, into
//! one containing only binary relations while preserving class
//! satisfiability. Each `K`-ary relation `R` is *reified*: a fresh class
//! `C_R` — pairwise disjoint from every other class, so it contributes a
//! single compound class to the expansion — stands for the tuples of
//! `R`, and `K` fresh binary relations connect each tuple-object to its
//! role fillers, with `(1,1)` participation on the tuple side.
//!
//! Original participation constraints `C participates_in R[U_k] : (x, y)`
//! become constraints on the filler side of the `k`-th binary relation.

use crate::ids::{ClassId, RelId};
use crate::syntax::{
    Card, ClassFormula, RoleClause, RoleLiteral, Schema, SchemaBuilder, SchemaError,
};

/// Result of the Theorem 4.5 transform.
#[derive(Debug)]
pub struct ArityReduction {
    /// The transformed schema (binary relations only, among the reduced
    /// ones). Original class ids are preserved: `ClassId` values valid
    /// for the input schema denote the same classes here.
    pub schema: Schema,
    /// The relations of the input schema that were reified.
    pub reduced: Vec<RelId>,
    /// The reification classes created, parallel to `reduced`.
    pub tuple_classes: Vec<ClassId>,
}

/// `true` iff Theorem 4.5 applies to the relation: arity at least 3 and
/// every role-clause is a unit clause.
#[must_use]
pub fn reducible(schema: &Schema, rel: RelId) -> bool {
    let def = schema.rel_def(rel);
    def.arity() >= 3 && def.constraints.iter().all(RoleClause::is_unit)
}

/// Applies the Theorem 4.5 transform to every reducible relation.
///
/// Relations that are binary, or nonbinary with disjunctive role-clauses
/// (outside the theorem's hypothesis), are copied unchanged.
///
/// # Errors
/// Propagates [`SchemaError`]s; the transform of a valid schema is always
/// valid, so errors indicate a bug.
pub fn reduce_arities(schema: &Schema) -> Result<ArityReduction, Vec<SchemaError>> {
    let mut b = SchemaBuilder::new();

    // Intern all original symbols first so ids line up.
    for c in schema.symbols().class_ids() {
        let id = b.class(schema.symbols().class_name(c));
        debug_assert_eq!(id, c);
    }
    for a in schema.symbols().attr_ids() {
        let id = b.attribute(schema.symbols().attr_name(a));
        debug_assert_eq!(id, a);
    }

    let original_classes: Vec<ClassId> = schema.symbols().class_ids().collect();
    let mut reduced = Vec::new();
    let mut tuple_classes = Vec::new();

    // Rebuild relations: copies for the untouched ones, reifications for
    // the reducible ones. Keep a map rel -> either itself (copied) or its
    // K binary replacements.
    enum Mapped {
        Copied(RelId),
        Reified {
            /// One binary relation per original role, with its filler role.
            fillers: Vec<(RelId, crate::ids::RoleId)>,
        },
    }
    let mut mapping: Vec<Option<Mapped>> = Vec::new();

    for (rel, def) in schema.relations() {
        let rel_name = schema.symbols().rel_name(rel).to_owned();
        if !reducible(schema, rel) {
            let role_names: Vec<&str> = def
                .roles
                .iter()
                .map(|&r| schema.symbols().role_name(r))
                .collect();
            let new_rel = b.relation(&rel_name, role_names.iter().copied());
            for clause in &def.constraints {
                let lits = clause
                    .literals
                    .iter()
                    .map(|l| RoleLiteral {
                        role: b.role(schema.symbols().role_name(l.role)),
                        formula: l.formula.clone(),
                    })
                    .collect();
                b.relation_constraint(new_rel, RoleClause::new(lits));
            }
            mapping.push(Some(Mapped::Copied(new_rel)));
            continue;
        }

        // Reify: fresh class C_R + K binary relations.
        let tuple_class = b.class(&format!("{rel_name}__tuple"));
        let mut fillers = Vec::with_capacity(def.arity());
        for &role in &def.roles {
            let role_name = schema.symbols().role_name(role).to_owned();
            let bin_name = format!("{rel_name}__{role_name}");
            let bin = b.relation(&bin_name, ["tuple", "filler"]);
            let tuple_role = b.role("tuple");
            let filler_role = b.role("filler");
            // Every tuple-side component is a C_R object.
            b.relation_constraint(
                bin,
                RoleClause::new(vec![RoleLiteral {
                    role: tuple_role,
                    formula: ClassFormula::class(tuple_class),
                }]),
            );
            // Unit role-clauses of R on this role become filler types.
            for clause in &def.constraints {
                let lit = &clause.literals[0];
                if lit.role == role {
                    b.relation_constraint(
                        bin,
                        RoleClause::new(vec![RoleLiteral {
                            role: filler_role,
                            formula: lit.formula.clone(),
                        }]),
                    );
                }
            }
            fillers.push((bin, filler_role));
        }
        reduced.push(rel);
        tuple_classes.push(tuple_class);
        mapping.push(Some(Mapped::Reified { fillers }));
    }

    // Class definitions: copy, rewriting participations in reified
    // relations onto the filler sides.
    for (class, def) in schema.classes() {
        let mut cb = b.define_class(class);
        if !def.isa.is_top() {
            cb = cb.isa(def.isa.clone());
        }
        for spec in &def.attrs {
            cb = cb.attr(spec.att, spec.card, spec.ty.clone());
        }
        for part in &def.participations {
            match mapping[part.rel.index()].as_ref().expect("mapped") {
                Mapped::Copied(new_rel) => {
                    // Role ids may be interned in a different order in the
                    // new builder: map through the role name.
                    let role_name = schema.symbols().role_name(part.role).to_owned();
                    let new_rel = *new_rel;
                    let card = part.card;
                    let role = cb.builder_role(&role_name);
                    cb = cb.participates(new_rel, role, card);
                }
                Mapped::Reified { fillers, .. } => {
                    let pos = schema
                        .rel_def(part.rel)
                        .role_position(part.role)
                        .expect("validated participation");
                    let (bin, filler_role) = fillers[pos];
                    cb = cb.participates(bin, filler_role, part.card);
                }
            }
        }
        cb.finish();
    }

    // Definitions for the reification classes: disjoint from every
    // original class and from each other, exactly one filler per role.
    for (k, &rel) in reduced.iter().enumerate() {
        let tuple_class = tuple_classes[k];
        let mut isa = ClassFormula::top();
        for &c in &original_classes {
            isa = isa.and(ClassFormula::neg_class(c));
        }
        for &other in &tuple_classes {
            if other != tuple_class {
                isa = isa.and(ClassFormula::neg_class(other));
            }
        }
        let tuple_role = b.role("tuple");
        let mut cb = b.define_class(tuple_class).isa(isa);
        let Some(Mapped::Reified { fillers, .. }) = mapping[rel.index()].as_ref() else {
            unreachable!("reduced relations are reified");
        };
        for &(bin, _) in fillers {
            cb = cb.participates(bin, tuple_role, Card::exactly(1));
        }
        cb.finish();
    }

    let schema = b.build()?;
    Ok(ArityReduction { schema, reduced, tuple_classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::{Expansion, ExpansionLimits};
    use crate::satisfiability::SatAnalysis;
    use crate::syntax::SchemaBuilder;

    /// The paper's ternary Exam relation: Exam(of, by, in) with
    /// (of: Student), (by: Professor), (in: Course).
    fn exam_schema(professor_satisfiable: bool) -> Schema {
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let professor = b.class("Professor");
        let course = b.class("Course");
        let exam = b.relation("Exam", ["of", "by", "in"]);
        let of = b.role("of");
        let by = b.role("by");
        let r_in = b.role("in");
        for (role, class) in [(of, student), (by, professor), (r_in, course)] {
            b.relation_constraint(
                exam,
                RoleClause::new(vec![RoleLiteral {
                    role,
                    formula: ClassFormula::class(class),
                }]),
            );
        }
        b.define_class(student).participates(exam, of, Card::new(1, 3)).finish();
        if !professor_satisfiable {
            b.define_class(professor)
                .isa(ClassFormula::neg_class(professor))
                .finish();
        }
        b.build().unwrap()
    }

    fn satisfiable(schema: &Schema, name: &str) -> bool {
        let ccs = enumerate::naive(schema, usize::MAX).unwrap();
        let exp = Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&exp);
        analysis.class_satisfiable(&exp, schema.class_id(name).unwrap())
    }

    #[test]
    fn reducible_detection() {
        let s = exam_schema(true);
        assert!(reducible(&s, s.rel_id("Exam").unwrap()));

        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relation("R", ["u", "v"]);
        let _ = (a, r);
        let s = b.build().unwrap();
        assert!(!reducible(&s, s.rel_id("R").unwrap())); // binary

        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let c = b.class("B");
        let r = b.relation("R", ["u", "v", "w"]);
        let u = b.role("u");
        let v = b.role("v");
        b.relation_constraint(
            r,
            RoleClause::new(vec![
                RoleLiteral { role: u, formula: ClassFormula::class(a) },
                RoleLiteral { role: v, formula: ClassFormula::class(c) },
            ]),
        );
        let s = b.build().unwrap();
        assert!(!reducible(&s, s.rel_id("R").unwrap())); // disjunctive clause
    }

    #[test]
    fn transform_produces_binary_relations_only() {
        let s = exam_schema(true);
        let red = reduce_arities(&s).unwrap();
        assert_eq!(red.reduced.len(), 1);
        assert_eq!(red.tuple_classes.len(), 1);
        for (_, def) in red.schema.relations() {
            assert_eq!(def.arity(), 2);
        }
        // Original classes keep their ids.
        assert_eq!(
            red.schema.class_id("Student"),
            s.class_id("Student")
        );
        // The reification class exists and is disjoint from originals.
        let tc = red.tuple_classes[0];
        assert_eq!(red.schema.class_name(tc), "Exam__tuple");
    }

    #[test]
    fn satisfiability_is_preserved_positive_case() {
        let s = exam_schema(true);
        let red = reduce_arities(&s).unwrap();
        for name in ["Student", "Professor", "Course"] {
            assert_eq!(
                satisfiable(&s, name),
                satisfiable(&red.schema, name),
                "class {name}"
            );
            assert!(satisfiable(&red.schema, name));
        }
        assert!(satisfiable(&red.schema, "Exam__tuple"));
    }

    #[test]
    fn satisfiability_is_preserved_negative_case() {
        // Professor is unsatisfiable; every exam needs a professor, and
        // every student needs an exam: Student must be unsatisfiable in
        // both the original and the transformed schema.
        let s = exam_schema(false);
        assert!(!satisfiable(&s, "Student"));
        let red = reduce_arities(&s).unwrap();
        assert!(!satisfiable(&red.schema, "Student"));
        assert!(!satisfiable(&red.schema, "Professor"));
        assert!(satisfiable(&red.schema, "Course"));
    }

    #[test]
    fn untouched_relations_are_copied_verbatim() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral { role: u, formula: ClassFormula::class(a) }]),
        );
        b.define_class(a).participates(r, u, Card::new(1, 2)).finish();
        let s = b.build().unwrap();
        let red = reduce_arities(&s).unwrap();
        assert!(red.reduced.is_empty());
        let r2 = red.schema.rel_id("R").unwrap();
        assert_eq!(red.schema.rel_def(r2).arity(), 2);
        assert_eq!(red.schema.rel_def(r2).constraints.len(), 1);
        assert_eq!(
            red.schema.class_def(a).participations[0].card,
            Card::new(1, 2)
        );
    }

    #[test]
    fn expansion_size_shrinks_for_wide_relations() {
        // 4-ary relation over 3 free classes: the direct expansion has
        // |C̄|^4 candidate compound relations; after reduction each binary
        // relation has ~|C̄| · 1 (the reified class is a single compound
        // class).
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relation("R", ["u1", "u2", "u3", "u4"]);
        let u1 = b.role("u1");
        b.class("B");
        b.class("C");
        b.define_class(a).participates(r, u1, Card::new(1, 2)).finish();
        let s = b.build().unwrap();

        let ccs = enumerate::naive(&s, usize::MAX).unwrap();
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();
        let direct_rels = exp.compound_rels().len();

        let red = reduce_arities(&s).unwrap();
        let ccs2 = enumerate::naive(&red.schema, usize::MAX).unwrap();
        let exp2 = Expansion::build(&red.schema, ccs2, &ExpansionLimits::default()).unwrap();
        let reduced_rels = exp2.compound_rels().len();

        assert!(
            reduced_rels < direct_rels,
            "reduced {reduced_rels} should be below direct {direct_rels}"
        );
    }
}
