//! The preselection heuristics of §4.3: inclusion and disjointness
//! tables, the connectivity graph `GS`, and the Theorem 4.6 transform.
//!
//! The preselection step runs before compound-class enumeration and fills
//! two tables:
//!
//! * the **inclusion table** — pairs `(C₁, C₂)` with `C₁ ⊑ C₂` in every
//!   model — and the **disjointness table** — pairs disjoint in every
//!   model — derived from the isa parts by a sound but incomplete
//!   procedure (criterion (a); we use unit propagation, cf. [Dal92]);
//! * additional disjointness pairs that may be *assumed* without
//!   influencing class satisfiability (criterion (b)): build the
//!   undirected graph `GS` whose arcs witness possible co-occurrence of
//!   two classes in one object, and impose disjointness between classes
//!   not connected by any path (Theorem 4.6).
//!
//! Every table entry becomes a clause for the SAT-based compound-class
//! enumeration, each pruning "three quarters of the compound classes"
//! (§4.3); the connected components of `GS` are also the clusters of
//! §4.4, enumerated independently by [`crate::clusters`].
//!
//! ### A note on arc coverage
//!
//! The paper's arc conditions connect (1) a class with the positive
//! classes of its isa formula, (2) positives co-occurring in one
//! attribute-type formula, and (3) positives of formulas attached to the
//! same role. We additionally connect (2') the positives of *all*
//! formulas that constrain the same side of the same attribute (filler
//! types of `A` together with the owners of `inv A` specifications, and
//! vice versa), and (3') a participating class with the positives of the
//! formulas of the role it fills. Both describe genuine co-occurrence on
//! one object that the literal reading misses; extra arcs only make the
//! transform more conservative, never unsound.

use crate::bitset::BitSet;
use crate::enumerate::isa_cnf;
use crate::ids::ClassId;
use crate::syntax::{AttRef, ClassFormula, Schema};
use car_logic::PropLit;

/// Inclusion and disjointness tables plus the `GS` connectivity
/// structure.
#[derive(Debug, Clone)]
pub struct Preselection {
    n: usize,
    /// `included[i]` = classes that provably contain class `i`.
    included: Vec<BitSet>,
    /// `disjoint[i]` = classes provably or safely-assumably disjoint
    /// from class `i` (criterion (a) entries plus Theorem 4.6 entries).
    disjoint: Vec<BitSet>,
    /// Connected components of `GS` (each a set of class indices); the
    /// clusters of §4.4.
    components: Vec<Vec<usize>>,
    /// `component_of[i]` = index into `components` of class `i`'s
    /// cluster.
    component_of: Vec<usize>,
}

impl Preselection {
    /// Runs the full preselection: criterion (a), graph construction,
    /// criterion (b).
    #[must_use]
    pub fn compute(schema: &Schema) -> Preselection {
        let n = schema.num_classes();
        let cnf = isa_cnf(schema);

        // Criterion (a): sound, incomplete deductions from the isa parts.
        // One unit-propagation closure per class — O(|C|) propagations
        // instead of the O(|C|²) refutation calls a naive use of
        // `up_entails` would make; slightly less complete, which §4.3
        // explicitly tolerates ("an efficient and sound procedure that
        // does not guarantee completeness").
        let mut included = vec![BitSet::new(n); n];
        let mut disjoint = vec![BitSet::new(n); n];
        for i in 0..n {
            match car_logic::propagate_units(&cnf, &[PropLit::pos(i)]) {
                car_logic::Propagation::Closed(values) => {
                    for (j, value) in values.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        match value {
                            Some(true) => included[i].insert(j),
                            Some(false) => {
                                disjoint[i].insert(j);
                                disjoint[j].insert(i);
                            }
                            None => {}
                        }
                    }
                }
                car_logic::Propagation::Conflict => {
                    // C_i is provably empty: disjoint from everything and
                    // included in everything (vacuously).
                    for j in 0..n {
                        if j != i {
                            included[i].insert(j);
                            disjoint[i].insert(j);
                            disjoint[j].insert(i);
                        }
                    }
                }
            }
        }

        // The graph GS (criterion (b)).
        let mut adj = vec![BitSet::new(n); n];
        let link_pair = |a: usize, b: usize, adj: &mut Vec<BitSet>| {
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        };
        let positives = |f: &ClassFormula| -> Vec<usize> {
            f.literals()
                .filter(|l| l.positive)
                .map(|l| l.class.index())
                .collect()
        };
        // Link a whole group of possibly-co-occurring classes, pairwise.
        // A chain would give the same connectivity *before* step 3, but
        // step 3 removes arcs between provably-disjoint pairs — cutting a
        // chain link would strand members that still co-occur through the
        // remaining pairs, wrongly imposing disjointness on them. Cliques
        // survive any sound removal.
        let link_group = |group: &[usize], adj: &mut Vec<BitSet>| {
            for (k, &a) in group.iter().enumerate() {
                for &b in &group[k + 1..] {
                    if a != b {
                        adj[a].insert(b);
                        adj[b].insert(a);
                    }
                }
            }
        };

        // (1) isa: C with each positive of its isa formula.
        for (class, def) in schema.classes() {
            for p in positives(&def.isa) {
                link_pair(class.index(), p, &mut adj);
            }
        }
        // (2)+(2'): per attribute and side, all filler-type positives and
        // opposite-side spec owners form one co-occurrence group.
        for attr in schema.symbols().attr_ids() {
            let mut target_group: Vec<usize> = Vec::new(); // A-fillers
            let mut source_group: Vec<usize> = Vec::new(); // A-sources
            for (class, def) in schema.classes() {
                for spec in &def.attrs {
                    if spec.att.attr() != attr {
                        continue;
                    }
                    match spec.att {
                        AttRef::Direct(_) => {
                            target_group.extend(positives(&spec.ty));
                            source_group.push(class.index());
                        }
                        AttRef::Inverse(_) => {
                            source_group.extend(positives(&spec.ty));
                            target_group.push(class.index());
                        }
                    }
                }
            }
            link_group(&target_group, &mut adj);
            link_group(&source_group, &mut adj);
        }
        // (3)+(3'): per relation role, the positives of all attached
        // role-clause formulas plus the classes participating through
        // that role form one group.
        for (rel, def) in schema.relations() {
            for (role_pos, &role) in def.roles.iter().enumerate() {
                let mut group: Vec<usize> = Vec::new();
                for clause in &def.constraints {
                    for lit in &clause.literals {
                        if lit.role == role {
                            group.extend(positives(&lit.formula));
                        }
                    }
                }
                for (class, cdef) in schema.classes() {
                    if cdef
                        .participations
                        .iter()
                        .any(|p| p.rel == rel && p.role == role)
                    {
                        group.push(class.index());
                    }
                }
                let _ = role_pos;
                link_group(&group, &mut adj);
            }
        }

        // Step 3 of the construction: remove arcs between provably
        // disjoint pairs.
        for i in 0..n {
            for j in disjoint[i].iter().collect::<Vec<_>>() {
                adj[i].remove(j);
                adj[j].remove(i);
            }
        }

        // Connected components of GS.
        let components = connected_components(&adj);

        // Theorem 4.6: classes in different components may be assumed
        // disjoint without influencing class satisfiability.
        let mut component_of = vec![usize::MAX; n];
        for (ci, comp) in components.iter().enumerate() {
            for &c in comp {
                component_of[c] = ci;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if component_of[i] != component_of[j] {
                    disjoint[i].insert(j);
                    disjoint[j].insert(i);
                }
            }
        }

        Preselection { n, included, disjoint, components, component_of }
    }

    /// `true` iff the tables record `C₁ ⊑ C₂`.
    #[must_use]
    pub fn table_includes(&self, sub: ClassId, sup: ClassId) -> bool {
        self.included[sub.index()].contains(sup.index())
    }

    /// `true` iff the tables record (or safely assume) disjointness.
    #[must_use]
    pub fn table_disjoint(&self, c1: ClassId, c2: ClassId) -> bool {
        self.disjoint[c1.index()].contains(c2.index())
    }

    /// The clusters of §4.4: connected components of `GS`.
    #[must_use]
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// Per-class cluster membership: `component_of()[i]` indexes into
    /// [`Self::clusters`]. The incremental engine uses this to map an
    /// edited class to the one cluster whose enumeration it can dirty.
    #[must_use]
    pub fn component_of(&self) -> &[usize] {
        &self.component_of
    }

    /// Clauses encoding the table entries, for SAT-based enumeration:
    /// `¬C₁ ∨ C₂` per inclusion, `¬C₁ ∨ ¬C₂` per disjointness.
    #[must_use]
    pub fn extra_clauses(&self) -> Vec<Vec<PropLit>> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in self.included[i].iter() {
                out.push(vec![PropLit::neg(i), PropLit::pos(j)]);
            }
            for j in self.disjoint[i].iter() {
                if j > i {
                    out.push(vec![PropLit::neg(i), PropLit::neg(j)]);
                }
            }
        }
        out
    }
}

/// Connected components of an undirected graph in adjacency-bitset form.
#[must_use]
pub fn connected_components(adj: &[BitSet]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            for w in adj[v].iter() {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Card, RoleClause, RoleLiteral, SchemaBuilder};

    #[test]
    fn criterion_a_finds_explicit_inclusions_and_disjointness() {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(p.table_includes(professor, person));
        assert!(p.table_includes(student, person));
        assert!(!p.table_includes(person, professor));
        assert!(p.table_disjoint(student, professor));
        assert!(p.table_disjoint(professor, student));
        assert!(!p.table_disjoint(student, person));
    }

    #[test]
    fn criterion_a_follows_chains() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(bb).isa(ClassFormula::class(a)).finish();
        b.define_class(c).isa(ClassFormula::class(bb)).finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(p.table_includes(c, a)); // via B, needs propagation
    }

    #[test]
    fn unrelated_classes_land_in_different_clusters_and_get_disjointness() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let a2 = b.class("A2");
        let bb = b.class("B");
        b.define_class(a2).isa(ClassFormula::class(a)).finish();
        let _ = bb;
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        // {A, A2} and {B} are separate components.
        assert_eq!(p.clusters().len(), 2);
        assert!(p.table_disjoint(a, bb));
        assert!(p.table_disjoint(a2, bb));
        assert!(!p.table_disjoint(a, a2));
    }

    #[test]
    fn attribute_types_connect_classes() {
        // A's f-fillers are (T1 ∧ T2): T1 and T2 co-occur.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t1 = b.class("T1");
        let t2 = b.class("T2");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(
                AttRef::Direct(f),
                Card::any(),
                ClassFormula::class(t1).and(ClassFormula::class(t2)),
            )
            .finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(!p.table_disjoint(t1, t2));
        // A itself does not co-occur with its fillers; it may be assumed
        // disjoint from them.
        assert!(p.table_disjoint(a, t1));
    }

    #[test]
    fn inverse_attribute_owner_joins_the_target_group() {
        // A: f -> T; B: (inv f) <- anything. B-objects may be f-fillers
        // of A-objects, which must be T: B and T co-occur.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let bb = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::any(), ClassFormula::class(t))
            .finish();
        b.define_class(bb)
            .attr(AttRef::Inverse(f), Card::any(), ClassFormula::top())
            .finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(!p.table_disjoint(bb, t));
    }

    #[test]
    fn role_formulas_and_participants_connect() {
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let grad = b.class("Grad");
        let other = b.class("Other");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral {
                role: u,
                formula: ClassFormula::class(student),
            }]),
        );
        // Grad participates through role u: co-occurs with Student.
        b.define_class(grad).participates(r, u, Card::at_least(1)).finish();
        let _ = other;
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(!p.table_disjoint(grad, student));
        assert!(p.table_disjoint(other, student));
        assert!(p.table_disjoint(other, grad));
    }

    #[test]
    fn provably_disjoint_arcs_are_removed() {
        // B isa A ∧ ¬C, and C appears positively in B's... construct:
        // B isa (A ∨ C) ∧ ¬C. The isa links B with both A and C, but B
        // and C are provably disjoint: the arc B–C must go away. A and C
        // stay connected only through B... with the B–C arc removed, C is
        // separated unless another path exists.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        let mut isa = ClassFormula::union_of([a, c]);
        isa = isa.and(ClassFormula::neg_class(c));
        b.define_class(bb).isa(isa).finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert!(p.table_disjoint(bb, c)); // criterion (a)
        // After removing the B–C arc, C has no arcs: its own component.
        assert!(p.clusters().iter().any(|comp| comp == &vec![c.index()]));
    }

    #[test]
    fn extra_clauses_reflect_tables() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        b.define_class(bb).isa(ClassFormula::class(a)).finish();
        let c = b.class("C");
        let _ = c;
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        let clauses = p.extra_clauses();
        // Inclusion B ⊑ A: ¬B ∨ A.
        assert!(clauses.contains(&vec![PropLit::neg(bb.index()), PropLit::pos(a.index())]));
        // Assumed disjointness A–C (different clusters): ¬A ∨ ¬C.
        assert!(clauses
            .iter()
            .any(|cl| cl.contains(&PropLit::neg(a.index()))
                && cl.contains(&PropLit::neg(c.index()))));
    }

    #[test]
    fn connected_components_basics() {
        let mut adj = vec![BitSet::new(4); 4];
        adj[0].insert(1);
        adj[1].insert(0);
        adj[2].insert(3);
        adj[3].insert(2);
        let comps = connected_components(&adj);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(connected_components(&[]), Vec::<Vec<usize>>::new());
    }
}
