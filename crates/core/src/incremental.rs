//! Incremental reasoning over an evolving schema (extension).
//!
//! [`Workspace`] owns a mutable [`Schema`], applies typed edits
//! ([`SchemaDelta`]) and answers the same questions as
//! [`crate::reasoner::Reasoner`] — but instead of throwing the whole
//! analysis away on every edit, it reuses work across schema versions at
//! two levels:
//!
//! * **whole bundles** — every successfully computed analysis bundle is
//!   cached under a canonical serialization of the schema it was built
//!   from, so revisiting a version (undo/redo, A/B toggling of an edit)
//!   is an O(|S|) hash lookup instead of an EXPTIME rebuild;
//! * **per-cluster enumerations** — the compound-class sets of the §4.4
//!   clusters are cached under a fingerprint of each cluster's *reduced*
//!   consistency formula. An edit dirties only the clusters whose
//!   fingerprint changes (its own connected component of `GS`, plus any
//!   whose preselection clauses moved); the clean ones splice their
//!   cached enumeration back in verbatim.
//!
//! ### Why this is exact
//!
//! Under the Theorem 4.6 disjointness assumptions, a cluster's compound
//! classes are the models of the global consistency formula with every
//! class outside the cluster forced to `false`. That restriction reduces
//! the formula to one over the cluster's classes alone (clauses
//! satisfied by an outside negative literal drop out; outside positive
//! literals are deleted), and [`car_logic::for_each_model`] visits
//! models in lexicographic order of the variable vector — an order
//! determined by the model *set*, hence by the reduced formula and the
//! clusters' relative variable order, both captured by the cache key.
//! Equal key therefore means the identical model sequence, and splicing
//! is bit-for-bit the enumeration a fresh
//! [`crate::clusters::clustered_ccs_governed`] call would produce.
//!
//! The expansion and acceptability fixpoint are *rebuilt* on every new
//! schema version rather than spliced: compound attributes may connect
//! classes across cluster boundaries (a filler type `¬B` constrains
//! fillers in every cluster), so per-cluster fixpoint reuse is not
//! sound in general — but those phases are polynomial in the number of
//! compound classes, while the enumeration they consume is the EXPTIME
//! stage the cache shares.
//!
//! Failures (resource exhaustion, size limits) are never cached, at
//! either level — a tripped rebuild leaves both caches exactly as they
//! were, and a retry under a fresh [`Budget`] reproduces the unbounded
//! answers.
//!
//! ## Example
//!
//! ```
//! use car_core::incremental::{SchemaDelta, Workspace};
//! use car_core::syntax::{ClassFormula, SchemaBuilder};
//! use car_core::ReasonerConfig;
//!
//! let mut b = SchemaBuilder::new();
//! let person = b.class("Person");
//! let student = b.class("Student");
//! b.define_class(student).isa(ClassFormula::class(person)).finish();
//! let schema = b.build().unwrap();
//!
//! let mut ws = Workspace::new(schema, ReasonerConfig::default());
//! assert!(ws.try_subsumes(person, student).unwrap());
//!
//! // Edit: Student no longer isa Person.
//! ws.apply(&SchemaDelta::SetIsa { class: "Student".into(), isa: ClassFormula::top() })
//!     .unwrap();
//! let student = ws.schema().class_id("Student").unwrap();
//! let person = ws.schema().class_id("Person").unwrap();
//! assert!(!ws.try_subsumes(person, student).unwrap());
//!
//! // Undo restores the previous version — answered from cache.
//! assert!(ws.undo());
//! assert!(ws.try_subsumes(person, student).unwrap());
//! ```

use crate::bitset::BitSet;
use crate::budget::{Budget, Item, Phase};
use crate::clusters::cluster_ccs_governed;
use crate::enumerate::isa_cnf;
use crate::evict::LruPolicy;
use crate::expansion::{BuildError, ExpansionTooLarge};
use crate::hierarchy;
use crate::ids::ClassId;
use crate::par;
use crate::persist::{codec, SharedStore};
use crate::preselection::Preselection;
use crate::satisfiability::AnalysisStats;
use crate::reasoner::{
    self, Bundle, Outcome, ReasonerConfig, ReasonerError, Strategy,
};
use crate::syntax::{
    AttRef, Card, ClassFormula, RoleClause, RoleLiteral, Schema, SchemaBuilder, SchemaError,
};
use car_logic::PropLit;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Default number of cached analysis bundles per workspace (LRU).
const BUNDLE_CACHE_CAP: usize = 64;
/// Default number of cached per-cluster enumerations per workspace (LRU).
const CLUSTER_CACHE_CAP: usize = 4096;
/// Default undo history depth.
const UNDO_CAP: usize = 256;

/// Entry budgets bounding the memory a long-lived [`Workspace`] session
/// can hold: the undo/redo history depth and both cache levels. Every
/// bound evicts least-recently-used entries; eviction can only cause a
/// cache miss (a recomputation), never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceLimits {
    /// Maximum cached analysis bundles (whole-version cache).
    pub bundle_cache_cap: usize,
    /// Maximum cached per-cluster enumerations.
    pub cluster_cache_cap: usize,
    /// Maximum undo (and therefore redo) history depth.
    pub undo_cap: usize,
}

impl Default for WorkspaceLimits {
    fn default() -> WorkspaceLimits {
        WorkspaceLimits {
            bundle_cache_cap: BUNDLE_CACHE_CAP,
            cluster_cache_cap: CLUSTER_CACHE_CAP,
            undo_cap: UNDO_CAP,
        }
    }
}

// ---------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------

/// One role literal of a relation constraint, with the role addressed by
/// name (used by [`SchemaDelta::SetRelation`], whose roles may not exist
/// in the pre-edit schema yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleLiteralSpec {
    /// The role name.
    pub role: String,
    /// The class-formula the role filler must satisfy (class symbols of
    /// the pre-edit schema).
    pub formula: ClassFormula,
}

/// A typed edit to a schema, addressed by symbol *names* so that a delta
/// is meaningful independent of the id layout of the version it is
/// applied to. Class-formulae inside a delta use the [`ClassId`]s of the
/// **pre-edit** schema (the one [`Workspace::schema`] returns when the
/// delta is built); [`Workspace::apply`] remaps them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaDelta {
    /// Introduce a new class with the empty definition.
    AddClass {
        /// Name of the class; must not exist yet.
        name: String,
    },
    /// Remove a class. Fails if any other class or relation references
    /// it.
    RemoveClass {
        /// Name of the class.
        name: String,
    },
    /// Replace the isa part of a class definition.
    SetIsa {
        /// Name of the class.
        class: String,
        /// The new isa formula (`ClassFormula::top()` clears it).
        isa: ClassFormula,
    },
    /// Replace, add or remove one attribute specification of a class,
    /// keyed by `(attr, inverse)`.
    SetAttribute {
        /// Name of the class.
        class: String,
        /// Name of the attribute (interned on first use).
        attr: String,
        /// `true` to address the `inv attr` specification.
        inverse: bool,
        /// `Some((card, ty))` replaces or adds the specification;
        /// `None` removes it (no-op if absent).
        spec: Option<(Card, ClassFormula)>,
    },
    /// Replace, add or remove one participation specification of a
    /// class, keyed by `(rel, role)`.
    SetParticipation {
        /// Name of the class.
        class: String,
        /// Name of the relation (must exist).
        rel: String,
        /// Name of the role (must belong to the relation).
        role: String,
        /// `Some(card)` replaces or adds; `None` removes (no-op if
        /// absent).
        card: Option<Card>,
    },
    /// Define or redefine a relation: its roles and all constraints.
    SetRelation {
        /// Name of the relation.
        name: String,
        /// Role names in tuple order (arity ≥ 2).
        roles: Vec<String>,
        /// Role-clauses; every literal's role must appear in `roles`.
        constraints: Vec<Vec<RoleLiteralSpec>>,
    },
    /// Remove a relation. Fails if any class participates in it.
    RemoveRelation {
        /// Name of the relation.
        name: String,
    },
}

/// Why a [`SchemaDelta`] could not be applied. The workspace schema is
/// unchanged after any of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The named class does not exist.
    UnknownClass {
        /// The missing name.
        name: String,
    },
    /// [`SchemaDelta::AddClass`] for a name that already exists.
    DuplicateClass {
        /// The clashing name.
        name: String,
    },
    /// The named relation does not exist.
    UnknownRelation {
        /// The missing name.
        name: String,
    },
    /// The named role does not belong to the relation.
    UnknownRole {
        /// The relation.
        rel: String,
        /// The role that is not among its roles.
        role: String,
    },
    /// [`SchemaDelta::RemoveClass`] for a class still referenced.
    ClassReferenced {
        /// The class being removed.
        class: String,
        /// A definition that references it.
        by: String,
    },
    /// [`SchemaDelta::RemoveRelation`] for a relation still referenced.
    RelationReferenced {
        /// The relation being removed.
        rel: String,
        /// A class that participates in it.
        by: String,
    },
    /// The edited schema failed [`SchemaBuilder::build`] validation.
    Invalid(Vec<SchemaError>),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownClass { name } => write!(f, "unknown class '{name}'"),
            EditError::DuplicateClass { name } => {
                write!(f, "class '{name}' already exists")
            }
            EditError::UnknownRelation { name } => write!(f, "unknown relation '{name}'"),
            EditError::UnknownRole { rel, role } => {
                write!(f, "relation '{rel}' has no role '{role}'")
            }
            EditError::ClassReferenced { class, by } => {
                write!(f, "class '{class}' is still referenced by '{by}'")
            }
            EditError::RelationReferenced { rel, by } => {
                write!(f, "relation '{rel}' is still referenced by class '{by}'")
            }
            EditError::Invalid(errors) => {
                write!(f, "edited schema failed validation:")?;
                for e in errors {
                    write!(f, " {e};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EditError {}

// ---------------------------------------------------------------------
// Delta application
// ---------------------------------------------------------------------

/// Name-addressed intermediate representation of a schema, convenient to
/// edit; class-formulae still carry the *old* schema's [`ClassId`]s and
/// are remapped on rebuild.
struct ClassIR {
    name: String,
    isa: ClassFormula,
    attrs: Vec<AttrIR>,
    parts: Vec<PartIR>,
}

struct AttrIR {
    attr: String,
    inverse: bool,
    card: Card,
    ty: ClassFormula,
}

struct PartIR {
    rel: String,
    role: String,
    card: Card,
}

struct RelIR {
    name: String,
    roles: Vec<String>,
    /// Clauses of `(role name, formula)` literals.
    constraints: Vec<Vec<(String, ClassFormula)>>,
}

fn schema_to_ir(schema: &Schema) -> (Vec<ClassIR>, Vec<RelIR>) {
    let syms = schema.symbols();
    let classes = schema
        .classes()
        .map(|(id, def)| ClassIR {
            name: syms.class_name(id).to_owned(),
            isa: def.isa.clone(),
            attrs: def
                .attrs
                .iter()
                .map(|s| AttrIR {
                    attr: syms.attr_name(s.att.attr()).to_owned(),
                    inverse: s.att.is_inverse(),
                    card: s.card,
                    ty: s.ty.clone(),
                })
                .collect(),
            parts: def
                .participations
                .iter()
                .map(|p| PartIR {
                    rel: syms.rel_name(p.rel).to_owned(),
                    role: syms.role_name(p.role).to_owned(),
                    card: p.card,
                })
                .collect(),
        })
        .collect();
    let rels = schema
        .relations()
        .map(|(id, def)| RelIR {
            name: syms.rel_name(id).to_owned(),
            roles: def.roles.iter().map(|&r| syms.role_name(r).to_owned()).collect(),
            constraints: def
                .constraints
                .iter()
                .map(|c| {
                    c.literals
                        .iter()
                        .map(|l| (syms.role_name(l.role).to_owned(), l.formula.clone()))
                        .collect()
                })
                .collect(),
        })
        .collect();
    (classes, rels)
}

/// Applies one delta to a schema, producing the edited schema. Pure: the
/// input schema is untouched, and any error leaves no side effects.
///
/// # Errors
/// See [`EditError`].
pub fn apply_delta(old: &Schema, delta: &SchemaDelta) -> Result<Schema, EditError> {
    let (mut classes, mut rels) = schema_to_ir(old);
    let find_class = |classes: &[ClassIR], name: &str| -> Result<usize, EditError> {
        classes
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| EditError::UnknownClass { name: name.to_owned() })
    };

    match delta {
        SchemaDelta::AddClass { name } => {
            if classes.iter().any(|c| c.name == *name) {
                return Err(EditError::DuplicateClass { name: name.clone() });
            }
            classes.push(ClassIR {
                name: name.clone(),
                isa: ClassFormula::top(),
                attrs: Vec::new(),
                parts: Vec::new(),
            });
        }
        SchemaDelta::RemoveClass { name } => {
            let pos = find_class(&classes, name)?;
            let removed = old
                .class_id(name)
                .ok_or_else(|| EditError::UnknownClass { name: name.clone() })?;
            let mentions = |f: &ClassFormula| f.literals().any(|l| l.class == removed);
            for (i, c) in classes.iter().enumerate() {
                if i == pos {
                    continue; // its own definition goes away with it
                }
                if mentions(&c.isa) || c.attrs.iter().any(|a| mentions(&a.ty)) {
                    return Err(EditError::ClassReferenced {
                        class: name.clone(),
                        by: c.name.clone(),
                    });
                }
            }
            for r in &rels {
                if r.constraints.iter().flatten().any(|(_, f)| mentions(f)) {
                    return Err(EditError::ClassReferenced {
                        class: name.clone(),
                        by: r.name.clone(),
                    });
                }
            }
            classes.remove(pos);
        }
        SchemaDelta::SetIsa { class, isa } => {
            let pos = find_class(&classes, class)?;
            classes[pos].isa = isa.clone();
        }
        SchemaDelta::SetAttribute { class, attr, inverse, spec } => {
            let pos = find_class(&classes, class)?;
            let attrs = &mut classes[pos].attrs;
            let slot = attrs.iter().position(|a| a.attr == *attr && a.inverse == *inverse);
            match (slot, spec) {
                (Some(i), Some((card, ty))) => {
                    attrs[i].card = *card;
                    attrs[i].ty = ty.clone();
                }
                (None, Some((card, ty))) => attrs.push(AttrIR {
                    attr: attr.clone(),
                    inverse: *inverse,
                    card: *card,
                    ty: ty.clone(),
                }),
                (Some(i), None) => {
                    attrs.remove(i);
                }
                (None, None) => {}
            }
        }
        SchemaDelta::SetParticipation { class, rel, role, card } => {
            let pos = find_class(&classes, class)?;
            let rel_ir = rels
                .iter()
                .find(|r| r.name == *rel)
                .ok_or_else(|| EditError::UnknownRelation { name: rel.clone() })?;
            if !rel_ir.roles.iter().any(|r| r == role) {
                return Err(EditError::UnknownRole { rel: rel.clone(), role: role.clone() });
            }
            let parts = &mut classes[pos].parts;
            let slot = parts.iter().position(|p| p.rel == *rel && p.role == *role);
            match (slot, card) {
                (Some(i), Some(card)) => parts[i].card = *card,
                (None, Some(card)) => {
                    parts.push(PartIR { rel: rel.clone(), role: role.clone(), card: *card });
                }
                (Some(i), None) => {
                    parts.remove(i);
                }
                (None, None) => {}
            }
        }
        SchemaDelta::SetRelation { name, roles, constraints } => {
            for clause in constraints {
                for lit in clause {
                    if !roles.contains(&lit.role) {
                        return Err(EditError::UnknownRole {
                            rel: name.clone(),
                            role: lit.role.clone(),
                        });
                    }
                }
            }
            let new_ir = RelIR {
                name: name.clone(),
                roles: roles.clone(),
                constraints: constraints
                    .iter()
                    .map(|c| c.iter().map(|l| (l.role.clone(), l.formula.clone())).collect())
                    .collect(),
            };
            match rels.iter().position(|r| r.name == *name) {
                Some(i) => {
                    // Redefining may drop roles that participations use;
                    // the rebuild validation below catches that.
                    rels[i] = new_ir;
                }
                None => rels.push(new_ir),
            }
        }
        SchemaDelta::RemoveRelation { name } => {
            let pos = rels
                .iter()
                .position(|r| r.name == *name)
                .ok_or_else(|| EditError::UnknownRelation { name: name.clone() })?;
            for c in &classes {
                if c.parts.iter().any(|p| p.rel == *name) {
                    return Err(EditError::RelationReferenced {
                        rel: name.clone(),
                        by: c.name.clone(),
                    });
                }
            }
            rels.remove(pos);
        }
    }

    rebuild(old, &classes, &rels)
}

/// Rebuilds a [`Schema`] from the edited IR, remapping every class id
/// appearing in a formula from the old layout to the new one by name.
fn rebuild(old: &Schema, classes: &[ClassIR], rels: &[RelIR]) -> Result<Schema, EditError> {
    let mut b = SchemaBuilder::new();
    let class_ids: Vec<ClassId> = classes.iter().map(|c| b.class(&c.name)).collect();
    let new_id: HashMap<&str, ClassId> = classes
        .iter()
        .zip(&class_ids)
        .map(|(c, &id)| (c.name.as_str(), id))
        .collect();

    let remap = |f: &ClassFormula| -> Result<ClassFormula, EditError> {
        let mut out = ClassFormula::top();
        for clause in &f.clauses {
            let mut lits = Vec::with_capacity(clause.literals.len());
            for l in &clause.literals {
                if l.class.index() >= old.num_classes() {
                    return Err(EditError::UnknownClass {
                        name: format!("class#{}", l.class.index()),
                    });
                }
                let name = old.class_name(l.class);
                let &id = new_id.get(name).ok_or_else(|| EditError::UnknownClass {
                    name: name.to_owned(),
                })?;
                lits.push(crate::syntax::ClassLiteral { class: id, positive: l.positive });
            }
            out.push_clause(crate::syntax::ClassClause::new(lits));
        }
        Ok(out)
    };

    // Intern attribute symbols in definition order so the id layout is a
    // pure function of the IR (and therefore of the serialized content).
    for c in classes {
        for a in &c.attrs {
            b.attribute(&a.attr);
        }
    }

    // Relations before class definitions: participations validate
    // against them.
    let mut rel_ids = HashMap::new();
    for r in rels {
        let id = b.relation(&r.name, r.roles.iter().map(String::as_str));
        rel_ids.insert(r.name.as_str(), id);
        for clause in &r.constraints {
            let mut lits = Vec::with_capacity(clause.len());
            for (role, f) in clause {
                lits.push(RoleLiteral { role: b.role(role), formula: remap(f)? });
            }
            b.relation_constraint(id, RoleClause::new(lits));
        }
    }

    for (c, &id) in classes.iter().zip(&class_ids) {
        let isa = remap(&c.isa)?;
        let mut attrs = Vec::with_capacity(c.attrs.len());
        for a in &c.attrs {
            let att = b.attribute(&a.attr);
            let att = if a.inverse { AttRef::Inverse(att) } else { AttRef::Direct(att) };
            attrs.push((att, a.card, remap(&a.ty)?));
        }
        let mut parts = Vec::with_capacity(c.parts.len());
        for p in &c.parts {
            let &rel = rel_ids.get(p.rel.as_str()).ok_or_else(|| {
                EditError::UnknownRelation { name: p.rel.clone() }
            })?;
            parts.push((rel, b.role(&p.role), p.card));
        }
        let mut def = b.define_class(id).isa(isa);
        for (att, card, ty) in attrs {
            def = def.attr(att, card, ty);
        }
        for (rel, role, card) in parts {
            def = def.participates(rel, role, card);
        }
        def.finish();
    }

    b.build().map_err(EditError::Invalid)
}

// ---------------------------------------------------------------------
// Canonical serialization (cache keys)
// ---------------------------------------------------------------------

fn serialize_card(out: &mut String, card: Card) {
    match card.max {
        Some(max) => {
            let _ = write!(out, "({},{})", card.min, max);
        }
        None => {
            let _ = write!(out, "({},inf)", card.min);
        }
    }
}

fn serialize_formula(out: &mut String, f: &ClassFormula) {
    out.push('[');
    for clause in &f.clauses {
        out.push('(');
        for l in &clause.literals {
            let _ = write!(out, "{}{},", if l.positive { '+' } else { '-' }, l.class.index());
        }
        out.push(')');
    }
    out.push(']');
}

/// A canonical, collision-free description of a schema: symbol tables in
/// id order plus every definition. Equal serializations imply
/// structurally identical schemas (same ids, same definitions), which is
/// what makes it safe as a bundle-cache key — the cached analysis
/// answers by [`ClassId`], and the id layout is pinned by the key.
/// The persistence codec ([`crate::persist::codec::decode_schema`])
/// re-interns symbols in recorded id order precisely so that a
/// recovered schema's serialization — and therefore every cache key —
/// is byte-identical to the original's.
pub(crate) fn serialize_schema(schema: &Schema) -> String {
    let syms = schema.symbols();
    let mut out = String::new();
    out.push_str("classes:");
    for c in syms.class_ids() {
        let _ = write!(out, "{:?},", syms.class_name(c));
    }
    out.push_str("\nattrs:");
    for a in syms.attr_ids() {
        let _ = write!(out, "{:?},", syms.attr_name(a));
    }
    out.push_str("\nrels:");
    for r in syms.rel_ids() {
        let _ = write!(out, "{:?},", syms.rel_name(r));
    }
    out.push('\n');
    for (id, def) in schema.classes() {
        let _ = write!(out, "class {} isa ", id.index());
        serialize_formula(&mut out, &def.isa);
        for s in &def.attrs {
            let _ = write!(
                out,
                " att {}{} ",
                if s.att.is_inverse() { "inv " } else { "" },
                s.att.attr().index()
            );
            serialize_card(&mut out, s.card);
            serialize_formula(&mut out, &s.ty);
        }
        for p in &def.participations {
            let _ = write!(
                out,
                " part {}[{}] ",
                p.rel.index(),
                syms.role_name(p.role)
            );
            serialize_card(&mut out, p.card);
        }
        out.push('\n');
    }
    for (id, def) in schema.relations() {
        let _ = write!(out, "rel {} roles ", id.index());
        for &r in &def.roles {
            let _ = write!(out, "{:?},", syms.role_name(r));
        }
        for clause in &def.constraints {
            out.push_str(" clause ");
            for l in &clause.literals {
                let _ = write!(out, "{:?}:", syms.role_name(l.role));
                serialize_formula(&mut out, &l.formula);
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Cluster-level cache
// ---------------------------------------------------------------------

/// One clause of a cluster's reduced consistency formula: literals as
/// `(position within the cluster, polarity)`.
type ReducedClause = Vec<(usize, bool)>;

/// Restricts the global consistency clauses to one cluster under the
/// all-outside-false assignment: clauses satisfied by an outside
/// negative literal are dropped, outside positive literals are deleted,
/// and surviving literals are rewritten to cluster-local positions.
fn reduce_clauses<'a>(
    clause_lists: impl Iterator<Item = &'a [PropLit]>,
    cluster: &[usize],
    n: usize,
) -> Vec<ReducedClause> {
    let members = BitSet::from_iter(n, cluster.iter().copied());
    let mut out = Vec::new();
    'clauses: for literals in clause_lists {
        let mut reduced = Vec::new();
        for l in literals {
            if members.contains(l.var) {
                let local = cluster.binary_search(&l.var).expect("member of cluster");
                reduced.push((local, l.positive));
            } else if !l.positive {
                continue 'clauses; // satisfied by the outside-false assignment
            }
            // outside positive literal: false, dropped
        }
        out.push(reduced);
    }
    out
}

/// Cache key of one cluster's enumeration: the member class names in
/// global-index order plus the reduced formula over local positions.
/// The projected model sequence is a pure function of this key (see the
/// module docs), and naming the members makes id-layout shifts from
/// `AddClass`/`RemoveClass` a guaranteed (sound) miss unless the
/// surviving classes kept their relative order and constraints.
fn cluster_key(schema: &Schema, cluster: &[usize], reduced: &[ReducedClause]) -> String {
    let mut out = String::new();
    for &c in cluster {
        let _ = write!(out, "{:?},", schema.class_name(ClassId::from_index(c)));
    }
    out.push('|');
    for clause in reduced {
        out.push('(');
        for &(local, positive) in clause {
            let _ = write!(out, "{}{},", if positive { '+' } else { '-' }, local);
        }
        out.push(')');
    }
    out
}

/// An LRU-evicted map used for both in-memory cache levels. Recency,
/// budget and pins are tracked by the same [`LruPolicy`] that governs
/// the on-disk store, so every bounded cache in the system ages under
/// one rule: stalest unpinned entry first, pinned entries never. Each
/// entry weighs 1, making the byte budget an entry cap.
struct LruCache<V> {
    map: HashMap<String, V>,
    policy: LruPolicy,
}

impl<V> LruCache<V> {
    fn new(cap: usize) -> LruCache<V> {
        LruCache { map: HashMap::new(), policy: LruPolicy::new(cap as u64) }
    }

    fn get(&mut self, key: &str) -> Option<&V> {
        self.policy.touch(key);
        self.map.get(key)
    }

    fn insert(&mut self, key: String, value: V) {
        if self.policy.budget() == 0 {
            return;
        }
        self.policy.insert(&key, 1);
        self.map.insert(key, value);
        for victim in self.policy.evict() {
            self.map.remove(&victim);
        }
    }

    /// Shields an entry from eviction while a reader is splicing from
    /// it; released by the matching [`Self::unpin`]. Pinning a key that
    /// is not present is a no-op.
    fn pin(&mut self, key: &str) {
        self.policy.pin(key);
    }

    fn unpin(&mut self, key: &str) {
        self.policy.unpin(key);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A cached cluster enumeration: the complete model list over
/// cluster-local positions, in enumeration order.
type ClusterModels = Vec<BitSet>;

/// The namespaced durable-store key of one cluster enumeration. The
/// in-memory [`cluster_key`] is already collision-free; the prefix only
/// keeps cluster entries apart from whole-schema entries in the shared
/// store.
fn cluster_store_key(key: &str) -> String {
    format!("cluster\n{key}")
}

/// Cluster-spliced compound-class enumeration: cache hits are copied
/// back in, misses are probed against the durable store (if one is
/// attached) and only then enumerated (in parallel across clusters)
/// with the shared [`cluster_ccs_governed`] worker, then cached and
/// written through on success. Output is bit-identical to
/// [`crate::clusters::clustered_ccs_governed`] on the same schema.
fn spliced_ccs(
    schema: &Schema,
    config: &ReasonerConfig,
    cache: &mut LruCache<Arc<ClusterModels>>,
    store: Option<&SharedStore>,
    stats: &mut WorkspaceStats,
) -> Result<Vec<BitSet>, ReasonerError> {
    let budget = &config.budget;
    let max = config.limits.max_compound_classes;
    let n = schema.num_classes();
    budget.enter_phase(Phase::Enumerate);
    let pre = Preselection::compute(schema);
    let cnf = isa_cnf(schema);
    let table_clauses = pre.extra_clauses();
    let clusters = pre.clusters();

    let keys: Vec<String> = clusters
        .iter()
        .map(|cluster| {
            let reduced = reduce_clauses(
                cnf.clauses()
                    .iter()
                    .map(|c| c.literals.as_slice())
                    .chain(table_clauses.iter().map(Vec::as_slice)),
                cluster,
                n,
            );
            cluster_key(schema, cluster, &reduced)
        })
        .collect();

    let mut held: Vec<Option<Arc<ClusterModels>>> =
        keys.iter().map(|k| cache.get(k).cloned()).collect();

    // Second-chance tier: an enumeration missing in memory may survive
    // on disk from an earlier run — or an earlier process. A verified
    // entry is promoted back into the memory cache; an unreadable,
    // damaged or wrong-width one is exactly a miss.
    if let Some(store) = store {
        let mut guard = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, slot) in held.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let Some(bytes) = guard.get(&cluster_store_key(&keys[i])) else {
                continue;
            };
            if let Some((width, models)) = codec::decode_models(&bytes) {
                if width == clusters[i].len() {
                    stats.disk_cluster_hits += 1;
                    *slot = Some(Arc::new(models));
                }
            }
        }
    }

    // Pin every hit for the duration of the splice: inserts below may
    // otherwise evict under a small cap. A held `Arc` keeps the data
    // alive regardless, but the unified policy additionally guarantees
    // an entry currently being read is never an eviction victim.
    let pinned: Vec<usize> = (0..clusters.len()).filter(|&i| held[i].is_some()).collect();
    for &i in &pinned {
        if let Some(entry) = &held[i] {
            cache.insert(keys[i].clone(), entry.clone());
        }
        cache.pin(&keys[i]);
    }

    let result = (|| {
        // Enumerate every dirty cluster, sharded across the worker pool.
        let misses: Vec<usize> =
            (0..clusters.len()).filter(|&i| held[i].is_none()).collect();
        let mut fresh: Vec<Option<Result<Vec<BitSet>, BuildError>>> =
            par::parallel_map(config.threads, misses.len(), |mi| {
                Some(cluster_ccs_governed(
                    schema,
                    &table_clauses,
                    &clusters[misses[mi]],
                    max,
                    budget,
                ))
            });
        let miss_slot: HashMap<usize, usize> =
            misses.iter().enumerate().map(|(slot, &ci)| (ci, slot)).collect();

        // Splice in cluster order; overflow and error verdicts match
        // the serial non-cached loop.
        let mut out: Vec<BitSet> = Vec::new();
        for (ci, cluster) in clusters.iter().enumerate() {
            let entry: Arc<ClusterModels> = match miss_slot.get(&ci) {
                None => {
                    let entry = held[ci].clone().expect("classified as hit");
                    stats.clusters_reused += 1;
                    // The budget still accounts for every spliced
                    // compound class, exactly like a fresh enumeration
                    // would.
                    budget
                        .checkpoint()
                        .and_then(|()| budget.charge(Item::CompoundClass, entry.len() as u64))
                        .map_err(|e| reasoner::exhausted_error(budget, e))?;
                    entry
                }
                Some(&slot) => {
                    let models = fresh[slot].take().expect("each miss spliced once").map_err(
                        |e| match e {
                            BuildError::TooLarge(_) => {
                                ReasonerError::TooLarge(ExpansionTooLarge {
                                    what: "compound classes",
                                    limit: max,
                                })
                            }
                            exhausted @ BuildError::Exhausted(_) => {
                                reasoner::build_error(budget, exhausted)
                            }
                        },
                    )?;
                    stats.clusters_rebuilt += 1;
                    let localized: ClusterModels = models
                        .iter()
                        .map(|cc| {
                            BitSet::from_iter(
                                cluster.len(),
                                cluster
                                    .iter()
                                    .enumerate()
                                    .filter(|&(_, &g)| cc.contains(g))
                                    .map(|(local, _)| local),
                            )
                        })
                        .collect();
                    let entry = Arc::new(localized);
                    // Successful enumerations are cached immediately —
                    // they stay valid even if a later cluster fails
                    // this build — and written through to the durable
                    // store, where a failure costs durability only.
                    cache.insert(keys[ci].clone(), entry.clone());
                    if let Some(store) = store {
                        let payload = codec::encode_models(cluster.len(), &entry);
                        let mut guard =
                            store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        // A follower's read-only store refuses writes by
                        // design; that is not a durability failure.
                        if !guard.is_read_only() {
                            if guard.put(&cluster_store_key(&keys[ci]), &payload) {
                                stats.disk_writes += 1;
                            } else {
                                stats.disk_write_failures += 1;
                            }
                        }
                    }
                    entry
                }
            };
            if out.len() + entry.len() > max {
                return Err(ReasonerError::TooLarge(ExpansionTooLarge {
                    what: "compound classes",
                    limit: max,
                }));
            }
            out.extend(entry.iter().map(|local_cc| {
                BitSet::from_iter(n, local_cc.iter().map(|local| cluster[local]))
            }));
        }
        Ok(out)
    })();
    for &i in &pinned {
        cache.unpin(&keys[i]);
    }
    result
}

/// Whole-schema compound-class enumeration with a durable second tier:
/// the canonical serialization of the enumerated schema, together with
/// the enumeration-relevant config facets, keys a persisted copy of the
/// model list. A verified disk hit replays the exact enumeration (and
/// is charged to the budget like a fresh one); anything damaged is a
/// miss and the enumeration reruns, writing a fresh entry through.
fn ccs_with_store(
    schema: &Schema,
    config: &ReasonerConfig,
    store: Option<&SharedStore>,
    stats: &mut WorkspaceStats,
) -> Result<(Vec<BitSet>, Strategy), ReasonerError> {
    let Some(store) = store else {
        return reasoner::enumerate_ccs(schema, config);
    };
    let key = format!(
        "ccs\n{:?} arity={}\n{}",
        config.strategy,
        config.arity_reduction,
        serialize_schema(schema)
    );
    let budget = &config.budget;
    let max = config.limits.max_compound_classes;
    let n = schema.num_classes();
    let cached = store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
        .and_then(|bytes| codec::decode_models(&bytes))
        .and_then(|(width, models)| (width == n).then_some(models));
    if let Some(models) = cached {
        // Replay enforces the same verdicts a fresh enumeration would:
        // the size cap and the per-compound-class budget charge.
        if models.len() > max {
            return Err(ReasonerError::TooLarge(ExpansionTooLarge {
                what: "compound classes",
                limit: max,
            }));
        }
        budget.enter_phase(Phase::Enumerate);
        budget
            .checkpoint()
            .and_then(|()| budget.charge(Item::CompoundClass, models.len() as u64))
            .map_err(|e| reasoner::exhausted_error(budget, e))?;
        stats.disk_ccs_hits += 1;
        return Ok((models, reasoner::effective_strategy(schema, config)));
    }
    let (models, effective) = reasoner::enumerate_ccs(schema, config)?;
    let payload = codec::encode_models(n, &models);
    let mut guard = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if !guard.is_read_only() {
        if guard.put(&key, &payload) {
            stats.disk_writes += 1;
        } else {
            stats.disk_write_failures += 1;
        }
    }
    drop(guard);
    Ok((models, effective))
}

// ---------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------

/// Reuse counters of a [`Workspace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Queries answered from a cached bundle.
    pub bundle_hits: u64,
    /// Bundles computed (at least partially) fresh.
    pub bundle_misses: u64,
    /// Cluster enumerations spliced from cache during bundle rebuilds.
    pub clusters_reused: u64,
    /// Cluster enumerations computed fresh during bundle rebuilds.
    pub clusters_rebuilt: u64,
    /// Deltas successfully applied (undo/redo not counted).
    pub edits_applied: u64,
    /// Cluster enumerations recovered from the durable store (also
    /// counted in `clusters_reused`).
    pub disk_cluster_hits: u64,
    /// Whole-schema enumerations recovered from the durable store.
    pub disk_ccs_hits: u64,
    /// Enumerations written through to the durable store.
    pub disk_writes: u64,
    /// Write-throughs the store could not complete. Never an error:
    /// the freshly computed result is still returned and cached in
    /// memory; only durability is lost.
    pub disk_write_failures: u64,
    /// The enumeration strategy that actually ran for the most recently
    /// computed satisfiability bundle (`None` until one is computed) —
    /// e.g. `Sat` for a `Naive` request past the fallback cap. Surfaced
    /// so server transcripts record silent strategy dispatches.
    pub effective_strategy: Option<Strategy>,
}

/// One reasoning question for [`Workspace::query_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Is the class satisfiable?
    IsSatisfiable(ClassId),
    /// Is every class satisfiable?
    IsCoherent,
    /// Does `sup` subsume `sub`?
    Subsumes {
        /// The candidate subsumer.
        sup: ClassId,
        /// The candidate subsumee.
        sub: ClassId,
    },
    /// Are the classes disjoint in every model?
    Disjoint(ClassId, ClassId),
    /// Are the classes equivalent in every model?
    Equivalent(ClassId, ClassId),
}

/// An incrementally maintained reasoning session over a mutable schema.
/// See the module docs for the caching model. Answers are always exactly
/// those of a fresh [`crate::reasoner::Reasoner`] with the same config
/// on the current schema.
pub struct Workspace {
    schema: Schema,
    config: ReasonerConfig,
    limits: WorkspaceLimits,
    undo: Vec<Schema>,
    redo: Vec<Schema>,
    bundles: LruCache<Arc<Bundle>>,
    clusters: LruCache<Arc<ClusterModels>>,
    store: Option<SharedStore>,
    stats: WorkspaceStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BundleKind {
    Sat,
    Full,
}

impl Workspace {
    /// A workspace over an initial schema. The config's strategy,
    /// limits, thread count and arity-reduction flag are fixed for the
    /// workspace's lifetime; the budget can be swapped with
    /// [`Self::set_budget`].
    #[must_use]
    pub fn new(schema: Schema, config: ReasonerConfig) -> Workspace {
        Workspace::with_limits(schema, config, WorkspaceLimits::default())
    }

    /// A workspace whose undo history and caches are bounded by explicit
    /// entry budgets — the configuration for long-lived multi-tenant
    /// sessions, where the default caps may hold too much memory.
    #[must_use]
    pub fn with_limits(
        schema: Schema,
        config: ReasonerConfig,
        limits: WorkspaceLimits,
    ) -> Workspace {
        Workspace {
            schema,
            config,
            limits,
            undo: Vec::new(),
            redo: Vec::new(),
            bundles: LruCache::new(limits.bundle_cache_cap),
            clusters: LruCache::new(limits.cluster_cache_cap),
            store: None,
            stats: WorkspaceStats::default(),
        }
    }

    /// Rebuilds a workspace from recovered state — the current schema
    /// plus undo/redo history, as reconstructed by snapshot/journal
    /// recovery. The undo stack is trimmed to the configured cap (oldest
    /// versions dropped) exactly as live editing would have done.
    #[must_use]
    pub fn restore(
        schema: Schema,
        undo: Vec<Schema>,
        redo: Vec<Schema>,
        config: ReasonerConfig,
        limits: WorkspaceLimits,
    ) -> Workspace {
        let mut ws = Workspace::with_limits(schema, config, limits);
        ws.undo = undo;
        ws.redo = redo;
        if ws.undo.len() > ws.limits.undo_cap {
            let excess = ws.undo.len() - ws.limits.undo_cap;
            ws.undo.drain(..excess);
        }
        ws
    }

    /// Attaches a durable content-addressed store as a second cache
    /// tier behind the in-memory caches: enumerations missing in memory
    /// are looked up on disk before being recomputed, and fresh ones
    /// are written through. The store may be shared by any number of
    /// workspaces — entries are content-addressed, so cross-tenant
    /// sharing can never mix up answers.
    pub fn set_store(&mut self, store: SharedStore) {
        self.store = Some(store);
    }

    /// The attached durable store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&SharedStore> {
        self.store.as_ref()
    }

    /// The schema versions reachable via [`Self::undo`], oldest first.
    #[must_use]
    pub fn undo_stack(&self) -> &[Schema] {
        &self.undo
    }

    /// The undone versions reachable via [`Self::redo`], in pop order
    /// (the next redo is last).
    #[must_use]
    pub fn redo_stack(&self) -> &[Schema] {
        &self.redo
    }

    /// The workspace's configured limits.
    #[must_use]
    pub fn limits(&self) -> WorkspaceLimits {
        self.limits
    }

    /// The current schema version.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The reuse counters so far.
    #[must_use]
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Replaces the resource budget for subsequent computations, exactly
    /// like [`crate::reasoner::Reasoner::set_budget`]: cached results
    /// are kept, only new computations draw on the new budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// Applies one edit to the current schema. On success the previous
    /// version is pushed onto the undo stack and the redo stack is
    /// cleared; on error the workspace is unchanged.
    ///
    /// # Errors
    /// See [`EditError`].
    pub fn apply(&mut self, delta: &SchemaDelta) -> Result<(), EditError> {
        let edited = apply_delta(&self.schema, delta)?;
        self.undo.push(std::mem::replace(&mut self.schema, edited));
        if self.undo.len() > self.limits.undo_cap {
            self.undo.remove(0);
        }
        self.redo.clear();
        self.stats.edits_applied += 1;
        Ok(())
    }

    /// Steps back to the previous schema version. Returns `false` when
    /// there is nothing to undo. Queries after an undo are answered from
    /// the bundle cache when the version was analyzed before.
    pub fn undo(&mut self) -> bool {
        match self.undo.pop() {
            Some(prev) => {
                self.redo.push(std::mem::replace(&mut self.schema, prev));
                true
            }
            None => false,
        }
    }

    /// Re-applies the most recently undone edit. Returns `false` when
    /// there is nothing to redo.
    pub fn redo(&mut self) -> bool {
        match self.redo.pop() {
            Some(next) => {
                self.undo.push(std::mem::replace(&mut self.schema, next));
                true
            }
            None => false,
        }
    }

    // ---- Bundle management ----------------------------------------

    /// `true` when the sat and full bundles are the same computation
    /// for the current schema (see `Reasoner::shares_bundles`).
    fn shares_bundles(&self) -> bool {
        self.config.strategy == Strategy::Sat
            && !reasoner::transform_applies(&self.schema, &self.config)
    }

    /// Fails fast on a [`ClassId`] outside the current schema — stale
    /// ids (from before an id-layout-changing edit) or fabricated ids
    /// must surface as an error, not as a silently-empty phantom class.
    fn check_class(&self, class: ClassId) -> Result<(), ReasonerError> {
        let num_classes = self.schema.num_classes();
        if class.index() < num_classes {
            Ok(())
        } else {
            Err(ReasonerError::ClassOutOfRange { index: class.index(), num_classes })
        }
    }

    fn bundle(&mut self, kind: BundleKind) -> Result<Arc<Bundle>, ReasonerError> {
        let effective = if self.shares_bundles() { BundleKind::Sat } else { kind };
        let tag = match effective {
            BundleKind::Sat => "sat",
            BundleKind::Full => "full",
        };
        let key = format!("{tag}\n{}", serialize_schema(&self.schema));
        if let Some(bundle) = self.bundles.get(&key) {
            self.stats.bundle_hits += 1;
            return Ok(bundle.clone());
        }
        self.stats.bundle_misses += 1;
        let bundle = Arc::new(match effective {
            BundleKind::Sat => self.compute_sat_bundle()?,
            BundleKind::Full => self.compute_full_bundle()?,
        });
        // Only successes are cached: a failed build must stay
        // retryable and must not poison the cache.
        self.bundles.insert(key, bundle.clone());
        Ok(bundle)
    }

    fn compute_sat_bundle(&mut self) -> Result<Bundle, ReasonerError> {
        let config = self.config.clone();
        config.budget.enter_phase(Phase::Setup);
        let transformed = reasoner::transform_schema(&self.schema, &config)?;
        // The cluster-spliced path applies exactly when the equivalent
        // Reasoner would enumerate cluster by cluster on the same
        // (untransformed) schema.
        let cluster_path = transformed.is_none()
            && match config.strategy {
                Strategy::Preselect => true,
                Strategy::Auto => hierarchy::detect(&self.schema).is_none(),
                Strategy::Naive | Strategy::Sat | Strategy::ColumnGen => false,
            };
        if cluster_path {
            let ccs = spliced_ccs(
                &self.schema,
                &config,
                &mut self.clusters,
                self.store.as_ref(),
                &mut self.stats,
            )?;
            let (expansion, analysis) =
                reasoner::expand_and_analyze(&self.schema, ccs, &config)?;
            // The spliced path is the cluster-by-cluster `Preselect`
            // enumeration, whatever the requested strategy resolved from.
            self.stats.effective_strategy = Some(Strategy::Preselect);
            return Ok(Bundle::new(None, expansion, analysis, Strategy::Preselect));
        }
        let schema = transformed.as_ref().unwrap_or(&self.schema);
        let (ccs, effective) =
            ccs_with_store(schema, &config, self.store.as_ref(), &mut self.stats)?;
        let (expansion, analysis) = reasoner::expand_and_analyze(schema, ccs, &config)?;
        self.stats.effective_strategy = Some(effective);
        Ok(Bundle::new(transformed, expansion, analysis, effective))
    }

    fn compute_full_bundle(&mut self) -> Result<Bundle, ReasonerError> {
        let full_config = ReasonerConfig {
            strategy: Strategy::Sat,
            arity_reduction: false,
            ..self.config.clone()
        };
        let (ccs, effective) =
            ccs_with_store(&self.schema, &full_config, self.store.as_ref(), &mut self.stats)?;
        let (expansion, analysis) =
            reasoner::expand_and_analyze(&self.schema, ccs, &full_config)?;
        Ok(Bundle::new(None, expansion, analysis, effective))
    }

    // ---- Queries ---------------------------------------------------

    /// Class satisfiability on the current schema.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_is_satisfiable`].
    pub fn try_is_satisfiable(&mut self, class: ClassId) -> Result<bool, ReasonerError> {
        self.check_class(class)?;
        let bundle = self.bundle(BundleKind::Sat)?;
        Ok(bundle.analysis.class_satisfiable(&bundle.expansion, class))
    }

    /// All necessarily empty classes of the current schema.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_unsatisfiable_classes`].
    pub fn try_unsatisfiable_classes(&mut self) -> Result<Vec<ClassId>, ReasonerError> {
        let bundle = self.bundle(BundleKind::Sat)?;
        Ok(self
            .schema
            .symbols()
            .class_ids()
            .filter(|&c| !bundle.analysis.class_satisfiable(&bundle.expansion, c))
            .collect())
    }

    /// `true` iff every class of the current schema is satisfiable.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_is_coherent`].
    pub fn try_is_coherent(&mut self) -> Result<bool, ReasonerError> {
        Ok(self.try_unsatisfiable_classes()?.is_empty())
    }

    /// Statistics of the satisfiability analysis on the current schema
    /// (forces the satisfiability bundle), including the enumeration
    /// strategy that actually ran.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_stats`].
    pub fn try_analysis_stats(&mut self) -> Result<AnalysisStats, ReasonerError> {
        Ok(self.bundle(BundleKind::Sat)?.stats())
    }

    /// `sup ⊒ sub` on the current schema.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_subsumes`].
    pub fn try_subsumes(&mut self, sup: ClassId, sub: ClassId) -> Result<bool, ReasonerError> {
        self.check_class(sup)?;
        self.check_class(sub)?;
        let bundle = self.bundle(BundleKind::Full)?;
        Ok(bundle.implications(self.schema.num_classes()).subsumes(sup, sub))
    }

    /// Disjointness on the current schema.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_disjoint`].
    pub fn try_disjoint(&mut self, c1: ClassId, c2: ClassId) -> Result<bool, ReasonerError> {
        self.check_class(c1)?;
        self.check_class(c2)?;
        let bundle = self.bundle(BundleKind::Full)?;
        Ok(bundle.implications(self.schema.num_classes()).disjoint(c1, c2))
    }

    /// Equivalence on the current schema.
    ///
    /// # Errors
    /// Exactly as [`crate::reasoner::Reasoner::try_equivalent`].
    pub fn try_equivalent(&mut self, c1: ClassId, c2: ClassId) -> Result<bool, ReasonerError> {
        self.check_class(c1)?;
        self.check_class(c2)?;
        let bundle = self.bundle(BundleKind::Full)?;
        Ok(bundle.implications(self.schema.num_classes()).equivalent(c1, c2))
    }

    /// Answers a batch of queries against the current schema version:
    /// the required bundles (satisfiability and/or complete) are
    /// materialized once for the whole batch, and duplicate queries are
    /// answered from a per-batch memo instead of re-evaluated. Results
    /// are returned in input order. Unlike [`Self::query_batch`], a
    /// failure keeps its full [`ReasonerError`] — deadline vs
    /// cancellation vs budget exhaustion vs invalid input — so callers
    /// (e.g. a server) can report the real cause per query.
    pub fn query_batch_results(
        &mut self,
        queries: &[Query],
    ) -> Vec<Result<bool, ReasonerError>> {
        let needs_sat = queries
            .iter()
            .any(|q| matches!(q, Query::IsSatisfiable(_) | Query::IsCoherent));
        let needs_full = queries.iter().any(|q| {
            matches!(q, Query::Subsumes { .. } | Query::Disjoint(..) | Query::Equivalent(..))
        });
        let sat = if needs_sat { Some(self.bundle(BundleKind::Sat)) } else { None };
        let full = if needs_full { Some(self.bundle(BundleKind::Full)) } else { None };
        let num_classes = self.schema.num_classes();
        let all_classes: Vec<ClassId> = self.schema.symbols().class_ids().collect();
        let check = |c: ClassId| -> Result<(), ReasonerError> {
            if c.index() < num_classes {
                Ok(())
            } else {
                Err(ReasonerError::ClassOutOfRange { index: c.index(), num_classes })
            }
        };

        let mut memo: HashMap<Query, Result<bool, ReasonerError>> = HashMap::new();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            if let Some(answer) = memo.get(q) {
                out.push(answer.clone());
                continue;
            }
            let result: Result<bool, ReasonerError> = match *q {
                Query::IsSatisfiable(class) => check(class).and_then(|()| {
                    sat.as_ref()
                        .expect("sat bundle requested")
                        .as_ref()
                        .map(|b| b.analysis.class_satisfiable(&b.expansion, class))
                        .map_err(Clone::clone)
                }),
                Query::IsCoherent => sat
                    .as_ref()
                    .expect("sat bundle requested")
                    .as_ref()
                    .map(|b| {
                        all_classes
                            .iter()
                            .all(|&c| b.analysis.class_satisfiable(&b.expansion, c))
                    })
                    .map_err(Clone::clone),
                Query::Subsumes { sup, sub } => {
                    check(sup).and_then(|()| check(sub)).and_then(|()| {
                        full.as_ref()
                            .expect("full bundle requested")
                            .as_ref()
                            .map(|b| b.implications(num_classes).subsumes(sup, sub))
                            .map_err(Clone::clone)
                    })
                }
                Query::Disjoint(c1, c2) => {
                    check(c1).and_then(|()| check(c2)).and_then(|()| {
                        full.as_ref()
                            .expect("full bundle requested")
                            .as_ref()
                            .map(|b| b.implications(num_classes).disjoint(c1, c2))
                            .map_err(Clone::clone)
                    })
                }
                Query::Equivalent(c1, c2) => {
                    check(c1).and_then(|()| check(c2)).and_then(|()| {
                        full.as_ref()
                            .expect("full bundle requested")
                            .as_ref()
                            .map(|b| b.implications(num_classes).equivalent(c1, c2))
                            .map_err(Clone::clone)
                    })
                }
            };
            memo.insert(*q, result.clone());
            out.push(result);
        }
        out
    }

    /// [`Self::query_batch_results`] collapsed to three-valued
    /// [`Outcome`]s — every failure kind maps to [`Outcome::Unknown`]
    /// with the progress snapshot.
    pub fn query_batch(&mut self, queries: &[Query]) -> Vec<Outcome> {
        self.query_batch_results(queries)
            .into_iter()
            .map(|r| Outcome::from_result(r, &self.config.budget))
            .collect()
    }
}

impl fmt::Debug for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workspace")
            .field("classes", &self.schema.num_classes())
            .field("undo_depth", &self.undo.len())
            .field("cached_bundles", &self.bundles.len())
            .field("cached_clusters", &self.clusters.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reasoner::Reasoner;
    use crate::syntax::ClassClause;
    use crate::syntax::ClassLiteral;

    fn university() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let grad = b.class("Grad_Student");
        let course = b.class("Course");
        let taught_by = b.attribute("taught_by");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.define_class(grad).isa(ClassFormula::class(student)).finish();
        b.define_class(course)
            .isa(ClassFormula::neg_class(person))
            .attr(
                AttRef::Direct(taught_by),
                Card::exactly(1),
                ClassFormula::union_of([professor, grad]),
            )
            .finish();
        b.build().unwrap()
    }

    fn agree_with_fresh(ws: &mut Workspace) {
        let schema = ws.schema().clone();
        let fresh = Reasoner::with_config(&schema, ws.config.clone());
        for c in schema.symbols().class_ids() {
            assert_eq!(
                ws.try_is_satisfiable(c),
                fresh.try_is_satisfiable(c),
                "satisfiability of {}",
                schema.class_name(c)
            );
        }
        for c1 in schema.symbols().class_ids() {
            for c2 in schema.symbols().class_ids() {
                assert_eq!(ws.try_subsumes(c1, c2), fresh.try_subsumes(c1, c2));
                assert_eq!(ws.try_disjoint(c1, c2), fresh.try_disjoint(c1, c2));
            }
        }
    }

    #[test]
    fn edits_track_a_fresh_reasoner() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());
        agree_with_fresh(&mut ws);

        // Grad_Student now isa Professor too: becomes unsatisfiable
        // (Student excludes Professor).
        let student = ws.schema().class_id("Student").unwrap();
        let professor = ws.schema().class_id("Professor").unwrap();
        ws.apply(&SchemaDelta::SetIsa {
            class: "Grad_Student".into(),
            isa: ClassFormula::class(student).and(ClassFormula::class(professor)),
        })
        .unwrap();
        let grad = ws.schema().class_id("Grad_Student").unwrap();
        assert!(!ws.try_is_satisfiable(grad).unwrap());
        agree_with_fresh(&mut ws);

        ws.apply(&SchemaDelta::AddClass { name: "TA".into() }).unwrap();
        agree_with_fresh(&mut ws);
        ws.apply(&SchemaDelta::RemoveClass { name: "TA".into() }).unwrap();
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn undo_redo_restore_versions_and_hit_the_cache() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());
        let before = ws.try_is_coherent().unwrap();
        assert!(before);
        ws.apply(&SchemaDelta::SetIsa {
            class: "Grad_Student".into(),
            isa: ClassFormula::class(ws.schema().class_id("Professor").unwrap())
                .and(ClassFormula::class(ws.schema().class_id("Student").unwrap())),
        })
        .unwrap();
        assert!(!ws.try_is_coherent().unwrap());
        assert!(ws.undo());
        let misses_before = ws.stats().bundle_misses;
        assert!(ws.try_is_coherent().unwrap());
        assert_eq!(ws.stats().bundle_misses, misses_before, "undo must hit the cache");
        assert!(ws.redo());
        let misses_before = ws.stats().bundle_misses;
        assert!(!ws.try_is_coherent().unwrap());
        assert_eq!(ws.stats().bundle_misses, misses_before, "redo must hit the cache");
        assert!(!ws.redo());
    }

    #[test]
    fn cluster_cache_reuses_unrelated_components() {
        // Two independent chains; editing one must not re-enumerate the
        // other's cluster.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let a2 = b.class("A2");
        let c = b.class("C");
        let c2 = b.class("C2");
        b.define_class(a2).isa(ClassFormula::class(a)).finish();
        b.define_class(c2).isa(ClassFormula::class(c)).finish();
        let schema = b.build().unwrap();
        let config =
            ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() };
        let mut ws = Workspace::new(schema, config);
        assert!(ws.try_is_coherent().unwrap());
        let rebuilt_initially = ws.stats().clusters_rebuilt;
        assert!(rebuilt_initially >= 2);

        // Grow the A-chain only: the A-cluster's reduced formula gains a
        // variable (miss), the C-cluster's is untouched (hit).
        ws.apply(&SchemaDelta::AddClass { name: "A3".into() }).unwrap();
        let a = ws.schema().class_id("A").unwrap();
        ws.apply(&SchemaDelta::SetIsa { class: "A3".into(), isa: ClassFormula::class(a) })
            .unwrap();
        assert!(ws.try_is_coherent().unwrap());
        let stats = ws.stats();
        assert!(stats.clusters_reused >= 1, "clean cluster must splice: {stats:?}");
        assert_eq!(
            stats.clusters_rebuilt,
            rebuilt_initially + 1,
            "only the dirty cluster may rebuild: {stats:?}"
        );
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn every_delta_kind_applies_and_validates() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());

        // Unknown names are rejected.
        assert_eq!(
            ws.apply(&SchemaDelta::SetIsa { class: "Nope".into(), isa: ClassFormula::top() }),
            Err(EditError::UnknownClass { name: "Nope".into() })
        );
        assert_eq!(
            ws.apply(&SchemaDelta::AddClass { name: "Person".into() }),
            Err(EditError::DuplicateClass { name: "Person".into() })
        );
        // Person is referenced by Professor's isa: not removable.
        assert!(matches!(
            ws.apply(&SchemaDelta::RemoveClass { name: "Person".into() }),
            Err(EditError::ClassReferenced { .. })
        ));

        // Attribute replace / remove round-trip.
        let professor = ws.schema().class_id("Professor").unwrap();
        ws.apply(&SchemaDelta::SetAttribute {
            class: "Course".into(),
            attr: "taught_by".into(),
            inverse: false,
            spec: Some((Card::new(1, 3), ClassFormula::class(professor))),
        })
        .unwrap();
        agree_with_fresh(&mut ws);
        ws.apply(&SchemaDelta::SetAttribute {
            class: "Course".into(),
            attr: "taught_by".into(),
            inverse: false,
            spec: None,
        })
        .unwrap();
        assert!(ws.schema().class_def(ws.schema().class_id("Course").unwrap()).attrs.is_empty());

        // Relations: define, participate, then tear down in order.
        ws.apply(&SchemaDelta::SetRelation {
            name: "Enrolled".into(),
            roles: vec!["who".into(), "what".into()],
            constraints: vec![vec![RoleLiteralSpec {
                role: "who".into(),
                formula: ClassFormula::class(ws.schema().class_id("Student").unwrap()),
            }]],
        })
        .unwrap();
        ws.apply(&SchemaDelta::SetParticipation {
            class: "Student".into(),
            rel: "Enrolled".into(),
            role: "who".into(),
            card: Some(Card::at_least(1)),
        })
        .unwrap();
        agree_with_fresh(&mut ws);
        assert!(matches!(
            ws.apply(&SchemaDelta::RemoveRelation { name: "Enrolled".into() }),
            Err(EditError::RelationReferenced { .. })
        ));
        ws.apply(&SchemaDelta::SetParticipation {
            class: "Student".into(),
            rel: "Enrolled".into(),
            role: "who".into(),
            card: None,
        })
        .unwrap();
        ws.apply(&SchemaDelta::RemoveRelation { name: "Enrolled".into() }).unwrap();
        assert!(ws.schema().rel_id("Enrolled").is_none());
        agree_with_fresh(&mut ws);

        // A bad relation (arity 1) is rejected by validation.
        assert!(matches!(
            ws.apply(&SchemaDelta::SetRelation {
                name: "Bad".into(),
                roles: vec!["only".into()],
                constraints: vec![],
            }),
            Err(EditError::Invalid(_))
        ));
        assert!(ws.schema().rel_id("Bad").is_none());
    }

    #[test]
    fn remove_class_remaps_surviving_ids() {
        let mut b = SchemaBuilder::new();
        let _x = b.class("X");
        let a = b.class("A");
        let a2 = b.class("A2");
        b.define_class(a2).isa(ClassFormula::class(a)).finish();
        let schema = b.build().unwrap();
        let mut ws = Workspace::new(schema, ReasonerConfig::default());
        ws.apply(&SchemaDelta::RemoveClass { name: "X".into() }).unwrap();
        // A and A2 shifted down by one; the isa must still relate them.
        let a = ws.schema().class_id("A").unwrap();
        let a2 = ws.schema().class_id("A2").unwrap();
        assert_eq!(a.index(), 0);
        assert!(ws.try_subsumes(a, a2).unwrap());
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn query_batch_matches_individual_queries_and_deduplicates() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());
        let person = ws.schema().class_id("Person").unwrap();
        let grad = ws.schema().class_id("Grad_Student").unwrap();
        let course = ws.schema().class_id("Course").unwrap();
        let queries = [
            Query::IsSatisfiable(person),
            Query::Subsumes { sup: person, sub: grad },
            Query::Subsumes { sup: person, sub: grad }, // duplicate
            Query::Disjoint(course, person),
            Query::Equivalent(person, grad),
            Query::IsCoherent,
        ];
        let batch = ws.query_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        assert_eq!(batch[1], batch[2]);
        assert_eq!(batch[0], Outcome::Proved);
        assert_eq!(batch[1], Outcome::Proved);
        assert_eq!(batch[3], Outcome::Proved);
        assert_eq!(batch[4], Outcome::Disproved);
        assert_eq!(batch[5], Outcome::Proved);
    }

    #[test]
    fn failed_builds_are_not_cached_and_retry_succeeds() {
        let mut ws = Workspace::new(
            university(),
            ReasonerConfig { budget: Budget::trip_after(2), ..ReasonerConfig::default() },
        );
        let person = ws.schema().class_id("Person").unwrap();
        let tripped = ws.try_is_satisfiable(person);
        assert!(matches!(tripped, Err(ReasonerError::BudgetExhausted(_))));
        ws.set_budget(Budget::unbounded());
        assert!(ws.try_is_satisfiable(person).unwrap());
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn reduced_clauses_drop_satisfied_and_localize() {
        // Clauses over vars {0,1,2,3}, cluster {1,3}.
        let clauses: Vec<Vec<PropLit>> = vec![
            vec![PropLit::neg(0), PropLit::pos(1)], // satisfied by ¬0: dropped
            vec![PropLit::pos(0), PropLit::pos(3)], // 0 is false: reduces to (+3)
            vec![PropLit::neg(1), PropLit::neg(3)], // all in cluster
        ];
        let reduced = reduce_clauses(clauses.iter().map(Vec::as_slice), &[1, 3], 4);
        assert_eq!(
            reduced,
            vec![vec![(1, true)], vec![(0, false), (1, false)]]
        );
    }

    #[test]
    fn serialization_distinguishes_schemas_and_is_stable() {
        let s1 = university();
        let s2 = university();
        assert_eq!(serialize_schema(&s1), serialize_schema(&s2));
        let edited = apply_delta(
            &s1,
            &SchemaDelta::SetIsa {
                class: "Grad_Student".into(),
                isa: ClassFormula {
                    clauses: vec![ClassClause::new(vec![ClassLiteral::pos(
                        s1.class_id("Person").unwrap(),
                    )])],
                },
            },
        )
        .unwrap();
        assert_ne!(serialize_schema(&s1), serialize_schema(&edited));
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache: LruCache<u32> = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(&1)); // touch: b is now stalest
        cache.insert("c".into(), 4);
        assert!(cache.get("b").is_none(), "least recently used key evicted");
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("c"), Some(&4));
        assert_eq!(cache.len(), 2);
        // Re-insert of a live key replaces in place, no eviction.
        cache.insert("a".into(), 9);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some(&9));
    }

    #[test]
    fn zero_cap_cache_never_stores() {
        let mut cache: LruCache<u32> = LruCache::new(0);
        cache.insert("a".into(), 1);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn bounded_workspace_stays_correct_under_eviction() {
        // Caps of 1 bundle / 1 cluster / depth-2 undo: every level
        // evicts constantly, and answers must still match a fresh
        // reasoner (a miss is a recomputation, never a wrong answer).
        let limits =
            WorkspaceLimits { bundle_cache_cap: 1, cluster_cache_cap: 1, undo_cap: 2 };
        let mut ws =
            Workspace::with_limits(university(), ReasonerConfig::default(), limits);
        agree_with_fresh(&mut ws);
        for round in 0..4 {
            let person = ws.schema().class_id("Person").unwrap();
            let isa = if round % 2 == 0 {
                ClassFormula::class(person)
            } else {
                ClassFormula::top()
            };
            ws.apply(&SchemaDelta::SetIsa { class: "Grad_Student".into(), isa }).unwrap();
            agree_with_fresh(&mut ws);
        }
        assert!(ws.undo.len() <= 2, "undo history bounded: {}", ws.undo.len());
        assert!(ws.bundles.len() <= 1, "bundle cache bounded");
        assert!(ws.clusters.len() <= 1, "cluster cache bounded");
        // Deeper history than the cap: only the last two undos succeed.
        assert!(ws.undo());
        assert!(ws.undo());
        assert!(!ws.undo(), "history beyond the cap was evicted");
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn out_of_range_class_ids_error_instead_of_lying() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());
        let n = ws.schema().num_classes();
        let phantom = ClassId::from_index(n + 3);
        let person = ws.schema().class_id("Person").unwrap();
        assert_eq!(
            ws.try_is_satisfiable(phantom),
            Err(ReasonerError::ClassOutOfRange { index: n + 3, num_classes: n })
        );
        assert!(matches!(
            ws.try_subsumes(person, phantom),
            Err(ReasonerError::ClassOutOfRange { .. })
        ));
        assert!(matches!(
            ws.try_disjoint(phantom, person),
            Err(ReasonerError::ClassOutOfRange { .. })
        ));
        assert!(matches!(
            ws.try_equivalent(phantom, phantom),
            Err(ReasonerError::ClassOutOfRange { .. })
        ));
        let results = ws.query_batch_results(&[
            Query::IsSatisfiable(person),
            Query::IsSatisfiable(phantom),
            Query::Subsumes { sup: phantom, sub: person },
        ]);
        assert_eq!(results[0], Ok(true));
        assert!(matches!(results[1], Err(ReasonerError::ClassOutOfRange { .. })));
        assert!(matches!(results[2], Err(ReasonerError::ClassOutOfRange { .. })));
        // The workspace stays usable afterwards.
        agree_with_fresh(&mut ws);
    }

    #[test]
    fn batch_results_surface_error_kinds() {
        let mut ws = Workspace::new(
            university(),
            ReasonerConfig { budget: Budget::trip_after(2), ..ReasonerConfig::default() },
        );
        let person = ws.schema().class_id("Person").unwrap();
        let results = ws.query_batch_results(&[Query::IsSatisfiable(person)]);
        assert!(
            matches!(results[0], Err(ReasonerError::BudgetExhausted(_))),
            "the real failure kind must survive batching: {results:?}"
        );
        ws.set_budget(Budget::unbounded());
        assert_eq!(ws.query_batch_results(&[Query::IsSatisfiable(person)])[0], Ok(true));
    }

    #[test]
    fn workspace_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
    }

    // ---- Durable store tier ----------------------------------------

    use crate::persist::{fault, Disk, DiskFaults, DiskStore, StoreLimits};
    use std::sync::Mutex;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("car-ws-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shared_store(dir: &std::path::Path) -> SharedStore {
        Arc::new(Mutex::new(DiskStore::open_real(dir, StoreLimits::default()).unwrap()))
    }

    fn preselect() -> ReasonerConfig {
        ReasonerConfig { strategy: Strategy::Preselect, ..ReasonerConfig::default() }
    }

    #[test]
    fn warm_store_answers_identically_without_reenumeration() {
        let dir = scratch("warm");
        let mut cold = Workspace::new(university(), preselect());
        cold.set_store(shared_store(&dir));
        agree_with_fresh(&mut cold);
        let cold_stats = cold.stats();
        assert!(cold_stats.disk_writes > 0, "cold run persists: {cold_stats:?}");
        assert_eq!(cold_stats.disk_cluster_hits, 0);
        assert_eq!(cold_stats.disk_ccs_hits, 0);
        drop(cold);

        // A brand-new workspace over a reopened store: answers are the
        // same (agree_with_fresh compares against a storeless
        // Reasoner), clusters come back from disk, nothing re-runs.
        let mut warm = Workspace::new(university(), preselect());
        warm.set_store(shared_store(&dir));
        agree_with_fresh(&mut warm);
        let warm_stats = warm.stats();
        assert!(warm_stats.disk_cluster_hits > 0, "{warm_stats:?}");
        assert!(warm_stats.disk_ccs_hits > 0, "{warm_stats:?}");
        assert_eq!(warm_stats.clusters_rebuilt, 0, "{warm_stats:?}");
        assert!(warm_stats.clusters_reused >= warm_stats.disk_cluster_hits);
    }

    #[test]
    fn damaged_store_entries_degrade_to_recompute() {
        let dir = scratch("damage");
        let mut cold = Workspace::new(university(), preselect());
        cold.set_store(shared_store(&dir));
        agree_with_fresh(&mut cold);
        drop(cold);

        // Damage every persisted entry: a payload bit-flip in half of
        // them, a truncation in the rest.
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "entry"))
            .collect();
        entries.sort();
        assert!(!entries.is_empty());
        for (i, p) in entries.iter().enumerate() {
            let len = std::fs::metadata(p).unwrap().len();
            if i % 2 == 0 {
                fault::flip_bit(p, len - 2, 0).unwrap();
            } else {
                fault::truncate_file(p, len / 2).unwrap();
            }
        }

        let mut warm = Workspace::new(university(), preselect());
        warm.set_store(shared_store(&dir));
        agree_with_fresh(&mut warm);
        let stats = warm.stats();
        assert_eq!(stats.disk_cluster_hits, 0, "{stats:?}");
        assert_eq!(stats.disk_ccs_hits, 0, "{stats:?}");
        assert!(stats.clusters_rebuilt > 0, "{stats:?}");
    }

    #[test]
    fn store_write_failures_never_affect_answers() {
        let dir = scratch("wfail");
        let faults = DiskFaults::new();
        let store = Arc::new(Mutex::new(
            DiskStore::open(&dir, StoreLimits::default(), Disk::faulty(faults.clone()))
                .unwrap(),
        ));
        faults.trip_after(0); // every disk op from here on fails
        let mut ws = Workspace::new(university(), preselect());
        ws.set_store(store);
        agree_with_fresh(&mut ws);
        let stats = ws.stats();
        assert!(stats.disk_write_failures > 0, "{stats:?}");
        assert_eq!(stats.disk_writes, 0, "{stats:?}");
        assert!(faults.injected() > 0);
    }

    #[test]
    fn restore_rebuilds_history_and_trims_to_cap() {
        let mut ws = Workspace::new(university(), ReasonerConfig::default());
        ws.apply(&SchemaDelta::AddClass { name: "X1".into() }).unwrap();
        ws.apply(&SchemaDelta::AddClass { name: "X2".into() }).unwrap();
        assert!(ws.undo());

        let restored = Workspace::restore(
            ws.schema().clone(),
            ws.undo_stack().to_vec(),
            ws.redo_stack().to_vec(),
            ReasonerConfig::default(),
            WorkspaceLimits::default(),
        );
        assert_eq!(
            serialize_schema(restored.schema()),
            serialize_schema(ws.schema()),
            "restored current version matches"
        );
        assert_eq!(restored.undo_stack().len(), ws.undo_stack().len());
        assert_eq!(restored.redo_stack().len(), 1);

        // Restoring under a tighter cap drops the oldest versions, just
        // like live editing would have.
        let mut trimmed = Workspace::restore(
            ws.schema().clone(),
            ws.undo_stack().to_vec(),
            Vec::new(),
            ReasonerConfig::default(),
            WorkspaceLimits { undo_cap: 1, ..WorkspaceLimits::default() },
        );
        assert_eq!(trimmed.undo_stack().len(), 1);
        assert!(trimmed.undo());
        assert!(!trimmed.undo());
        agree_with_fresh(&mut trimmed);
    }
}
