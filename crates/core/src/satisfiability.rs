//! Class satisfiability via acceptable solutions of `ΨS` (Theorem 3.3).
//!
//! A solution of `ΨS` is *acceptable* when every compound-attribute
//! unknown vanishes whenever one of its endpoint compound-class unknowns
//! does, and likewise for compound relations. Theorem 3.3: a class `Cs`
//! is satisfiable iff `ΨS` plus `Σ_{C̄ ∋ Cs} Var(C̄) ≥ 1` has an
//! acceptable nonnegative *integer* solution.
//!
//! Because `ΨS` is homogeneous its solutions form a convex cone, and the
//! following fixpoint decides acceptability with polynomially many LP
//! calls (matching the Theorem 4.3 bound):
//!
//! 1. compute the support of the current system (`car-lp`): the set of
//!    unknowns positive in *some* solution, plus one witness positive on
//!    all of them simultaneously;
//! 2. kill every unknown outside the support, and every compound
//!    attribute/relation unknown one of whose endpoint compound classes
//!    was killed (the acceptability propagation);
//! 3. if step 2 killed an unknown that was still in the support, pin it
//!    to zero and repeat — the pinning may drag further compound classes
//!    below their lower bounds.
//!
//! At the fixpoint the witness is positive exactly on the surviving
//! unknowns, hence acceptable; and any acceptable solution survives every
//! iteration, so a compound class survives iff it is nonempty in some
//! model. Satisfiability of `Cs` is then: *some surviving compound class
//! contains `Cs`* — and rational witnesses scale to integer ones.

use crate::budget::{Budget, ResourceExhausted, ResourceKind};
use crate::disequations::{DisequationSystem, UnknownId};
use crate::expansion::{CcId, Expansion};
use crate::ids::ClassId;
use crate::par;
use car_arith::Ratio;
use car_lp::{try_support, SolveHooks};
use std::num::NonZeroUsize;

/// Statistics collected during the satisfiability analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Fixpoint iterations (system rebuilds).
    pub iterations: usize,
    /// Total LP feasibility calls.
    pub lp_calls: usize,
    /// Unknowns in `ΨS`.
    pub num_unknowns: usize,
    /// Disequations in `ΨS` (without nonnegativity bounds).
    pub num_disequations: usize,
    /// Compound classes in the expansion.
    pub num_compound_classes: usize,
    /// Compound attributes in the expansion.
    pub num_compound_attrs: usize,
    /// Compound relations in the expansion.
    pub num_compound_rels: usize,
    /// Whether the Theorem 4.5 arity reduction was applied before the
    /// analysis (set by [`crate::reasoner::Reasoner`], `false` when the
    /// analysis runs on a hand-built expansion).
    pub arity_reduced: bool,
    /// The enumeration strategy that *actually* ran — e.g. `Sat` for a
    /// `Naive` request past the fallback cap, `Preselect` for an `Auto`
    /// request without a hierarchy shape. Set by
    /// [`crate::reasoner::Reasoner`]; `None` when the analysis runs on
    /// a hand-built expansion.
    pub effective_strategy: Option<crate::reasoner::Strategy>,
}

/// Outcome of the fixpoint: which compound classes are realizable (have a
/// model with a nonempty extension) and an acceptable witness solution.
#[derive(Debug, Clone)]
pub struct SatAnalysis {
    realizable: Vec<bool>,
    witness: Vec<Ratio>,
    stats: AnalysisStats,
}

/// Tuning knobs for [`SatAnalysis::run_with_options`], mainly for the
/// ablation benchmarks: every option combination returns identical
/// verdicts, only the work distribution changes.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Run the LP-free structural-death pre-pass before the first LP
    /// (default: on). Turning it off shifts the same kills onto LP
    /// support calls.
    pub structural_propagation: bool,
    /// Worker count for the per-compound-object sweeps and the
    /// disequation-system construction (default: 1, fully serial). The
    /// sweeps are chunked *within* each round, so rounds — and therefore
    /// iteration counts, LP calls and all verdicts — are identical for
    /// every thread count.
    pub threads: NonZeroUsize,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions { structural_propagation: true, threads: NonZeroUsize::MIN }
    }
}

impl SatAnalysis {
    /// Runs the acceptability fixpoint over an expansion.
    #[must_use]
    pub fn run(expansion: &Expansion) -> SatAnalysis {
        SatAnalysis::run_with_options(expansion, &AnalysisOptions::default())
    }

    /// Runs the fixpoint with explicit [`AnalysisOptions`].
    #[must_use]
    pub fn run_with_options(expansion: &Expansion, options: &AnalysisOptions) -> SatAnalysis {
        SatAnalysis::try_run_with_budget(expansion, options, &Budget::unbounded())
            .expect("unbounded budget cannot exhaust")
    }

    /// Runs the fixpoint under a resource [`Budget`]: one checkpoint per
    /// fixpoint iteration and per structural-propagation round, one per
    /// disequation row, and a poll on every simplex pivot (so pivots
    /// count as steps and a deadline interrupts mid-solve).
    ///
    /// # Errors
    /// [`ResourceExhausted`] as soon as the budget runs out. The partial
    /// kill state is discarded; retrying with a larger budget recomputes
    /// from scratch and returns the exact unbounded answer.
    pub fn try_run_with_budget(
        expansion: &Expansion,
        options: &AnalysisOptions,
        budget: &Budget,
    ) -> Result<SatAnalysis, ResourceExhausted> {
        let n_cc = expansion.compound_classes().len();
        let n_ca = expansion.compound_attrs().len();
        let n_cr = expansion.compound_rels().len();

        let threads = options.threads;
        let pieces = threads.get() * 4;
        let mut dead_cc = vec![false; n_cc];
        let mut dead_ca = vec![false; n_ca];
        let mut dead_cr = vec![false; n_cr];
        if options.structural_propagation {
            propagate_structural_deaths(
                expansion,
                &mut dead_cc,
                &mut dead_ca,
                &mut dead_cr,
                threads,
                budget,
            )?;
        }
        let mut stats = AnalysisStats {
            num_compound_classes: n_cc,
            num_compound_attrs: n_ca,
            num_compound_rels: n_cr,
            ..AnalysisStats::default()
        };
        let total_unknowns = (n_cc + n_ca + n_cr) as u64;
        let witness: Vec<Ratio>;

        loop {
            budget.checkpoint()?;
            stats.iterations += 1;
            let pinned: Vec<UnknownId> = dead_cc
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| UnknownId::Cc(i))
                .chain(
                    dead_ca
                        .iter()
                        .enumerate()
                        .filter(|(_, &d)| d)
                        .map(|(i, _)| UnknownId::Ca(i)),
                )
                .chain(
                    dead_cr
                        .iter()
                        .enumerate()
                        .filter(|(_, &d)| d)
                        .map(|(i, _)| UnknownId::Cr(i)),
                )
                .collect();
            let sys = DisequationSystem::build_governed(expansion, &pinned, threads, budget)?;
            if stats.num_unknowns == 0 {
                stats.num_unknowns = sys.num_unknowns();
                stats.num_disequations = sys.num_disequations();
            }

            // Every simplex pivot polls the budget (and counts as a
            // step), so even a single long LP solve honors deadlines and
            // cancellation. An interruption is mapped back to the
            // resource that caused it via `probe`.
            let poll = || budget.checkpoint().is_err();
            let hooks = SolveHooks { poll: Some(&poll), ..SolveHooks::default() };
            let analysis = match try_support(sys.problem(), &hooks) {
                Ok(a) => a,
                Err(_interrupted) => {
                    return Err(budget
                        .probe()
                        .err()
                        .unwrap_or(ResourceExhausted { kind: ResourceKind::Steps }));
                }
            };
            stats.lp_calls += analysis.lp_calls;

            // Step 2a: unknowns outside the support are zero in every
            // solution — killing them never changes the solution set.
            // Each verdict reads only the (immutable) support vector, so
            // the sweep is chunked over the workers; the kills are
            // applied afterwards, in order, exactly as the serial loop
            // would set them.
            for i in sweep(threads, pieces, n_cc, |i| {
                !analysis.in_support[sys.cc_var(CcId(i as u32)).index()]
            }) {
                dead_cc[i] = true;
            }
            for i in sweep(threads, pieces, n_ca, |i| {
                !analysis.in_support[sys.ca_var(i).index()]
            }) {
                dead_ca[i] = true;
            }
            for i in sweep(threads, pieces, n_cr, |i| {
                !analysis.in_support[sys.cr_var(i).index()]
            }) {
                dead_cr[i] = true;
            }

            // Step 2b/3: acceptability propagation. Killing an unknown
            // that was still in the support changes the solution set, so
            // the fixpoint must iterate. The verdict for a compound
            // attribute/relation reads only its own flag and the
            // compound-class flags — none of which this sweep writes —
            // so chunking does not change the kill set.
            let mut changed = false;
            let ca_kills = {
                let attrs = expansion.compound_attrs();
                sweep(threads, pieces, n_ca, |i| {
                    let ca = &attrs[i];
                    !dead_ca[i]
                        && (dead_cc[ca.source.index()]
                            || ca.targets.iter().all(|t| dead_cc[t.index()]))
                })
            };
            for i in ca_kills {
                dead_ca[i] = true;
                if analysis.in_support[sys.ca_var(i).index()] {
                    changed = true;
                }
            }
            let cr_kills = {
                let rels = expansion.compound_rels();
                sweep(threads, pieces, n_cr, |i| {
                    !dead_cr[i] && rels[i].components.iter().any(|c| dead_cc[c.index()])
                })
            };
            for i in cr_kills {
                dead_cr[i] = true;
                if analysis.in_support[sys.cr_var(i).index()] {
                    changed = true;
                }
            }

            budget.note_fixpoint_iteration();
            let settled = dead_cc.iter().filter(|&&d| d).count()
                + dead_ca.iter().filter(|&&d| d).count()
                + dead_cr.iter().filter(|&&d| d).count();
            budget.note_fixpoint_progress(settled as u64, total_unknowns);

            if !changed {
                // Reorder the witness from LP-variable order into
                // (cc..., ca..., cr...) unknown order.
                witness = sys
                    .unknowns()
                    .map(|u| analysis.witness[sys.var_of(u).index()].clone())
                    .collect();
                break;
            }
        }

        let realizable: Vec<bool> = dead_cc.iter().map(|&d| !d).collect();
        // The witness is positive exactly on the surviving unknowns.
        debug_assert!(realizable
            .iter()
            .enumerate()
            .all(|(i, &r)| r == witness[i].is_positive()));

        Ok(SatAnalysis { realizable, witness, stats })
    }

    /// `true` iff the compound class has a model with nonempty extension.
    #[must_use]
    pub fn is_realizable(&self, cc: CcId) -> bool {
        self.realizable[cc.index()]
    }

    /// Per-compound-class realizability flags.
    #[must_use]
    pub fn realizable(&self) -> &[bool] {
        &self.realizable
    }

    /// The acceptable witness solution in unknown order
    /// (compound classes, then compound attributes, then compound
    /// relations); positive exactly on the realizable unknowns.
    #[must_use]
    pub fn witness(&self) -> &[Ratio] {
        &self.witness
    }

    /// Analysis statistics.
    #[must_use]
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Theorem 3.3: the class is satisfiable iff some realizable compound
    /// class contains it.
    #[must_use]
    pub fn class_satisfiable(&self, expansion: &Expansion, class: ClassId) -> bool {
        expansion.ccs_containing(class).any(|cc| self.is_realizable(cc))
    }
}


/// Chunks the index range `0..n` over the workers and returns, in index
/// order, the indices for which `verdict` holds.
///
/// `verdict` must not depend on anything the caller mutates based on the
/// result (the sweep reads a snapshot); under that contract the returned
/// kill set — and anything derived from it — is identical to the serial
/// left-to-right loop, for every thread count.
fn sweep<F>(threads: NonZeroUsize, pieces: usize, n: usize, verdict: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let chunks = par::chunk_ranges(n, pieces);
    par::parallel_map(threads, chunks.len(), |ci| {
        chunks[ci].clone().filter(|&i| verdict(i)).collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Cheap LP-free pre-pass: kill compound classes whose positive lower
/// bounds have no candidate links at all (the sum in the disequation is
/// empty), then propagate acceptability, to a fixpoint. Everything killed
/// here is zero in every solution of `ΨS`, so the LP answers are
/// unchanged — but the LP gets much smaller on schemas with heavily typed
/// attributes (e.g. the Theorem 4.1 grids).
///
/// Each of the four sweeps inside a round writes only its own flag
/// family and reads families it does not write (a compound class may be
/// re-killed by a second `Natt`/`Nrel` entry under chunking where the
/// serial loop would skip it — same final flags), so the rounds, the
/// final state and the termination point are identical for every thread
/// count.
fn propagate_structural_deaths(
    expansion: &Expansion,
    dead_cc: &mut [bool],
    dead_ca: &mut [bool],
    dead_cr: &mut [bool],
    threads: NonZeroUsize,
    budget: &Budget,
) -> Result<(), ResourceExhausted> {
    let pieces = threads.get() * 4;
    let mut changed = true;
    while changed {
        budget.checkpoint()?;
        changed = false;
        let natt = expansion.natt();
        let cc_kills = {
            let (dcc, dca): (&[bool], &[bool]) = (dead_cc, dead_ca);
            sweep(threads, pieces, natt.len(), |ei| {
                let entry = &natt[ei];
                if dcc[entry.cc.index()] || entry.card.min == 0 {
                    return false;
                }
                let indices = match entry.att {
                    crate::syntax::AttRef::Direct(a) => {
                        expansion.attrs_with_source(a, entry.cc)
                    }
                    crate::syntax::AttRef::Inverse(a) => {
                        expansion.attrs_with_target(a, entry.cc)
                    }
                };
                indices.iter().all(|&i| dca[i])
            })
        };
        for ei in cc_kills {
            let cc = natt[ei].cc.index();
            if !dead_cc[cc] {
                dead_cc[cc] = true;
                changed = true;
            }
        }
        let nrel = expansion.nrel();
        let cc_kills = {
            let (dcc, dcr): (&[bool], &[bool]) = (dead_cc, dead_cr);
            sweep(threads, pieces, nrel.len(), |ei| {
                let entry = &nrel[ei];
                if dcc[entry.cc.index()] || entry.card.min == 0 {
                    return false;
                }
                expansion
                    .rels_with_component(entry.rel, entry.role_pos, entry.cc)
                    .iter()
                    .all(|&i| dcr[i])
            })
        };
        for ei in cc_kills {
            let cc = nrel[ei].cc.index();
            if !dead_cc[cc] {
                dead_cc[cc] = true;
                changed = true;
            }
        }
        let attrs = expansion.compound_attrs();
        let ca_kills = {
            let (dcc, dca): (&[bool], &[bool]) = (dead_cc, dead_ca);
            sweep(threads, pieces, attrs.len(), |i| {
                let ca = &attrs[i];
                !dca[i]
                    && (dcc[ca.source.index()] || ca.targets.iter().all(|t| dcc[t.index()]))
            })
        };
        for i in ca_kills {
            dead_ca[i] = true;
            changed = true;
        }
        let rels = expansion.compound_rels();
        let cr_kills = {
            let (dcc, dcr): (&[bool], &[bool]) = (dead_cc, dead_cr);
            sweep(threads, pieces, rels.len(), |i| {
                !dcr[i] && rels[i].components.iter().any(|c| dcc[c.index()])
            })
        };
        for i in cr_kills {
            dead_cr[i] = true;
            changed = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::{Expansion, ExpansionLimits};
    use crate::syntax::{
        AttRef, Card, ClassFormula, RoleClause, RoleLiteral, Schema, SchemaBuilder,
    };

    fn analyze(s: &Schema) -> (Expansion, SatAnalysis) {
        let ccs = enumerate::naive(s, usize::MAX).unwrap();
        let exp = Expansion::build(s, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&exp);
        (exp, analysis)
    }

    fn sat(s: &Schema, name: &str) -> bool {
        let (exp, analysis) = analyze(s);
        analysis.class_satisfiable(&exp, s.class_id(name).unwrap())
    }

    #[test]
    fn unconstrained_class_is_satisfiable() {
        let mut b = SchemaBuilder::new();
        b.class("A");
        let s = b.build().unwrap();
        assert!(sat(&s, "A"));
    }

    #[test]
    fn contradictory_isa_is_unsatisfiable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
        let s = b.build().unwrap();
        assert!(!sat(&s, "A"));
    }

    #[test]
    fn attribute_into_unsatisfiable_class_propagates() {
        // A needs at least one f-filler of type B; B is contradictory.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bad = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::at_least(1), ClassFormula::class(bad))
            .finish();
        b.define_class(bad).isa(ClassFormula::neg_class(bad)).finish();
        let s = b.build().unwrap();
        assert!(!sat(&s, "A"));
        assert!(!sat(&s, "B"));
    }

    #[test]
    fn attribute_with_satisfiable_filler_is_fine() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::new(2, 3), ClassFormula::class(t))
            .finish();
        let s = b.build().unwrap();
        assert!(sat(&s, "A"));
        assert!(sat(&s, "T"));
    }

    /// The paper's motivating finite-model effect: a cardinality cycle
    /// that is satisfiable over infinite domains but not finite ones.
    /// Each A-object needs 2 distinct f-fillers in B, each B-object is
    /// the filler of at most one A-object (inverse at most 1), and B ⊑ A
    /// forces |B| ≥ 2|A| ≥ 2|B| with |B| > 0: impossible finitely.
    #[test]
    fn finite_cardinality_cycle_is_unsatisfiable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
            .finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a))
            .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
            .finish();
        let s = b.build().unwrap();
        assert!(!sat(&s, "A"));
        assert!(!sat(&s, "B"));
    }

    /// Same cycle but with compatible counts (2 fillers each, each filler
    /// shared by exactly 2 sources): finitely satisfiable.
    #[test]
    fn balanced_cardinality_cycle_is_satisfiable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
            .finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a))
            .attr(AttRef::Inverse(f), Card::exactly(2), ClassFormula::class(a))
            .finish();
        let s = b.build().unwrap();
        assert!(sat(&s, "A"));
        assert!(sat(&s, "B"));
    }

    #[test]
    fn disjoint_union_constraint() {
        // C isa A ∨ B, A and B disjoint, both A and B unsatisfiable
        // individually -> C unsatisfiable too.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
        b.define_class(bb).isa(ClassFormula::neg_class(bb)).finish();
        b.define_class(c).isa(ClassFormula::union_of([a, bb])).finish();
        let s = b.build().unwrap();
        assert!(!sat(&s, "C"));
    }

    #[test]
    fn relation_participation_forces_partners() {
        // Student must enroll in >= 1 course; Enrollment requires the
        // enrolled_in component to be a Course; Course is contradictory.
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let course = b.class("Course");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        let enrolled_in = b.role("enrolled_in");
        b.define_class(student)
            .participates(enrollment, enrolls, Card::at_least(1))
            .finish();
        b.define_class(course).isa(ClassFormula::neg_class(course)).finish();
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolled_in,
                formula: ClassFormula::class(course),
            }]),
        );
        let s = b.build().unwrap();
        assert!(!sat(&s, "Student"));
        assert!(!sat(&s, "Course"));
    }

    #[test]
    fn relation_participation_with_satisfiable_partner() {
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let course = b.class("Course");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        let enrolled_in = b.role("enrolled_in");
        b.define_class(student)
            .participates(enrollment, enrolls, Card::new(1, 6))
            .finish();
        b.define_class(course)
            .participates(enrollment, enrolled_in, Card::new(5, 100))
            .finish();
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolled_in,
                formula: ClassFormula::class(course),
            }]),
        );
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolls,
                formula: ClassFormula::class(student),
            }]),
        );
        let s = b.build().unwrap();
        assert!(sat(&s, "Student"));
        assert!(sat(&s, "Course"));
    }

    /// Participation ratio conflict: every Course enrolls >= 5 students,
    /// every Student enrolls in exactly 1 course, students outnumber
    /// courses 1:1 through a shared superclass bound... simplest version:
    /// tuples per course >= 5, tuples per student <= 1, and Course ⊒ ...
    /// Use equal populations via mutual isa.
    #[test]
    fn participation_ratio_conflict_is_detected() {
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let course = b.class("Course");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        let enrolled_in = b.role("enrolled_in");
        // Same extension: Student ≡ Course (mutual inclusion).
        b.define_class(student)
            .isa(ClassFormula::class(course))
            .participates(enrollment, enrolls, Card::new(0, 1))
            .finish();
        b.define_class(course)
            .isa(ClassFormula::class(student))
            .participates(enrollment, enrolled_in, Card::at_least(5))
            .finish();
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolls,
                formula: ClassFormula::class(student),
            }]),
        );
        let s = b.build().unwrap();
        // #tuples >= 5·|Course| and #tuples <= 1·|Student| = |Course|.
        assert!(!sat(&s, "Student"));
        assert!(!sat(&s, "Course"));
    }

    #[test]
    fn stats_are_populated() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(1), ClassFormula::top())
            .finish();
        let s = b.build().unwrap();
        let (_exp, analysis) = analyze(&s);
        let stats = analysis.stats();
        assert!(stats.iterations >= 1);
        assert!(stats.lp_calls >= 1);
        assert!(stats.num_unknowns > 0);
        assert_eq!(stats.num_compound_classes, 1);
    }

    #[test]
    fn thread_count_never_changes_the_analysis() {
        // A mix of kills from every stage: an unsatisfiable class, a
        // finite cardinality cycle and a healthy relation.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let bad = b.class("Bad");
        let f = b.attribute("f");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
            .participates(r, u, Card::new(1, 4))
            .finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a))
            .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
            .finish();
        b.define_class(bad).isa(ClassFormula::neg_class(bad)).finish();
        let s = b.build().unwrap();
        let ccs = enumerate::naive(&s, usize::MAX).unwrap();
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();
        for structural in [true, false] {
            let serial = SatAnalysis::run_with_options(
                &exp,
                &AnalysisOptions { structural_propagation: structural, ..Default::default() },
            );
            for threads in 2..=4 {
                let par = SatAnalysis::run_with_options(
                    &exp,
                    &AnalysisOptions {
                        structural_propagation: structural,
                        threads: NonZeroUsize::new(threads).unwrap(),
                    },
                );
                assert_eq!(par.realizable(), serial.realizable());
                assert_eq!(par.witness(), serial.witness());
                assert_eq!(par.stats(), serial.stats(), "threads={threads}");
            }
        }
    }

    #[test]
    fn witness_is_positive_exactly_on_realizable() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bad = b.class("B");
        b.define_class(bad).isa(ClassFormula::neg_class(bad)).finish();
        let _ = a;
        let s = b.build().unwrap();
        let (exp, analysis) = analyze(&s);
        for cc in exp.cc_ids() {
            assert_eq!(
                analysis.is_realizable(cc),
                analysis.witness()[cc.index()].is_positive()
            );
        }
    }
}
