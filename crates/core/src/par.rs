//! Dependency-free parallel execution utilities (`std::thread::scope`).
//!
//! The reasoner's hot paths — candidate enumeration, expansion
//! construction, the fixpoint's per-compound-object sweeps — are
//! data-parallel over independently checkable items. The helpers here
//! shard those sweeps across a configurable worker count without
//! changing any observable result:
//!
//! * [`parallel_map`] preserves output order: results are merged by job
//!   index, so concatenating them reproduces the serial left-to-right
//!   traversal exactly. With one worker (or one job) it degenerates to
//!   a plain in-order loop on the calling thread — no threads are
//!   spawned, so `threads = 1` is byte-identical to the serial code.
//! * [`Budget`] enforces size limits with an order-independent verdict:
//!   a unit is granted iff the running total stays within the limit, so
//!   the limit fires iff the *total* number of accepted items exceeds
//!   it — exactly the condition under which the serial path fails, no
//!   matter how the items are distributed over workers.
//! * [`chunk_ranges`] splits an index range into contiguous,
//!   near-equal chunks; contiguity is what makes the chunk-order merge
//!   equal the serial order.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `0..n` into at most `pieces` contiguous, non-empty ranges of
/// near-equal length, covering every index exactly once and in order.
#[must_use]
pub fn chunk_ranges(n: usize, pieces: usize) -> Vec<Range<usize>> {
    let k = pieces.max(1).min(n);
    if k == 0 {
        return Vec::new();
    }
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Applies `f` to every index in `0..n_jobs` using up to `threads`
/// scoped workers and returns the results in index order.
///
/// Workers pull job indices from a shared cursor (dynamic load
/// balancing); the merge is by index, so the output is independent of
/// scheduling. With `threads = 1` (or fewer than two jobs) no thread is
/// spawned and `f` runs in order on the calling thread.
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(threads: NonZeroUsize, n_jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.get().min(n_jobs);
    if workers <= 1 {
        return (0..n_jobs).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_jobs);
    slots.resize_with(n_jobs, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_jobs {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, v) in produced {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|v| v.expect("every job produces a result")).collect()
}

/// A shared atomic size budget for limit enforcement across workers.
///
/// Each accepted item takes one unit. Because grants depend only on the
/// running total (not on which worker asks, or when), the exhaustion
/// verdict is deterministic: some [`Budget::take`] returns `false` iff
/// the total number of takes exceeds the limit — the same condition
/// under which the serial `len() >= limit` check fails.
#[derive(Debug)]
pub struct Budget {
    limit: usize,
    used: AtomicUsize,
}

impl Budget {
    /// A fresh budget of `limit` units.
    #[must_use]
    pub fn new(limit: usize) -> Budget {
        Budget { limit, used: AtomicUsize::new(0) }
    }

    /// Takes one unit; `false` iff the limit is already exhausted.
    #[must_use]
    pub fn take(&self) -> bool {
        self.used.fetch_add(1, Ordering::Relaxed) < self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn chunk_ranges_partition_in_order() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for pieces in [1usize, 2, 3, 7, 200] {
                let chunks = chunk_ranges(n, pieces);
                let flat: Vec<usize> = chunks.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} pieces={pieces}");
                assert!(chunks.iter().all(|c| !c.is_empty()));
                assert!(chunks.len() <= pieces.max(1));
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1usize, 2, 4, 9] {
            let out = parallel_map(nz(threads), 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map(nz(4), 0, |i| i).is_empty());
    }

    #[test]
    fn budget_verdict_depends_only_on_totals() {
        let b = Budget::new(3);
        assert!(b.take());
        assert!(b.take());
        assert!(b.take());
        assert!(!b.take());
        // Concurrent takes: exactly `limit` grants, the rest denied.
        let b = Budget::new(10);
        let grants: usize = parallel_map(nz(4), 25, |_| usize::from(b.take()))
            .into_iter()
            .sum();
        assert_eq!(grants, 10);
    }

    #[test]
    fn zero_budget_denies_everything() {
        let b = Budget::new(0);
        assert!(!b.take());
    }
}
