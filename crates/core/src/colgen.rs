//! Lazy column generation over compound classes.
//!
//! The eager strategies of [`crate::enumerate`] materialize every
//! consistent compound class up front — worst case `2^|C|` of them —
//! before the LP analysis ever runs. This module grows a small *working
//! set* of compound classes instead, pricing new columns on demand with
//! the DPLL engine (`car_logic::solve_guided`) and using the revised
//! simplex warm-start of `car_lp::RestrictedMaster` to decide *which*
//! demand to serve first.
//!
//! ## The algorithm
//!
//! Classes are settled one at a time, in [`ClassId`] order, over one
//! shared working set `W`:
//!
//! 1. Build the restricted expansion and acceptability analysis over the
//!    current `W` (identical machinery to the eager path, just on fewer
//!    compound classes). If the class is satisfiable there, it is
//!    satisfiable outright — a restricted solution extends by zeroes.
//! 2. Otherwise run one *demand pass*. The demands are: the **standing
//!    demand** (price a brand-new compound class containing the target
//!    class) plus, for every `Natt`/`Nrel` entry of a working-set member
//!    with a positive lower bound, a demand for a new link partner
//!    serving that bound. Each demand is encoded as extra CNF clauses —
//!    a sound over-approximation of link eligibility, re-validated by
//!    the restricted expansion rebuild — and priced with the
//!    weight-guided DPLL solver, which prefers minimal candidates.
//! 3. The demand order comes from the restricted master LP (`ΨS` over
//!    `W` plus the target row `Σ_{C̄ ∋ C} Var(C̄) ≥ 1`): when the master
//!    is infeasible, its Farkas duals score each demand's rows and the
//!    largest multipliers go first; admitted columns are inserted into
//!    the warm tableau (`RestrictedMaster::add_column`) and the pass
//!    ends early as soon as the master turns feasible.
//! 4. A pass that admits nothing is a *closure*: every demand is
//!    propositionally unservable, no further compound class can help,
//!    and the class is unsatisfiable. Otherwise go back to 1.
//!
//! ## Termination and agreement
//!
//! Every admitted candidate is permanently blocked in the pricing
//! formula (an exact-model blocking clause), so the working set grows
//! strictly and is bounded by the number of preselection-consistent
//! compound classes; each pricing call checkpoints the [`Budget`], and
//! [`ExpansionLimits::max_compound_classes`] caps `|W|` exactly like the
//! eager enumerations. The pricing formula is the isa consistency
//! formula plus the §4.3 preselection clauses (Theorem 4.6
//! cross-cluster disjointness prunes *inside* the search), so the lazy
//! universe equals the `Preselect` universe — and satisfiability
//! verdicts agree with every eager strategy: a satisfiable verdict
//! extends by zeroes, and at closure the restriction is exact because
//! any eager witness could be pruned to a support component reachable
//! through the very demand chains that were found unservable.
//! Unsatisfiable closures may still have to enumerate all
//! preselection-consistent candidates containing the class (the
//! exponential worst case does not disappear — it is just never paid
//! for satisfiable clusters, which is where the eager path drowns).

use crate::bitset::BitSet;
use crate::budget::{Budget, Item, ResourceExhausted, ResourceKind};
use crate::disequations::{DisequationSystem, RowOrigin};
use crate::enumerate::isa_cnf;
use crate::expansion::{
    merged_att_card, merged_part_card, BuildError, Expansion, ExpansionLimits,
    ExpansionTooLarge,
};
use crate::ids::ClassId;
use crate::preselection::Preselection;
use crate::satisfiability::{AnalysisOptions, SatAnalysis};
use crate::syntax::{AttRef, ClassFormula, Schema};
use car_arith::Ratio;
use car_lp::{LinExpr, MasterStatus, Relation, RestrictedMaster, SolveHooks};
use car_logic::{solve_guided, CnfFormula, PropLit};
use std::cell::Cell;
use std::num::NonZeroUsize;

/// Snapshot of the column-generation work counters on this thread
/// (monotonic; subtract two snapshots to meter a region). Deterministic
/// for a given schema and configuration — bench telemetry gates these,
/// never wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColgenCounters {
    /// Pricing-oracle invocations (`car_logic::solve_guided` calls).
    pub pricing_calls: u64,
    /// Candidate columns returned by the pricing oracle. The
    /// beyond-enumeration claim is `columns_priced ≪ 2^|C|`.
    pub columns_priced: u64,
    /// Candidates admitted into the working set.
    pub columns_admitted: u64,
    /// Restricted-master solves (initial per pass plus one per
    /// admission).
    pub master_solves: u64,
}

thread_local! {
    static COUNTERS: Cell<ColgenCounters> = const {
        Cell::new(ColgenCounters {
            pricing_calls: 0,
            columns_priced: 0,
            columns_admitted: 0,
            master_solves: 0,
        })
    };
}

/// Current cumulative column-generation counters for this thread.
#[must_use]
pub fn colgen_counters() -> ColgenCounters {
    COUNTERS.with(Cell::get)
}

#[inline]
fn count(f: impl FnOnce(&mut ColgenCounters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// One unit of work a demand pass tries to serve.
enum Demand {
    /// Price a new compound class containing the target class.
    Standing,
    /// Price a link partner for `natt()[i]` (positive lower bound).
    Att(usize),
    /// Price a component for role `role_pos` of `nrel()[entry]`'s
    /// relation (positive lower bound on another role).
    Rel { entry: usize, role_pos: usize },
}

/// Grows a working set of compound classes until every class's
/// satisfiability verdict is settled, and returns it. The result is a
/// drop-in replacement for an eager enumeration: feed it to
/// [`Expansion::build_governed`] and the per-class verdicts equal the
/// eager ones.
///
/// # Errors
/// [`BuildError::TooLarge`] when the working set would exceed
/// `limits.max_compound_classes`, [`BuildError::Exhausted`] as soon as
/// the budget runs out (partial working sets are never returned).
pub fn working_set_governed(
    schema: &Schema,
    limits: &ExpansionLimits,
    threads: NonZeroUsize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    let n = schema.num_classes();
    let pre = Preselection::compute(schema);
    let mut cnf = isa_cnf(schema);
    for clause in pre.extra_clauses() {
        cnf.add_clause(clause);
    }
    if n > 0 {
        // The empty compound class is never enumerated (cf. the eager
        // AllSAT path skipping the all-false model).
        cnf.add_clause((0..n).map(PropLit::pos));
    }
    let mut driver = Driver {
        schema,
        limits,
        threads,
        budget,
        cnf,
        working: Vec::new(),
        options: AnalysisOptions { threads, ..AnalysisOptions::default() },
    };
    driver.run()
}

struct Driver<'a> {
    schema: &'a Schema,
    limits: &'a ExpansionLimits,
    threads: NonZeroUsize,
    budget: &'a Budget,
    /// Pricing formula: isa consistency + preselection clauses +
    /// nonempty clause + exact-model blocks of every admitted or
    /// permanently rejected candidate.
    cnf: CnfFormula,
    working: Vec<BitSet>,
    options: AnalysisOptions,
}

impl Driver<'_> {
    fn run(&mut self) -> Result<Vec<BitSet>, BuildError> {
        // The restricted expansion/analysis over the current working
        // set; invalidated by every admission.
        let mut state: Option<(Expansion, SatAnalysis)> = None;
        for class in self.schema.symbols().class_ids() {
            loop {
                if state.is_none() {
                    let expansion = Expansion::build_governed(
                        self.schema,
                        self.working.clone(),
                        self.limits,
                        self.threads,
                        self.budget,
                    )?;
                    let analysis =
                        SatAnalysis::try_run_with_budget(&expansion, &self.options, self.budget)
                            .map_err(BuildError::Exhausted)?;
                    state = Some((expansion, analysis));
                }
                let (expansion, analysis) = state.as_ref().expect("just rebuilt");
                if analysis.class_satisfiable(expansion, class) {
                    break; // extends by zeroes to any larger working set
                }
                if self.demand_pass(class, expansion)? == 0 {
                    break; // closure: no compound class can ever help
                }
                state = None;
            }
        }
        Ok(std::mem::take(&mut self.working))
    }

    /// Demands with *no structural relief at all* in the current
    /// restricted expansion: a mandatory attribute bound with no
    /// compound-attribute link, a mandatory participation with no
    /// compound tuple through the role, a target class no working-set
    /// member contains. These are the frontier of the demand chain —
    /// serving anything else first only re-prices demands whose
    /// partners exist but are (transitively) dead, which walks blocked
    /// supersets one pass at a time.
    fn frontier_demands(&self, class: ClassId, expansion: &Expansion) -> Vec<Demand> {
        let mut out = Vec::new();
        for (i, e) in expansion.natt().iter().enumerate() {
            if e.card.min < 1 {
                continue;
            }
            let partnered = expansion.compound_attrs().iter().any(|ca| {
                ca.attr == e.att.attr()
                    && match e.att {
                        AttRef::Direct(_) => ca.source == e.cc,
                        AttRef::Inverse(_) => ca.targets.contains(&e.cc),
                    }
            });
            if !partnered {
                out.push(Demand::Att(i));
            }
        }
        for (i, e) in expansion.nrel().iter().enumerate() {
            if e.card.min < 1 {
                continue;
            }
            let partnered = expansion
                .compound_rels()
                .iter()
                .any(|cr| cr.rel == e.rel && cr.components[e.role_pos] == e.cc);
            if !partnered {
                let arity = self.schema.rel_def(e.rel).arity();
                for role_pos in (0..arity).filter(|&q| q != e.role_pos) {
                    out.push(Demand::Rel { entry: i, role_pos });
                }
            }
        }
        if expansion.ccs_containing(class).next().is_none() {
            out.push(Demand::Standing);
        }
        out
    }

    /// One demand pass for `class` over the current restricted
    /// expansion; returns the number of admitted columns (0 = closure).
    ///
    /// Two tiers. The *frontier* tier serves only demands with no
    /// structural relief in the working set — each admission is a
    /// link partner some present compound class cannot exist without,
    /// so the working set grows along the demand chain and stays small
    /// on chain- and tree-shaped schemas. Only when the frontier is
    /// exhausted (empty, or every frontier demand propositionally
    /// unservable) does the *full* tier run: a dual-guided sweep over
    /// every mandatory bound, which can enumerate alternative partners
    /// for demands whose present partners all died in the acceptability
    /// fixpoint. Closure (return 0) is therefore only ever declared
    /// after the full tier, the standing Cs-demand included, admitted
    /// nothing.
    fn demand_pass(
        &mut self,
        class: ClassId,
        expansion: &Expansion,
    ) -> Result<usize, BuildError> {
        // ---- Frontier tier -----------------------------------------
        let mut admitted = 0usize;
        for demand in self.frontier_demands(class, expansion) {
            if let Some(cc) = self.price(class, expansion, &demand)? {
                self.admit(cc)?;
                admitted += 1;
            }
        }
        if admitted > 0 {
            return Ok(admitted);
        }

        // ---- Full tier: every mandatory bound ----------------------
        // The standing Cs-demand is appended *last*, after the dual
        // ordering: its minimal models are the ones most likely to be
        // blocked already, so serving it first would admit ever-larger
        // Cs-supersets whose guidance column satisfies the target row
        // for free and ends the pass before any link-partner demand is
        // served.
        let mut demands = Vec::new();
        for (i, e) in expansion.natt().iter().enumerate() {
            if e.card.min >= 1 {
                demands.push(Demand::Att(i));
            }
        }
        for (i, e) in expansion.nrel().iter().enumerate() {
            if e.card.min >= 1 {
                let arity = self.schema.rel_def(e.rel).arity();
                for role_pos in (0..arity).filter(|&q| q != e.role_pos) {
                    demands.push(Demand::Rel { entry: i, role_pos });
                }
            }
        }

        // ---- Restricted master: ΨS over W plus the target row ------
        let sys =
            DisequationSystem::build_governed(expansion, &[], self.threads, self.budget)
                .map_err(BuildError::Exhausted)?;
        let mut problem = sys.problem().clone();
        let mut target = LinExpr::zero();
        for id in expansion.ccs_containing(class) {
            target.add_term(sys.cc_var(id), Ratio::one());
        }
        let target_row = sys.num_disequations();
        problem.add_constraint(target, Relation::Ge, Ratio::one());
        let mut master = RestrictedMaster::new(&problem);
        let status = self.solve_master(&mut master)?;

        // Rows of each Natt/Nrel entry, for dual scoring and column
        // insertion (a served lower bound also loads its upper row).
        let mut att_rows = vec![Vec::new(); expansion.natt().len()];
        let mut rel_rows = vec![Vec::new(); expansion.nrel().len()];
        for (row, origin) in sys.row_origins().iter().enumerate() {
            match *origin {
                RowOrigin::NattLower(i) | RowOrigin::NattUpper(i) => att_rows[i].push(row),
                RowOrigin::NrelLower(i) | RowOrigin::NrelUpper(i) => rel_rows[i].push(row),
                RowOrigin::Pinned(_) => {}
            }
        }
        let rows_of = |d: &Demand| -> Vec<usize> {
            match *d {
                Demand::Standing => Vec::new(),
                Demand::Att(i) => att_rows[i].clone(),
                Demand::Rel { entry, .. } => rel_rows[entry].clone(),
            }
        };

        // ---- Demand order: master duals when infeasible ------------
        if status == MasterStatus::Infeasible {
            let duals = master.duals();
            let magnitude = |r: &Ratio| if r.is_negative() { -r.clone() } else { r.clone() };
            let score = |d: &Demand| -> Ratio {
                rows_of(d)
                    .iter()
                    .map(|&r| magnitude(&duals[r]))
                    .max_by(|a, b| a.partial_cmp(b).expect("rationals are totally ordered"))
                    .unwrap_or_else(Ratio::zero)
            };
            let mut scored: Vec<(Ratio, Demand)> =
                demands.into_iter().map(|d| (score(&d), d)).collect();
            // Stable descending: ties keep the syntactic order.
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("totally ordered"));
            demands = scored.into_iter().map(|(_, d)| d).collect();
        }
        demands.push(Demand::Standing);

        // ---- Serve each demand once --------------------------------
        for demand in demands {
            let Some(cc) = self.price(class, expansion, &demand)? else {
                continue; // propositionally unservable this round
            };
            let serves_target = cc.contains(class.index());
            self.admit(cc)?;
            admitted += 1;
            // Guidance column: one unit of the serving link, loading the
            // demand's bound rows and (if applicable) the target row.
            let mut entries: Vec<(usize, Ratio)> =
                rows_of(&demand).into_iter().map(|r| (r, Ratio::one())).collect();
            if serves_target {
                entries.push((target_row, Ratio::one()));
            }
            master.add_column(&entries);
            if self.solve_master(&mut master)? == MasterStatus::Feasible {
                break; // the master thinks W suffices — go re-analyze
            }
        }
        Ok(admitted)
    }

    /// Admits a priced candidate into the working set: enforces the
    /// expansion cap, charges the budget, blocks the exact model from
    /// all future pricing, and records the admission.
    fn admit(&mut self, cc: BitSet) -> Result<(), BuildError> {
        if self.working.len() >= self.limits.max_compound_classes {
            return Err(ExpansionTooLarge {
                what: "compound classes",
                limit: self.limits.max_compound_classes,
            }
            .into());
        }
        self.budget
            .charge(Item::CompoundClass, 1)
            .map_err(BuildError::Exhausted)?;
        block_exact(&mut self.cnf, &cc, self.schema.num_classes());
        self.working.push(cc);
        count(|c| c.columns_admitted += 1);
        Ok(())
    }

    /// Prices one demand: clones the pricing formula, adds the demand
    /// encoding, and searches for a fresh candidate with valid merged
    /// cardinalities. Candidates the restricted expansion would drop
    /// anyway are blocked permanently and the search continues.
    fn price(
        &mut self,
        class: ClassId,
        expansion: &Expansion,
        demand: &Demand,
    ) -> Result<Option<BitSet>, BuildError> {
        let n = self.schema.num_classes();
        let mut f = self.cnf.clone();
        let mut weights = vec![0i64; n];
        self.encode_demand(class, expansion, demand, &mut f, &mut weights);
        loop {
            self.budget.checkpoint().map_err(BuildError::Exhausted)?;
            count(|c| c.pricing_calls += 1);
            let Some(model) = solve_guided(&f, &weights) else {
                return Ok(None);
            };
            count(|c| c.columns_priced += 1);
            let cc = BitSet::from_iter(
                n,
                model.iter().enumerate().filter(|&(_, &b)| b).map(|(i, _)| i),
            );
            if valid_merges(self.schema, &cc) {
                return Ok(Some(cc));
            }
            // An invalid merged bound dooms this candidate everywhere —
            // the expansion prefilter would drop it under any strategy.
            block_exact(&mut self.cnf, &cc, n);
            block_exact(&mut f, &cc, n);
        }
    }

    /// Adds the demand's CNF encoding to `f` and bumps `weights` for
    /// every positive literal occurrence (the guided solver then seeks
    /// candidates satisfying as much of the demand as possible, and
    /// minimal ones elsewhere).
    fn encode_demand(
        &self,
        class: ClassId,
        expansion: &Expansion,
        demand: &Demand,
        f: &mut CnfFormula,
        weights: &mut [i64],
    ) {
        let add_formula = |f: &mut CnfFormula, weights: &mut [i64], ty: &ClassFormula| {
            for clause in &ty.clauses {
                for lit in &clause.literals {
                    if lit.positive {
                        weights[lit.class.index()] += 1;
                    }
                }
                f.add_clause(clause.literals.iter().map(|l| PropLit {
                    var: l.class.index(),
                    positive: l.positive,
                }));
            }
        };
        match *demand {
            Demand::Standing => {
                weights[class.index()] += 1;
                f.add_clause([PropLit::pos(class.index())]);
            }
            Demand::Att(i) => {
                let entry = &expansion.natt()[i];
                let member = expansion.compound_class(entry.cc);
                let attr = entry.att.attr();
                // The candidate sits on the other end of the link: the
                // target of a Direct bound, the source of an Inverse
                // one. Its constraints mirror `compound_attr_consistent`.
                let (own, other) = match entry.att {
                    AttRef::Direct(_) => (AttRef::Direct(attr), AttRef::Inverse(attr)),
                    AttRef::Inverse(_) => (AttRef::Inverse(attr), AttRef::Direct(attr)),
                };
                for c in member.iter() {
                    if let Some(spec) = self.schema.attr_spec(ClassId::from_index(c), own) {
                        add_formula(f, weights, &spec.ty);
                    }
                }
                for (y, _) in self.schema.classes() {
                    if let Some(spec) = self.schema.attr_spec(y, other) {
                        if !spec.ty.realized_by(member) {
                            f.add_clause([PropLit::neg(y.index())]);
                        }
                    }
                }
            }
            Demand::Rel { entry, role_pos } => {
                let e = &expansion.nrel()[entry];
                let def = self.schema.rel_def(e.rel);
                let role = def.roles[role_pos];
                // Unit role-clauses constrain the candidate component
                // outright; multi-literal clauses are left to the
                // rebuild's full `compound_rel_consistent` check.
                for clause in def
                    .constraints
                    .iter()
                    .filter(|c| c.is_unit() && c.literals[0].role == role)
                {
                    add_formula(f, weights, &clause.literals[0].formula);
                }
            }
        }
    }

    fn solve_master(&self, master: &mut RestrictedMaster) -> Result<MasterStatus, BuildError> {
        count(|c| c.master_solves += 1);
        let poll = || self.budget.checkpoint().is_err();
        let hooks = SolveHooks { poll: Some(&poll), ..SolveHooks::default() };
        master.solve(&hooks).map_err(|_interrupted| {
            BuildError::Exhausted(
                self.budget
                    .probe()
                    .err()
                    .unwrap_or(ResourceExhausted { kind: ResourceKind::Steps }),
            )
        })
    }
}

/// Blocks exactly this candidate: the clause is falsified only by the
/// assignment that equals `cc`.
fn block_exact(f: &mut CnfFormula, cc: &BitSet, n: usize) {
    f.add_clause((0..n).map(|i| if cc.contains(i) { PropLit::neg(i) } else { PropLit::pos(i) }));
}

/// The expansion prefilter's predicate: every merged attribute and
/// participation bound of the candidate is a nonempty interval.
fn valid_merges(schema: &Schema, cc: &BitSet) -> bool {
    let attrs_ok = schema.symbols().attr_ids().all(|a| {
        merged_att_card(schema, cc, AttRef::Direct(a)).is_none_or(|c| c.is_valid())
            && merged_att_card(schema, cc, AttRef::Inverse(a)).is_none_or(|c| c.is_valid())
    });
    let parts_ok = schema.relations().all(|(rel, def)| {
        (0..def.arity())
            .all(|pos| merged_part_card(schema, cc, rel, pos).is_none_or(|c| c.is_valid()))
    });
    attrs_ok && parts_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::syntax::{Card, RoleClause, RoleLiteral, SchemaBuilder};

    fn verdicts_over(schema: &Schema, ccs: Vec<BitSet>) -> Vec<bool> {
        let expansion =
            Expansion::build(schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&expansion);
        schema
            .symbols()
            .class_ids()
            .map(|c| analysis.class_satisfiable(&expansion, c))
            .collect()
    }

    fn lazy_verdicts(schema: &Schema) -> Vec<bool> {
        let working = working_set_governed(
            schema,
            &ExpansionLimits::default(),
            NonZeroUsize::MIN,
            &Budget::unbounded(),
        )
        .unwrap();
        verdicts_over(schema, working)
    }

    fn eager_verdicts(schema: &Schema) -> Vec<bool> {
        let ccs = enumerate::sat_models(schema, &[], usize::MAX).unwrap();
        verdicts_over(schema, ccs)
    }

    fn university() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let grad = b.class("Grad_Student");
        let course = b.class("Course");
        let taught_by = b.attribute("taught_by");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .finish();
        b.define_class(grad).isa(ClassFormula::class(student)).finish();
        b.define_class(course)
            .isa(ClassFormula::neg_class(person))
            .attr(
                AttRef::Direct(taught_by),
                Card::exactly(1),
                ClassFormula::union_of([professor, grad]),
            )
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn lazy_agrees_with_eager_on_university() {
        let s = university();
        assert_eq!(lazy_verdicts(&s), eager_verdicts(&s));
    }

    #[test]
    fn lazy_detects_unsatisfiable_classes() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let dead = b.class("Dead");
        b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
        let _ = a;
        let s = b.build().unwrap();
        let verdicts = lazy_verdicts(&s);
        assert_eq!(verdicts, eager_verdicts(&s));
        assert_eq!(verdicts, vec![true, false]);
    }

    #[test]
    fn attribute_demands_pull_in_link_partners() {
        // A's mandatory attribute is typed T, T's inverse bound points
        // back: satisfying A requires admitting a T-compound via the
        // attribute demand chain.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .isa(ClassFormula::neg_class(t))
            .attr(AttRef::Direct(f), Card::exactly(1), ClassFormula::class(t))
            .finish();
        b.define_class(t)
            .attr(AttRef::Inverse(f), Card::new(1, 2), ClassFormula::class(a))
            .finish();
        let s = b.build().unwrap();
        let _ = (a, t);
        assert_eq!(lazy_verdicts(&s), eager_verdicts(&s));
        assert!(lazy_verdicts(&s).iter().all(|&v| v));
    }

    #[test]
    fn relation_demands_pull_in_components() {
        let mut b = SchemaBuilder::new();
        let s_ = b.class("S");
        let p = b.class("P");
        let rel = b.relation("Teaches", ["who", "what"]);
        let who = b.role("who");
        let what = b.role("what");
        b.relation_constraint(
            rel,
            RoleClause::new(vec![RoleLiteral { role: who, formula: ClassFormula::class(p) }]),
        );
        b.relation_constraint(
            rel,
            RoleClause::new(vec![RoleLiteral { role: what, formula: ClassFormula::class(s_) }]),
        );
        b.define_class(s_).participates(rel, what, Card::at_least(1)).finish();
        let s = b.build().unwrap();
        assert_eq!(lazy_verdicts(&s), eager_verdicts(&s));
        assert!(lazy_verdicts(&s).iter().all(|&v| v));
    }

    #[test]
    fn working_set_stays_small_on_wide_hierarchies() {
        // 12 independent subclasses of a root: eager AllSAT yields
        // thousands of compound classes, the lazy path needs a handful.
        let mut b = SchemaBuilder::new();
        let root = b.class("Root");
        for i in 0..12 {
            let c = b.class(&format!("C{i}"));
            b.define_class(c).isa(ClassFormula::class(root)).finish();
        }
        let s = b.build().unwrap();
        let working = working_set_governed(
            &s,
            &ExpansionLimits::default(),
            NonZeroUsize::MIN,
            &Budget::unbounded(),
        )
        .unwrap();
        assert!(
            working.len() <= s.num_classes(),
            "expected a near-linear working set, got {}",
            working.len()
        );
        assert_eq!(verdicts_over(&s, working), eager_verdicts(&s));
        let _ = root;
    }

    #[test]
    fn budget_exhaustion_surfaces_as_error() {
        let s = university();
        let err = working_set_governed(
            &s,
            &ExpansionLimits::default(),
            NonZeroUsize::MIN,
            &Budget::trip_after(1),
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::Exhausted(_)));
    }

    #[test]
    fn counters_advance_and_are_deterministic() {
        let s = university();
        let run = || {
            let before = colgen_counters();
            let _ = working_set_governed(
                &s,
                &ExpansionLimits::default(),
                NonZeroUsize::MIN,
                &Budget::unbounded(),
            )
            .unwrap();
            let after = colgen_counters();
            (
                after.pricing_calls - before.pricing_calls,
                after.columns_priced - before.columns_priced,
                after.columns_admitted - before.columns_admitted,
                after.master_solves - before.master_solves,
            )
        };
        let first = run();
        assert!(first.0 > 0, "pricing must have been called");
        assert!(first.2 > 0, "columns must have been admitted");
        assert_eq!(first, run(), "work profile must be reproducible");
    }

    #[test]
    fn threads_do_not_change_the_working_set() {
        let s = university();
        let at = |threads: usize| {
            working_set_governed(
                &s,
                &ExpansionLimits::default(),
                NonZeroUsize::new(threads).unwrap(),
                &Budget::unbounded(),
            )
            .unwrap()
        };
        let serial = at(1);
        for threads in [2, 4] {
            assert_eq!(at(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn working_set_cap_is_enforced() {
        let s = university();
        let limits = ExpansionLimits { max_compound_classes: 1, ..Default::default() };
        let err = working_set_governed(
            &s,
            &limits,
            NonZeroUsize::MIN,
            &Budget::unbounded(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            BuildError::TooLarge(ExpansionTooLarge { what: "compound classes", .. })
        ));
    }
}
