//! Cluster decomposition (§4.4 of the paper).
//!
//! When the disjointness assertions (explicit plus the Theorem 4.6
//! assumptions) partition the classes into clusters such that classes of
//! different clusters are disjoint, every consistent compound class is
//! formed from classes of a single cluster. The compound-class set is
//! then the union of the per-cluster sets — for `k` clusters of size
//! `s`, at most `k·2^s` instead of `2^{k·s}` candidates.
//!
//! The clusters are the connected components of the graph `GS` computed
//! by [`crate::preselection`].

use crate::bitset::BitSet;
use crate::budget::Budget;
use crate::enumerate::sat_models_governed;
use crate::expansion::{expect_too_large, BuildError, ExpansionTooLarge};
use crate::preselection::Preselection;
use crate::syntax::Schema;
use car_logic::PropLit;

/// Enumerates the consistent compound classes cluster by cluster, under
/// the preselection tables' inclusion and disjointness clauses.
///
/// # Errors
/// [`ExpansionTooLarge`] if more than `max` compound classes are found.
pub fn clustered_ccs(
    schema: &Schema,
    preselection: &Preselection,
    max: usize,
) -> Result<Vec<BitSet>, ExpansionTooLarge> {
    clustered_ccs_governed(schema, preselection, max, &Budget::unbounded())
        .map_err(expect_too_large)
}

/// [`clustered_ccs`] under a resource [`Budget`]: one checkpoint per
/// cluster plus the per-model checkpoints of the inner SAT enumeration.
///
/// # Errors
/// [`BuildError::TooLarge`] exactly as [`clustered_ccs`], or
/// [`BuildError::Exhausted`] as soon as the budget runs out.
pub fn clustered_ccs_governed(
    schema: &Schema,
    preselection: &Preselection,
    max: usize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    let table_clauses = preselection.extra_clauses();
    let mut out: Vec<BitSet> = Vec::new();

    for cluster in preselection.clusters() {
        let remaining = max.saturating_sub(out.len());
        let cluster_ccs =
            cluster_ccs_governed(schema, &table_clauses, cluster, remaining, budget)
                .map_err(|e| match e {
                    // Normalize the per-cluster overflow to the global limit.
                    BuildError::TooLarge(_) => BuildError::TooLarge(ExpansionTooLarge {
                        what: "compound classes",
                        limit: max,
                    }),
                    exhausted @ BuildError::Exhausted(_) => exhausted,
                })?;
        out.extend(cluster_ccs);
    }
    Ok(out)
}

/// Enumerates one cluster's compound classes: the models of the
/// preselection table clauses with every class outside `cluster` forced
/// to false. One budget checkpoint up front plus the per-model
/// checkpoints of the inner SAT enumeration. The returned list is in
/// the enumeration order of [`sat_models_governed`], so for a fixed
/// reduced formula it is deterministic — the property the incremental
/// cluster cache relies on.
///
/// # Errors
/// [`BuildError::TooLarge`] with the raw per-call limit `max` (callers
/// normalize), or [`BuildError::Exhausted`] when the budget runs out.
pub fn cluster_ccs_governed(
    schema: &Schema,
    table_clauses: &[Vec<PropLit>],
    cluster: &[usize],
    max: usize,
    budget: &Budget,
) -> Result<Vec<BitSet>, BuildError> {
    budget.checkpoint()?;
    let n = schema.num_classes();
    let in_cluster = BitSet::from_iter(n, cluster.iter().copied());
    // Force every class outside the cluster to false; the cluster's
    // compound classes are the remaining models.
    let mut clauses = table_clauses.to_vec();
    for c in 0..n {
        if !in_cluster.contains(c) {
            clauses.push(vec![PropLit::neg(c)]);
        }
    }
    sat_models_governed(schema, &clauses, max, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::syntax::{ClassFormula, SchemaBuilder};
    use std::collections::BTreeSet;

    /// Two independent 2-class hierarchies plus a free class.
    fn partitioned_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let a2 = b.class("A2");
        let c = b.class("C");
        let c2 = b.class("C2");
        b.class("Free");
        b.define_class(a2).isa(ClassFormula::class(a)).finish();
        b.define_class(c2).isa(ClassFormula::class(c)).finish();
        b.build().unwrap()
    }

    #[test]
    fn cluster_enumeration_is_much_smaller() {
        let s = partitioned_schema();
        let p = Preselection::compute(&s);
        assert_eq!(p.clusters().len(), 3);
        let clustered = clustered_ccs(&s, &p, usize::MAX).unwrap();
        // Per cluster: {A}, {A, A2}; {C}, {C, C2}; {Free} -> 5 compound
        // classes, versus 2^5 - 1 = 31 subsets for the naive sweep (of
        // which many are consistent because nothing forbids mixing).
        assert_eq!(clustered.len(), 5);
        let naive = enumerate::naive(&s, usize::MAX).unwrap();
        assert!(naive.len() > clustered.len());
    }

    #[test]
    fn clustered_ccs_are_all_consistent_and_distinct() {
        let s = partitioned_schema();
        let p = Preselection::compute(&s);
        let ccs = clustered_ccs(&s, &p, usize::MAX).unwrap();
        let set: BTreeSet<&BitSet> = ccs.iter().collect();
        assert_eq!(set.len(), ccs.len());
        for cc in &ccs {
            assert!(crate::expansion::cc_consistent(&s, cc));
            assert!(!cc.is_empty());
        }
    }

    #[test]
    fn single_cluster_falls_back_to_full_enumeration() {
        // All classes connected: one cluster; output = all consistent ccs
        // respecting the (a)-table clauses = all consistent ccs.
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.define_class(bb).isa(ClassFormula::class(a)).finish();
        b.define_class(c).isa(ClassFormula::class(bb)).finish();
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        assert_eq!(p.clusters().len(), 1);
        let clustered: BTreeSet<BitSet> =
            clustered_ccs(&s, &p, usize::MAX).unwrap().into_iter().collect();
        let naive: BTreeSet<BitSet> =
            enumerate::naive(&s, usize::MAX).unwrap().into_iter().collect();
        assert_eq!(clustered, naive);
    }

    #[test]
    fn limit_is_enforced() {
        let mut b = SchemaBuilder::new();
        for i in 0..8 {
            b.class(&format!("K{i}"));
        }
        let s = b.build().unwrap();
        let p = Preselection::compute(&s);
        // 8 isolated classes: 8 singleton compound classes; limit 3 fails.
        assert!(clustered_ccs(&s, &p, 3).is_err());
        assert_eq!(clustered_ccs(&s, &p, 8).unwrap().len(), 8);
    }
}
