//! # car-core — the CAR data model and its reasoning technique
//!
//! A complete implementation of the CAR object-oriented data model from
//! *Making Object-Oriented Schemas More Expressive* (Calvanese &
//! Lenzerini, PODS 1994): schemas with complex class formulae, inverse
//! attributes, n-ary relations and cardinality constraints; finite-model
//! semantics; and a sound, complete and terminating procedure for class
//! satisfiability and logical implication.
//!
//! ## Layout, following the paper
//!
//! | Paper section | Module |
//! |---|---|
//! | §2.2 syntax | [`syntax`], [`ids`] |
//! | §2.3 semantics | [`semantics`] |
//! | §3.1 expansion | [`expansion`], [`enumerate`], [`bitset`] |
//! | §3.2 disequations & Theorem 3.3 | [`disequations`], [`satisfiability`] |
//! | model construction (proof of Thm 3.3) | [`model_extract`] |
//! | logical implication (§3, extension) | [`implication`] |
//! | §4.3 preselection & Theorem 4.6 | [`preselection`] |
//! | §4.4 clusters | [`clusters`] |
//! | lazy column generation (extension) | [`colgen`] |
//! | §4.4 generalization hierarchies | [`hierarchy`] |
//! | Theorem 4.5 arity reduction | [`arity`] |
//! | parallel execution layer | [`par`] |
//! | resource governance (extension) | [`budget`] |
//! | top-level facade | [`reasoner`] |
//! | incremental reasoning & batched queries (extension) | [`incremental`] |
//! | certified answers (extension) | [`certify`], [`model_extract`] |
//! | unified cache eviction (extension) | [`evict`] |
//! | crash-safe persistence (extension) | [`persist`] |
//!
//! ## Example
//!
//! ```
//! use car_core::syntax::{SchemaBuilder, ClassFormula, Card, AttRef};
//! use car_core::reasoner::Reasoner;
//!
//! // Student isa Person and not Professor; Professor isa Person.
//! let mut b = SchemaBuilder::new();
//! let person = b.class("Person");
//! let professor = b.class("Professor");
//! let student = b.class("Student");
//! b.define_class(professor).isa(ClassFormula::class(person)).finish();
//! b.define_class(student)
//!     .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
//!     .finish();
//! let schema = b.build().unwrap();
//!
//! let reasoner = Reasoner::new(&schema);
//! assert!(reasoner.is_satisfiable(student));
//! assert!(reasoner.subsumes(person, student));   // Student ⊑ Person
//! assert!(reasoner.disjoint(student, professor));
//! ```

pub mod arity;
pub mod bitset;
pub mod budget;
pub mod certify;
pub mod clusters;
pub mod colgen;
pub mod disequations;
pub mod enumerate;
pub mod evict;
pub mod expansion;
pub mod explain;
pub mod hierarchy;
pub mod ids;
pub mod implication;
pub mod incremental;
pub mod model_extract;
pub mod par;
pub mod persist;
pub mod preselection;
pub mod reasoner;
pub mod satisfiability;
pub mod semantics;
pub mod syntax;

pub use budget::{
    Budget, BudgetLimits, CancelToken, Phase, ProgressReport, ResourceExhausted, ResourceKind,
};
pub use ids::{AttrId, ClassId, RelId, RoleId, SymbolTable};
pub use incremental::{
    EditError, Query, RoleLiteralSpec, SchemaDelta, Workspace, WorkspaceLimits,
    WorkspaceStats,
};
pub use persist::{
    Acquire, DiskFaults, DiskStore, JournalOp, Lease, LeaseInfo, LeaseWatch, Recovered,
    SharedStore, StoreLimits, StoreStats, WorkspaceDir,
};
pub use reasoner::{Outcome, Reasoner, ReasonerConfig, ReasonerError, Strategy};
pub use semantics::{Interpretation, Violation};
pub use syntax::{
    AttRef, Card, ClassClause, ClassDef, ClassFormula, ClassLiteral, Participation,
    RelDef, RoleClause, RoleLiteral, Schema, SchemaBuilder, SchemaError,
};
